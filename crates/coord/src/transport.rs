//! The message layer between a coordinator and its participant nodes.
//!
//! One trait, two implementations: [`ChannelTransport`] calls
//! in-process [`ParticipantNode`]s directly (tests and crash matrices —
//! with scripted message drops and delivery delay), and
//! [`TcpTransport`] speaks the §13 wire protocol through
//! [`asset_client::Client`] (opcodes `PREPARE`, `PREPARED`,
//! `COMMIT_DECIDE`, `ABORT_DECIDE`). Coordinators are written against
//! the trait and cannot tell the difference.

use crate::failpoints;
use crate::node::ParticipantNode;
use asset_client::{Client, PreparedState};
use asset_common::Tid;
use asset_faults::{FaultAction, FaultRegistry};
use asset_obs::{EventKind, Obs, TraceCtx};
use asset_server::protocol::opcode;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// The §13 wire opcode a coordinator-originated message rides, or
/// `None` for reply-only messages (which a coordinator never sends).
/// Trace events mirror protocol messages under these opcodes so a
/// channel-transport exchange and its TCP equivalent produce the same
/// merged trace.
pub(crate) fn wire_opcode(msg: &CommitMessage) -> Option<u8> {
    match msg {
        CommitMessage::Prepare { .. } => Some(opcode::PREPARE),
        CommitMessage::QueryState { .. } => Some(opcode::PREPARED),
        CommitMessage::CommitDecide { .. } => Some(opcode::COMMIT_DECIDE),
        CommitMessage::AbortDecide { .. } => Some(opcode::ABORT_DECIDE),
        _ => None,
    }
}

/// One protocol message (request or reply). The vocabulary maps 1:1
/// onto the §13 wire opcodes; see `DESIGN.md` §14.2.
#[derive(Clone, Debug)]
pub enum CommitMessage {
    /// Coordinator → participant: prepare these seed transactions (the
    /// participant widens them to their GC components and forces one
    /// `Prepared` record).
    Prepare {
        /// Seed tids on the receiving node.
        tids: Vec<Tid>,
    },
    /// Participant → coordinator: the vote. `yes` means the `Prepared`
    /// record is durable and `group` is the full prepared group; `no`
    /// means nothing was written and the local group is aborted.
    Vote {
        /// Yes = prepared and durable; no = aborted locally.
        yes: bool,
        /// The full prepared group (yes votes only).
        group: Vec<Tid>,
    },
    /// Coordinator → participant: commit the prepared group. Idempotent.
    CommitDecide {
        /// The prepared group on the receiving node.
        tids: Vec<Tid>,
    },
    /// Coordinator → participant: abort the group. Idempotent; also
    /// legal for groups that never prepared.
    AbortDecide {
        /// The group on the receiving node.
        tids: Vec<Tid>,
    },
    /// Participant → coordinator: a decide landed.
    Ack,
    /// Coordinator → participant: what state is this transaction in?
    QueryState {
        /// The tid to query on the receiving node.
        tid: Tid,
    },
    /// Participant → coordinator: the queried state.
    State(ParticipantState),
    /// Participant → coordinator: the request failed (diagnostic only —
    /// coordinators treat it like any protocol violation).
    Failed {
        /// Human-readable cause.
        info: String,
    },
}

/// A transaction's distributed-commit state as a participant reports it
/// (the wire `PREPARED` query's payload).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParticipantState {
    /// The node does not know the tid.
    Unknown,
    /// Prepared — in doubt, awaiting a decision.
    Prepared,
    /// Committed.
    Committed,
    /// Aborted (or aborting).
    Aborted,
    /// Live but not prepared.
    Other,
}

/// Why a message exchange failed.
#[derive(Debug)]
pub enum CoordError {
    /// The node did not answer (killed, crashed mid-request, or
    /// unreachable).
    NodeDown(usize),
    /// The transport dropped the message (scripted fault).
    MessageDropped(&'static str),
    /// Fewer than a majority of acceptors answered (Paxos Commit only).
    NoQuorum {
        /// The consensus instance (participant index) that failed.
        instance: u32,
    },
    /// The durable decision could not be recorded.
    Io(std::io::Error),
    /// The peer answered something the protocol does not allow here.
    Protocol(String),
}

impl CoordError {
    pub(crate) fn protocol(expectation: &str, got: &CommitMessage) -> CoordError {
        CoordError::Protocol(format!("{expectation}: unexpected reply {got:?}"))
    }
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::NodeDown(n) => write!(f, "node {n} is down"),
            CoordError::MessageDropped(p) => write!(f, "message dropped at failpoint `{p}`"),
            CoordError::NoQuorum { instance } => {
                write!(f, "no acceptor quorum for instance {instance}")
            }
            CoordError::Io(e) => write!(f, "coordinator log: {e}"),
            CoordError::Protocol(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for CoordError {}

impl From<std::io::Error> for CoordError {
    fn from(e: std::io::Error) -> CoordError {
        CoordError::Io(e)
    }
}

/// How coordinators reach participants. `send` is a blocking
/// request/reply exchange; an error means the reply never arrived (the
/// request may or may not have been processed — exactly the ambiguity
/// real networks have, which is why every decide is idempotent).
pub trait CommitTransport: Send + Sync {
    /// How many participant nodes are reachable through this transport.
    fn nodes(&self) -> usize;
    /// Deliver `msg` to `node` and wait for its reply.
    fn send(&self, node: usize, msg: CommitMessage) -> Result<CommitMessage, CoordError>;
    /// Deliver `msg` to `node` carrying the trace context `ctx`
    /// (DESIGN.md §7.2). A context-propagating transport mirrors the
    /// exchange as `MsgSend`/`MsgAck` events on the coordinator's hub
    /// and `MsgRecv`/`MsgReply` on the participant's, which the
    /// multi-node trace merge pairs into cross-node flow edges. The
    /// default ignores the context and behaves exactly like
    /// [`send`](Self::send).
    fn send_traced(
        &self,
        node: usize,
        msg: CommitMessage,
        ctx: Option<TraceCtx>,
    ) -> Result<CommitMessage, CoordError> {
        let _ = ctx;
        self.send(node, msg)
    }
}

/// In-process transport: messages are direct calls into
/// [`ParticipantNode`]s, with scripted drops
/// ([`failpoints::MSG_PREPARE_DROP`] / [`failpoints::MSG_DECIDE_DROP`])
/// and optional per-message delivery delay. A participant that crashes
/// mid-request (a `CrashPoint` unwind from a participant failpoint) is
/// marked dead — later sends fail with [`CoordError::NodeDown`] until
/// the harness restarts it.
pub struct ChannelTransport {
    nodes: Vec<Arc<ParticipantNode>>,
    faults: Arc<FaultRegistry>,
    delay: Option<Duration>,
    obs: Option<Arc<Obs>>,
}

impl ChannelTransport {
    /// A transport over `nodes` with no faults armed.
    pub fn new(nodes: Vec<Arc<ParticipantNode>>) -> ChannelTransport {
        ChannelTransport {
            nodes,
            faults: Arc::new(FaultRegistry::new()),
            delay: None,
            obs: None,
        }
    }

    /// Builder-style: mirror traced exchanges as `MsgSend`/`MsgAck`
    /// events into the coordinator's hub `obs`. Participant-side
    /// `MsgRecv`/`MsgReply` events land in each node's own database
    /// hub; enable tracing on both for a mergeable fleet trace.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> ChannelTransport {
        self.obs = Some(obs);
        self
    }

    /// Builder-style: script message faults through `faults` (arm
    /// [`failpoints::MSG_PREPARE_DROP`] / [`failpoints::MSG_DECIDE_DROP`]
    /// with `FaultAction::Error` to drop).
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> ChannelTransport {
        self.faults = faults;
        self
    }

    /// Builder-style: delay every delivery by `d` (models link latency;
    /// E17 uses it to separate protocol latency from transport latency).
    pub fn with_delay(mut self, d: Duration) -> ChannelTransport {
        self.delay = Some(d);
        self
    }

    /// The node handles (for harnesses that kill/restart them).
    pub fn node(&self, i: usize) -> &Arc<ParticipantNode> {
        &self.nodes[i]
    }
}

impl ChannelTransport {
    fn deliver(
        &self,
        node: usize,
        msg: CommitMessage,
        ctx: Option<TraceCtx>,
    ) -> Result<CommitMessage, CoordError> {
        let point = match &msg {
            CommitMessage::Prepare { .. } => failpoints::MSG_PREPARE_DROP,
            CommitMessage::CommitDecide { .. } | CommitMessage::AbortDecide { .. } => {
                failpoints::MSG_DECIDE_DROP
            }
            _ => "",
        };
        if !point.is_empty() {
            if let Some(act) = self.faults.check(point) {
                match act {
                    FaultAction::Crash | FaultAction::Torn { .. } => self.faults.crash_now(point),
                    _ => return Err(CoordError::MessageDropped(point)),
                }
            }
        }
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        let n = self
            .nodes
            .get(node)
            .ok_or(CoordError::NodeDown(node))?
            .clone();
        // a fault-dropped message records no event: the merge pairs the
        // k-th send with the k-th recv, so only delivered exchanges may
        // appear on the coordinator lane
        let op = ctx.and_then(|_| wire_opcode(&msg));
        if let (Some(obs), Some(ctx), Some(op)) = (&self.obs, ctx, op) {
            obs.record(EventKind::MsgSend {
                node: node as u32,
                opcode: op,
                root: ctx.root,
            });
        }
        match catch_unwind(AssertUnwindSafe(|| n.handle_traced(msg, ctx))) {
            Ok(Some(reply)) => {
                if let (Some(obs), Some(ctx), Some(op)) = (&self.obs, ctx, op) {
                    obs.record(EventKind::MsgAck {
                        node: node as u32,
                        opcode: op,
                        root: ctx.root,
                    });
                }
                Ok(reply)
            }
            Ok(None) => Err(CoordError::NodeDown(node)),
            Err(payload) => {
                if payload.downcast_ref::<asset_faults::CrashPoint>().is_some() {
                    // the participant "process" died mid-request: kill
                    // the node so later sends see it down too
                    n.kill();
                    Err(CoordError::NodeDown(node))
                } else {
                    std::panic::resume_unwind(payload)
                }
            }
        }
    }
}

impl CommitTransport for ChannelTransport {
    fn nodes(&self) -> usize {
        self.nodes.len()
    }

    fn send(&self, node: usize, msg: CommitMessage) -> Result<CommitMessage, CoordError> {
        self.deliver(node, msg, None)
    }

    fn send_traced(
        &self,
        node: usize,
        msg: CommitMessage,
        ctx: Option<TraceCtx>,
    ) -> Result<CommitMessage, CoordError> {
        self.deliver(node, msg, ctx)
    }
}

/// Wire transport: each node is an ASSET server address, reached with a
/// lazily (re)connected [`Client`] per node. A transport error closes
/// the connection so the next send reconnects — a restarted server is
/// picked up transparently (prepare and decide are idempotent).
pub struct TcpTransport {
    addrs: Vec<String>,
    conns: Mutex<Vec<Option<Client>>>,
    obs: Option<Arc<Obs>>,
}

impl TcpTransport {
    /// A transport over the given server addresses.
    pub fn new(addrs: Vec<String>) -> TcpTransport {
        let conns = Mutex::new(addrs.iter().map(|_| None).collect());
        TcpTransport {
            addrs,
            conns,
            obs: None,
        }
    }

    /// Builder-style: mirror traced exchanges as `MsgSend`/`MsgAck`
    /// events into the coordinator's hub `obs` (via each node's
    /// [`Client::enable_tracing`]). Events are tagged with the
    /// transport index as the peer node id, so run each server with
    /// `--node-id` equal to its index here for a mergeable trace.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> TcpTransport {
        self.obs = Some(obs);
        self
    }

    /// Run `f` against the transport's cached wire session for `node`
    /// (connecting lazily, like a send). Distributed work must be
    /// staged on the **same** session that later votes: wire `PREPARE`
    /// only accepts transactions owned by the requesting session
    /// (DESIGN.md §14.2), and this transport holds one connection per
    /// node for the coordinator's whole run.
    pub fn with_node<T>(
        &self,
        node: usize,
        f: impl FnOnce(&mut Client) -> Result<T, asset_client::ClientError>,
    ) -> Result<T, CoordError> {
        self.with_client(node, f)
    }

    fn with_client<T>(
        &self,
        node: usize,
        f: impl FnOnce(&mut Client) -> Result<T, asset_client::ClientError>,
    ) -> Result<T, CoordError> {
        let addr = self.addrs.get(node).ok_or(CoordError::NodeDown(node))?;
        let mut conns = self.conns.lock();
        if conns[node].is_none() {
            conns[node] = Some(Client::connect(addr).map_err(|_| CoordError::NodeDown(node))?);
        }
        // verify: allow(no_panics) — connected just above
        let c = conns[node].as_mut().expect("connected");
        match f(c) {
            Ok(v) => Ok(v),
            Err(asset_client::ClientError::Io(_)) => {
                // drop the connection; the next send reconnects
                conns[node] = None;
                Err(CoordError::NodeDown(node))
            }
            Err(e) => Err(CoordError::Protocol(e.to_string())),
        }
    }
}

impl CommitTransport for TcpTransport {
    fn nodes(&self) -> usize {
        self.addrs.len()
    }

    fn send(&self, node: usize, msg: CommitMessage) -> Result<CommitMessage, CoordError> {
        self.send_traced(node, msg, None)
    }

    fn send_traced(
        &self,
        node: usize,
        msg: CommitMessage,
        ctx: Option<TraceCtx>,
    ) -> Result<CommitMessage, CoordError> {
        let raw = |tids: &[Tid]| tids.iter().map(|t| t.0).collect::<Vec<u64>>();
        // arm (or clear) the per-node client's frame stamping before the
        // exchange: the client records the MsgSend/MsgAck pair itself
        let trace = ctx.and_then(|c| self.obs.clone().map(|o| (c, o)));
        let armed = |c: &mut Client| match &trace {
            Some((ctx, obs)) => c.enable_tracing(*ctx, node as u32, Arc::clone(obs)),
            None => c.disable_tracing(),
        };
        match msg {
            CommitMessage::Prepare { tids } => {
                let wire = raw(&tids);
                // a server-reported error is a no vote; transport (Io)
                // errors propagate through with_client's reconnect path
                let vote = self.with_client(node, |c| {
                    armed(c);
                    match c.prepare(&wire) {
                        Ok(group) => Ok(Some(group)),
                        Err(asset_client::ClientError::Server { .. }) => Ok(None),
                        Err(e) => Err(e),
                    }
                })?;
                Ok(match vote {
                    Some(group) => CommitMessage::Vote {
                        yes: true,
                        group: group.into_iter().map(Tid).collect(),
                    },
                    None => CommitMessage::Vote {
                        yes: false,
                        group: Vec::new(),
                    },
                })
            }
            CommitMessage::CommitDecide { tids } => {
                let wire = raw(&tids);
                self.with_client(node, |c| {
                    armed(c);
                    c.commit_decide(&wire)
                })?;
                Ok(CommitMessage::Ack)
            }
            CommitMessage::AbortDecide { tids } => {
                let wire = raw(&tids);
                self.with_client(node, |c| {
                    armed(c);
                    c.abort_decide(&wire)
                })?;
                Ok(CommitMessage::Ack)
            }
            CommitMessage::QueryState { tid } => {
                let s = self.with_client(node, |c| {
                    armed(c);
                    c.prepared_state(tid.0)
                })?;
                Ok(CommitMessage::State(match s {
                    PreparedState::Unknown => ParticipantState::Unknown,
                    PreparedState::Prepared => ParticipantState::Prepared,
                    PreparedState::Committed => ParticipantState::Committed,
                    PreparedState::Aborted => ParticipantState::Aborted,
                    PreparedState::Other => ParticipantState::Other,
                }))
            }
            other => Err(CoordError::Protocol(format!(
                "transport cannot send {other:?}"
            ))),
        }
    }
}

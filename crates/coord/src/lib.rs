//! # asset-coord — distributed commit across ASSET nodes
//!
//! The normative specification is `DESIGN.md` §14; this crate is its
//! implementation. Several [`asset_core::Database`] instances act as
//! **participant nodes**; a coordinator drives an atomic commit
//! protocol over one pluggable message transport:
//!
//! * [`TwoPhase`] — classic two-phase commit with a durable
//!   coordinator log and presumed abort. Safe, but **blocking**: while
//!   the coordinator (and its log) is unreachable, a prepared
//!   participant can only wait.
//! * [`PaxosCommit`] — Gray & Lamport's non-blocking commit: each
//!   participant's vote is an instance of Paxos consensus decided by an
//!   **acceptor quorum**, so any recovery coordinator that can reach a
//!   majority of acceptors finishes the protocol without the failed
//!   coordinator's state. 2PC is exactly Paxos Commit with one
//!   acceptor.
//!
//! Both protocols speak the same participant vocabulary
//! ([`CommitMessage`] over a [`CommitTransport`]), which maps 1:1 onto
//! the §13 wire opcodes `PREPARE`/`PREPARED`/`COMMIT_DECIDE`/
//! `ABORT_DECIDE`:
//!
//! * **prepare**: the participant forces one `Prepared` WAL record for
//!   the union of the seed transactions' GC groups
//!   ([`Database::prepare_group`]). The yes vote rides the record's
//!   durability — a prepared transaction survives restart in doubt,
//!   holding its locks, and only a decide message resolves it.
//! * **decide**: idempotent commit/abort of the prepared group
//!   ([`Database::decide_commit_group`] /
//!   [`Database::decide_abort_group`]).
//!
//! Transports: [`ChannelTransport`] calls in-process
//! [`ParticipantNode`]s directly (tests, crash matrices);
//! [`TcpTransport`] speaks the §13 wire protocol through
//! [`asset_client::Client`].
//!
//! ```
//! use asset_coord::{ChannelTransport, CoordLog, Decision, GlobalTxn, ParticipantNode, TwoPhase};
//! use asset_common::Config;
//! use std::sync::Arc;
//!
//! // two in-process participant nodes
//! let nodes: Vec<Arc<ParticipantNode>> = (0..2)
//!     .map(|_| Arc::new(ParticipantNode::open(Config::in_memory()).unwrap()))
//!     .collect();
//! // one transaction on each node, finished but neither committed nor
//! // aborted (locks held)
//! let oids: Vec<_> = nodes.iter().map(|n| n.db().new_oid()).collect();
//! let mut g = GlobalTxn::new(1);
//! for (i, n) in nodes.iter().enumerate() {
//!     let oid = oids[i];
//!     let t = n.db().initiate(move |ctx| ctx.write(oid, b"x".to_vec())).unwrap();
//!     n.db().begin(t).unwrap();
//!     n.db().wait(t).unwrap();
//!     g.add_member(i as u32, t);
//! }
//! let coord = TwoPhase::new(Arc::new(ChannelTransport::new(nodes.clone())), Arc::new(CoordLog::in_memory()));
//! assert_eq!(coord.commit(&g).unwrap(), Decision::Commit);
//! for (i, n) in nodes.iter().enumerate() {
//!     assert_eq!(n.db().peek(oids[i]).unwrap().unwrap(), b"x");
//! }
//! ```

#![warn(missing_docs)]

pub mod failpoints;
pub mod node;
pub mod paxos;
pub mod transport;
pub mod twopc;

pub use node::ParticipantNode;
pub use paxos::{Acceptor, PaxosCommit};
pub use transport::{
    ChannelTransport, CommitMessage, CommitTransport, CoordError, ParticipantState, TcpTransport,
};
pub use twopc::{CoordLog, TwoPhase};

use asset_common::Tid;
use asset_dep::{CrossGroup, NodeId};
use asset_obs::{bump, Obs, TraceCtx};
use std::sync::Arc;

#[cfg(doc)]
use asset_core::Database;

/// Coordinator-side observability (DESIGN.md §7.2): the hub that
/// receives the coordinator's per-opcode message counters
/// (`coord_msg_*`), its `decision_ns` latency histogram, and — when
/// tracing is enabled on the hub — the `MsgSend`/`MsgAck` trace
/// events of every protocol exchange; plus the fleet node id stamped
/// as the **origin** of every propagated trace context.
///
/// Attach one to a coordinator with [`TwoPhase::with_obs`] /
/// [`PaxosCommit::with_obs`]. The root span id of each context is the
/// global transaction's `gid`, so every message of one distributed
/// commit shares a root across all node lanes of a merged trace.
pub struct CoordObs {
    node: u32,
    obs: Arc<Obs>,
}

impl CoordObs {
    /// Coordinator observability recording into `obs`, stamping `node`
    /// as the origin of outgoing trace contexts. Pick a node id
    /// distinct from every participant's, or the merged trace folds
    /// the coordinator lane into a participant's.
    pub fn new(node: u32, obs: Arc<Obs>) -> CoordObs {
        CoordObs { node, obs }
    }

    /// The coordinator's fleet node id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The underlying hub (snapshot it for scraping, or enable tracing
    /// on it to capture the coordinator's event lane).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The trace context stamped onto messages of global txn `gid`.
    pub(crate) fn ctx(&self, gid: u64) -> TraceCtx {
        TraceCtx {
            origin: self.node,
            root: gid,
        }
    }
}

/// Send `msg` for global txn `gid` through `transport`, threading the
/// coordinator's observability when present: bump the per-opcode
/// `coord_msg_*` counter and propagate a trace context so transports
/// mirror the exchange into the event rings on both ends.
pub(crate) fn coord_send(
    transport: &dyn CommitTransport,
    co: Option<&CoordObs>,
    gid: u64,
    node: usize,
    msg: CommitMessage,
) -> Result<CommitMessage, CoordError> {
    let Some(co) = co else {
        return transport.send(node, msg);
    };
    match &msg {
        CommitMessage::Prepare { .. } => bump(&co.obs.counters.coord_msg_prepare),
        CommitMessage::QueryState { .. } => bump(&co.obs.counters.coord_msg_prepared),
        CommitMessage::CommitDecide { .. } => bump(&co.obs.counters.coord_msg_commit_decide),
        CommitMessage::AbortDecide { .. } => bump(&co.obs.counters.coord_msg_abort_decide),
        _ => {}
    }
    transport.send_traced(node, msg, Some(co.ctx(gid)))
}

/// The coordinator's verdict on a global transaction. Durable (in the
/// coordinator log for 2PC, at an acceptor quorum for Paxos Commit)
/// before any participant learns it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Every participant voted yes; all members commit.
    Commit,
    /// Some participant voted no, was unreachable, or the transaction
    /// is presumed aborted; all members abort.
    Abort,
}

/// One global transaction: an id chosen by the application plus the
/// cross-node membership ([`CrossGroup`]) that must reach one outcome.
#[derive(Clone, Debug)]
pub struct GlobalTxn {
    /// Application-chosen global transaction id; names the coordinator
    /// log record (2PC) and the consensus instances (Paxos Commit).
    pub gid: u64,
    /// The members, across nodes. Only seeds are needed: each
    /// participant widens its members to their local GC components
    /// during prepare.
    pub group: CrossGroup,
}

impl GlobalTxn {
    /// An empty global transaction.
    pub fn new(gid: u64) -> GlobalTxn {
        GlobalTxn {
            gid,
            group: CrossGroup::new(),
        }
    }

    /// Add the member `tid` on node `node` (a transport index).
    pub fn add_member(&mut self, node: u32, tid: Tid) {
        self.group = std::mem::take(&mut self.group).with(NodeId(node), tid);
    }

    /// The per-node membership, the unit of one prepare/decide exchange.
    pub fn members(&self) -> Vec<(NodeId, Vec<Tid>)> {
        self.group.by_node()
    }
}

/// Cooperative termination (DESIGN.md §14.4): given a durable decision,
/// drive every member node to it, tolerating participants that already
/// learned it and participants that restarted in doubt. Used by both
/// protocols' recovery paths and retried delivery.
///
/// Per node: query the first seed's state; a committed node is done; a
/// prepared node is re-prepared (idempotent — this recovers the full
/// widened group, which a restarted coordinator no longer knows) and
/// sent the decision; anything else is only legal on the abort path,
/// where an idempotent abort-decide of the seeds suffices.
pub(crate) fn terminate(
    transport: &dyn CommitTransport,
    co: Option<&CoordObs>,
    gid: u64,
    members: &[(NodeId, Vec<Tid>)],
    decision: Decision,
) -> Result<(), CoordError> {
    for (node, tids) in members {
        let n = node.0 as usize;
        let state = match coord_send(
            transport,
            co,
            gid,
            n,
            CommitMessage::QueryState { tid: tids[0] },
        )? {
            CommitMessage::State(s) => s,
            other => return Err(CoordError::protocol("query-state", &other)),
        };
        match (state, decision) {
            (ParticipantState::Committed, Decision::Commit) => continue,
            (ParticipantState::Committed, Decision::Abort) => {
                return Err(CoordError::Protocol(format!(
                    "{node} already committed but the decision is abort"
                )))
            }
            (ParticipantState::Prepared, _) => {
                let group = match coord_send(
                    transport,
                    co,
                    gid,
                    n,
                    CommitMessage::Prepare { tids: tids.clone() },
                )? {
                    CommitMessage::Vote { yes: true, group } => group,
                    other => return Err(CoordError::protocol("re-prepare", &other)),
                };
                let msg = match decision {
                    Decision::Commit => CommitMessage::CommitDecide { tids: group },
                    Decision::Abort => CommitMessage::AbortDecide { tids: group },
                };
                match coord_send(transport, co, gid, n, msg)? {
                    CommitMessage::Ack => {}
                    other => return Err(CoordError::protocol("decide", &other)),
                }
            }
            (_, Decision::Abort) => {
                // never prepared (or already aborted): abort-decide is
                // an idempotent abort_many of whatever is still live
                let _ = coord_send(
                    transport,
                    co,
                    gid,
                    n,
                    CommitMessage::AbortDecide { tids: tids.clone() },
                )?;
            }
            (s, Decision::Commit) => {
                return Err(CoordError::Protocol(format!(
                    "{node} is {s:?} on the commit path — a logged commit \
                     decision implies every participant prepared"
                )))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::Config;
    use std::sync::Arc;

    /// Stage one finished-but-undecided txn writing `val` on `node`.
    pub(crate) fn stage(node: &ParticipantNode, oid: asset_common::Oid, val: &[u8]) -> Tid {
        let db = node.db();
        let v = val.to_vec();
        let t = db.initiate(move |ctx| ctx.write(oid, v.clone())).unwrap();
        db.begin(t).unwrap();
        db.wait(t).unwrap();
        t
    }

    pub(crate) fn mem_nodes(n: usize) -> Vec<Arc<ParticipantNode>> {
        (0..n)
            .map(|_| Arc::new(ParticipantNode::open(Config::in_memory()).unwrap()))
            .collect()
    }

    #[test]
    fn coordinator_obs_counts_messages_and_mirrors_trace_events() {
        let nodes = mem_nodes(2);
        for n in &nodes {
            n.db().obs().enable_tracing(64);
        }
        let oids: Vec<_> = nodes.iter().map(|n| n.db().new_oid()).collect();
        let hub = Obs::shared();
        hub.enable_tracing(64);
        let transport = Arc::new(ChannelTransport::new(nodes.clone()).with_obs(Arc::clone(&hub)));
        let coord = TwoPhase::new(transport, Arc::new(CoordLog::in_memory()))
            .with_obs(CoordObs::new(7, Arc::clone(&hub)));
        let mut g = GlobalTxn::new(41);
        for (i, oid) in oids.iter().enumerate() {
            let t = stage(&nodes[i], *oid, b"obs");
            g.add_member(i as u32, t);
        }
        assert_eq!(coord.commit(&g).unwrap(), Decision::Commit);
        let snap = hub.snapshot();
        assert_eq!(snap.counters.coord_msg_prepare, 2);
        assert_eq!(snap.counters.coord_msg_commit_decide, 2);
        assert_eq!(snap.counters.coord_msg_abort_decide, 0);
        assert_eq!(snap.decision_ns.count, 1, "one decision recorded");
        // the coordinator lane has a send/ack pair per delivered message
        let events = hub.trace();
        let sends = events
            .iter()
            .filter(|e| matches!(e.kind, asset_obs::EventKind::MsgSend { root: 41, .. }))
            .count();
        let acks = events
            .iter()
            .filter(|e| matches!(e.kind, asset_obs::EventKind::MsgAck { root: 41, .. }))
            .count();
        assert_eq!(sends, 4, "2 prepares + 2 commit decides");
        assert_eq!(acks, 4);
        // each participant mirrored recv/reply pairs tagged with the
        // coordinator's origin node id
        for n in &nodes {
            let events = n.db().obs().trace();
            let recvs = events
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        asset_obs::EventKind::MsgRecv {
                            origin: 7,
                            root: 41,
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(recvs, 2, "prepare + commit decide received");
        }
    }

    #[test]
    fn global_txn_members_fold_per_node() {
        let mut g = GlobalTxn::new(9);
        g.add_member(1, Tid(4));
        g.add_member(0, Tid(4));
        g.add_member(1, Tid(5));
        let m = g.members();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], (NodeId(0), vec![Tid(4)]));
        assert_eq!(m[1], (NodeId(1), vec![Tid(4), Tid(5)]));
    }
}

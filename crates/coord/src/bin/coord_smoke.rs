//! Distributed-commit smoke test for CI: a 3-node in-process cluster,
//! a scripted coordinator crash at each decision-window failpoint, and
//! a recovery coordinator asserting the cluster converges to one
//! outcome under both protocols. Exits non-zero on any violation.
//!
//! Run: `cargo run -p asset-coord --bin coord-smoke`
//!
//! With `--tcp [--trace-out PATH]` it instead boots two wire servers
//! ([`AssetServer`]) with per-node Prometheus endpoints, drives a 2PC
//! and a Paxos commit through [`TcpTransport`] with tracing on, scrapes
//! both endpoints live, merges the three per-node event rings into one
//! fleet trace, asserts the cross-node flow edges, and (optionally)
//! writes the merged Chrome trace to `PATH`.

use asset_annot::verify_allow;
use asset_common::{Config, Oid, Tid};
use asset_coord::failpoints::{COORD_AFTER_DECIDE, COORD_BEFORE_DECIDE};
use asset_coord::{
    Acceptor, ChannelTransport, CoordLog, CoordObs, Decision, GlobalTxn, ParticipantNode,
    PaxosCommit, TcpTransport, TwoPhase,
};
use asset_core::Database;
use asset_faults::{FaultAction, FaultRegistry, Trigger};
use asset_obs::Obs;
use asset_server::{protocol::opcode, AssetServer};
use asset_trace::chrome;
use asset_trace::prom::{self, PromServer};
use asset_trace::span::CausalGraph;
use std::sync::Arc;

const NODES: usize = 3;

struct Cluster {
    transport: Arc<ChannelTransport>,
    oids: Vec<Oid>,
}

#[verify_allow(
    no_panics,
    reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
)]
fn cluster() -> Cluster {
    let nodes: Vec<Arc<ParticipantNode>> = (0..NODES)
        .map(|_| Arc::new(ParticipantNode::open(Config::in_memory()).expect("open node")))
        .collect();
    let oids = nodes.iter().map(|n| n.db().new_oid()).collect();
    Cluster {
        transport: Arc::new(ChannelTransport::new(nodes)),
        oids,
    }
}

impl Cluster {
    /// Stage one finished-but-undecided write per node; the global txn.
    #[verify_allow(
        no_panics,
        reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
    )]
    fn stage(&self, gid: u64) -> GlobalTxn {
        let mut g = GlobalTxn::new(gid);
        for (i, oid) in self.oids.iter().enumerate() {
            let db = self.transport.node(i).db();
            let (oid, val) = (*oid, format!("gid{gid}").into_bytes());
            let t: Tid = db
                .initiate(move |ctx| ctx.write(oid, val.clone()))
                .expect("initiate");
            db.begin(t).expect("begin");
            db.wait(t).expect("wait");
            g.add_member(i as u32, t);
        }
        g
    }

    /// Every node's value for its oid, plus whether anything is in doubt.
    #[verify_allow(
        no_panics,
        reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
    )]
    fn outcomes(&self) -> (Vec<Option<Vec<u8>>>, usize) {
        let mut vals = Vec::new();
        let mut in_doubt = 0;
        for (i, oid) in self.oids.iter().enumerate() {
            let db = self.transport.node(i).db();
            vals.push(db.peek(*oid).expect("peek"));
            in_doubt += db.in_doubt_transactions().len();
        }
        (vals, in_doubt)
    }
}

/// Assert the cluster reached `want` atomically: all nodes agree, no
/// one is left in doubt.
fn assert_converged(c: &Cluster, gid: u64, want: Decision, label: &str) {
    let (vals, in_doubt) = c.outcomes();
    let expected = match want {
        Decision::Commit => Some(format!("gid{gid}").into_bytes()),
        Decision::Abort => None,
    };
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(
            *v, expected,
            "{label}: node {i} diverged (mixed outcome in a cross-node group)"
        );
    }
    assert_eq!(in_doubt, 0, "{label}: transactions left in doubt");
    println!("  ok: {label} -> {want:?}, all {NODES} nodes agree, none in doubt");
}

#[verify_allow(
    no_panics,
    reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
)]
fn twopc_scenarios() {
    // happy path
    let c = cluster();
    let g = c.stage(1);
    let log = Arc::new(CoordLog::in_memory());
    let coord = TwoPhase::new(c.transport.clone(), log.clone());
    assert_eq!(coord.commit(&g).expect("2pc commit"), Decision::Commit);
    assert_converged(&c, 1, Decision::Commit, "2pc/no-fault");

    // coordinator dies before the decision is logged: presumed abort
    let c = cluster();
    let g = c.stage(2);
    let log = Arc::new(CoordLog::in_memory());
    let faults = Arc::new(FaultRegistry::new());
    faults.arm(COORD_BEFORE_DECIDE, Trigger::Once, FaultAction::Error);
    let coord = TwoPhase::new(c.transport.clone(), log.clone()).with_faults(faults);
    assert!(coord.commit(&g).is_err(), "scripted crash must surface");
    let (_, in_doubt) = c.outcomes();
    assert_eq!(in_doubt, NODES, "all participants prepared and in doubt");
    let recovery = TwoPhase::new(c.transport.clone(), log);
    assert_eq!(recovery.recover(&g).expect("recover"), Decision::Abort);
    assert_converged(&c, 2, Decision::Abort, "2pc/crash-before-decide");

    // coordinator dies after logging commit: recovery re-delivers it
    let c = cluster();
    let g = c.stage(3);
    let log = Arc::new(CoordLog::in_memory());
    let faults = Arc::new(FaultRegistry::new());
    faults.arm(COORD_AFTER_DECIDE, Trigger::Once, FaultAction::Error);
    let coord = TwoPhase::new(c.transport.clone(), log.clone()).with_faults(faults);
    assert!(coord.commit(&g).is_err(), "scripted crash must surface");
    let recovery = TwoPhase::new(c.transport.clone(), log);
    assert_eq!(recovery.recover(&g).expect("recover"), Decision::Commit);
    assert_converged(&c, 3, Decision::Commit, "2pc/crash-after-decide");
}

#[verify_allow(
    no_panics,
    reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
)]
fn paxos_scenarios() {
    let acceptors =
        || -> Vec<Arc<Acceptor>> { (0..3).map(|_| Arc::new(Acceptor::new())).collect() };

    // happy path
    let c = cluster();
    let g = c.stage(4);
    let acc = acceptors();
    let coord = PaxosCommit::new(c.transport.clone(), acc);
    assert_eq!(coord.commit(&g).expect("paxos commit"), Decision::Commit);
    assert_converged(&c, 4, Decision::Commit, "paxos/no-fault");

    // coordinator dies before any instance decides: free instances, abort
    let c = cluster();
    let g = c.stage(5);
    let acc = acceptors();
    let faults = Arc::new(FaultRegistry::new());
    faults.arm(COORD_BEFORE_DECIDE, Trigger::Once, FaultAction::Error);
    let coord = PaxosCommit::new(c.transport.clone(), acc.clone()).with_faults(faults);
    assert!(coord.commit(&g).is_err(), "scripted crash must surface");
    let recovery = PaxosCommit::recovery(c.transport.clone(), acc, 1);
    assert_eq!(recovery.recover(&g).expect("recover"), Decision::Abort);
    assert_converged(&c, 5, Decision::Abort, "paxos/crash-before-decide");

    // coordinator dies after the quorum accepted: recovery finds Commit
    // with no trace of the dead coordinator — the non-blocking property
    let c = cluster();
    let g = c.stage(6);
    let acc = acceptors();
    let faults = Arc::new(FaultRegistry::new());
    faults.arm(COORD_AFTER_DECIDE, Trigger::Once, FaultAction::Error);
    let coord = PaxosCommit::new(c.transport.clone(), acc.clone()).with_faults(faults);
    assert!(coord.commit(&g).is_err(), "scripted crash must surface");
    let recovery = PaxosCommit::recovery(c.transport.clone(), acc, 1);
    assert_eq!(recovery.recover(&g).expect("recover"), Decision::Commit);
    assert_converged(&c, 6, Decision::Commit, "paxos/crash-after-decide");

    // one dead acceptor is a non-event
    let c = cluster();
    let g = c.stage(7);
    let acc = acceptors();
    acc[2].kill();
    let coord = PaxosCommit::new(c.transport.clone(), acc);
    assert_eq!(coord.commit(&g).expect("paxos commit"), Decision::Commit);
    assert_converged(&c, 7, Decision::Commit, "paxos/one-acceptor-down");
}

/// Wire-mode node count and the coordinator's own fleet node id
/// (distinct from every participant index, per the [`TcpTransport`]
/// node-id convention).
const TCP_NODES: usize = 2;
const COORD_NODE: u32 = 2;

/// `--tcp`: the full observability path end to end — wire servers,
/// traced coordinator, live Prometheus scrapes, merged fleet trace.
#[verify_allow(
    no_panics,
    reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
)]
fn tcp_scenario(trace_out: Option<&str>) {
    // Two in-process wire servers; --node-id equals the transport index
    // so the merged trace lanes line up. Each gets its own Prometheus
    // endpoint, exactly like `asset-server --serve-metrics`.
    let mut servers = Vec::new();
    let mut exporters = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..TCP_NODES {
        let (db, _) =
            Database::open(Config::in_memory().with_exec_workers(2)).expect("open node db");
        db.obs().enable_tracing(4096);
        let server =
            AssetServer::spawn_node(db, "127.0.0.1:0", i as u32).expect("bind wire server");
        let exporter =
            PromServer::spawn("127.0.0.1:0", server.metrics_source()).expect("bind metrics");
        addrs.push(server.local_addr().to_string());
        exporters.push(exporter);
        servers.push(server);
    }

    let hub = Obs::shared();
    hub.enable_tracing(4096);
    let transport = Arc::new(TcpTransport::new(addrs).with_obs(Arc::clone(&hub)));

    // Stage one write per node over the wire. PREPARE only accepts the
    // requesting session's transactions, so staging goes through the
    // transport's own cached connections (`with_node`).
    let stage = |gid: u64| -> (GlobalTxn, Vec<u64>) {
        let mut g = GlobalTxn::new(gid);
        let mut oids = Vec::new();
        for i in 0..TCP_NODES {
            let (tid, oid) = transport
                .with_node(i, |c| {
                    let oid = c.new_oid()?;
                    let t = c.begin()?;
                    c.write(t, oid, format!("gid{gid}").as_bytes())?;
                    Ok((t, oid))
                })
                .expect("stage over wire");
            g.add_member(i as u32, Tid(tid));
            oids.push(oid);
        }
        (g, oids)
    };
    let check_committed = |servers: &[AssetServer], oids: &[u64], gid: u64, label: &str| {
        for (i, oid) in oids.iter().enumerate() {
            let v = servers[i].database().peek(Oid(*oid)).expect("peek");
            let want = Some(format!("gid{gid}").into_bytes());
            assert_eq!(v, want, "{label}: node {i} missing the committed value");
        }
    };

    // 2PC over TCP, traced end to end.
    let (g, oids) = stage(10);
    let log = Arc::new(CoordLog::in_memory());
    let coord =
        TwoPhase::new(transport.clone(), log).with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)));
    assert_eq!(coord.commit(&g).expect("2pc over tcp"), Decision::Commit);
    check_committed(&servers, &oids, 10, "tcp/2pc");
    println!("  ok: tcp/2pc -> Commit, {TCP_NODES} wire nodes agree");

    // Paxos Commit over TCP, same transport and hub.
    let (g, oids) = stage(11);
    let acc: Vec<Arc<Acceptor>> = (0..3).map(|_| Arc::new(Acceptor::new())).collect();
    let pax = PaxosCommit::new(transport.clone(), acc)
        .with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)));
    assert_eq!(pax.commit(&g).expect("paxos over tcp"), Decision::Commit);
    check_committed(&servers, &oids, 11, "tcp/paxos");
    println!("  ok: tcp/paxos -> Commit, {TCP_NODES} wire nodes agree");

    // Live scrape of both per-node endpoints: the node is up, nothing
    // is left in doubt, and the prepare service-time histogram filled.
    for (i, ex) in exporters.iter().enumerate() {
        let body = prom::scrape(ex.addr()).expect("scrape node endpoint");
        let up = prom::sample(&body, &format!("asset_node_up{{node=\"{i}\"}}"));
        assert_eq!(
            up,
            Some(1.0),
            "tcp/metrics: node {i} must export asset_node_up"
        );
        let in_doubt = prom::sample(&body, &format!("asset_server_in_doubt{{node=\"{i}\"}}"));
        assert_eq!(
            in_doubt,
            Some(0.0),
            "tcp/metrics: decisions delivered, node {i} must not be in doubt"
        );
        let prepared = prom::sample(&body, "asset_server_op_prepare_ns_count");
        assert_eq!(
            prepared,
            Some(2.0),
            "tcp/metrics: node {i} served one PREPARE per protocol"
        );
    }
    println!(
        "  ok: tcp/metrics {} endpoints scraped live",
        exporters.len()
    );

    // Coordinator-side histograms and counters filled under tracing.
    let snap = hub.snapshot();
    assert_eq!(
        snap.decision_ns.count, 2,
        "one decision-latency sample per protocol"
    );
    assert_eq!(snap.counters.coord_msg_prepare, (2 * TCP_NODES) as u64);
    assert_eq!(
        snap.counters.coord_msg_commit_decide,
        (2 * TCP_NODES) as u64
    );

    // Merge the coordinator hub ring with each server's ring into one
    // fleet trace and assert the cross-node flow edges exist.
    let mut graphs = vec![CausalGraph::from_node_events(COORD_NODE, &hub.trace())];
    for s in &servers {
        graphs.push(CausalGraph::from_node_events(
            s.node_id(),
            &s.database().obs().trace(),
        ));
    }
    let fleet = CausalGraph::merge(graphs);
    let prepares = fleet
        .flows
        .iter()
        .filter(|f| f.opcode == opcode::PREPARE)
        .count();
    let decides = fleet
        .flows
        .iter()
        .filter(|f| f.opcode == opcode::COMMIT_DECIDE)
        .count();
    assert!(
        prepares >= 2 * TCP_NODES,
        "expected a PREPARE flow per node per protocol, got {prepares}"
    );
    assert!(
        decides >= 2 * TCP_NODES,
        "expected COMMIT_DECIDE fan-out flows to every node, got {decides}"
    );
    println!(
        "  ok: tcp/trace merged {} node lanes, {} cross-node flows",
        fleet.nodes.len(),
        fleet.flows.len()
    );

    if let Some(path) = trace_out {
        std::fs::write(path, chrome::render_fleet(&fleet)).expect("write merged trace");
        println!("  ok: tcp/trace wrote merged Chrome trace to {path}");
    }

    // Drop the coordinator's connections before asking servers to stop.
    drop(coord);
    drop(pax);
    drop(transport);
    for s in servers {
        s.shutdown();
        s.join();
    }
    for mut ex in exporters {
        ex.shutdown();
    }
}

fn main() {
    asset_faults::silence_crash_panics();
    let mut tcp = false;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tcp" => tcp = true,
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(p),
                None => {
                    eprintln!("coord-smoke: --trace-out needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: coord-smoke [--tcp [--trace-out PATH]]");
                return;
            }
            other => {
                eprintln!("coord-smoke: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if tcp {
        println!(
            "coord-smoke: {TCP_NODES} wire servers + traced coordinator, 2PC + Paxos over TCP"
        );
        tcp_scenario(trace_out.as_deref());
        println!("coord-smoke: tcp scenario converged");
        return;
    }
    println!("coord-smoke: {NODES}-node cluster, 2PC + Paxos Commit");
    twopc_scenarios();
    paxos_scenarios();
    println!("coord-smoke: all scenarios converged");
}

//! Distributed-commit smoke test for CI: a 3-node in-process cluster,
//! a scripted coordinator crash at each decision-window failpoint, and
//! a recovery coordinator asserting the cluster converges to one
//! outcome under both protocols. Exits non-zero on any violation.
//!
//! Run: `cargo run -p asset-coord --bin coord-smoke`

use asset_annot::verify_allow;
use asset_common::{Config, Oid, Tid};
use asset_coord::failpoints::{COORD_AFTER_DECIDE, COORD_BEFORE_DECIDE};
use asset_coord::{
    Acceptor, ChannelTransport, CoordLog, Decision, GlobalTxn, ParticipantNode, PaxosCommit,
    TwoPhase,
};
use asset_faults::{FaultAction, FaultRegistry, Trigger};
use std::sync::Arc;

const NODES: usize = 3;

struct Cluster {
    transport: Arc<ChannelTransport>,
    oids: Vec<Oid>,
}

#[verify_allow(
    no_panics,
    reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
)]
fn cluster() -> Cluster {
    let nodes: Vec<Arc<ParticipantNode>> = (0..NODES)
        .map(|_| Arc::new(ParticipantNode::open(Config::in_memory()).expect("open node")))
        .collect();
    let oids = nodes.iter().map(|n| n.db().new_oid()).collect();
    Cluster {
        transport: Arc::new(ChannelTransport::new(nodes)),
        oids,
    }
}

impl Cluster {
    /// Stage one finished-but-undecided write per node; the global txn.
    #[verify_allow(
        no_panics,
        reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
    )]
    fn stage(&self, gid: u64) -> GlobalTxn {
        let mut g = GlobalTxn::new(gid);
        for (i, oid) in self.oids.iter().enumerate() {
            let db = self.transport.node(i).db();
            let (oid, val) = (*oid, format!("gid{gid}").into_bytes());
            let t: Tid = db
                .initiate(move |ctx| ctx.write(oid, val.clone()))
                .expect("initiate");
            db.begin(t).expect("begin");
            db.wait(t).expect("wait");
            g.add_member(i as u32, t);
        }
        g
    }

    /// Every node's value for its oid, plus whether anything is in doubt.
    #[verify_allow(
        no_panics,
        reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
    )]
    fn outcomes(&self) -> (Vec<Option<Vec<u8>>>, usize) {
        let mut vals = Vec::new();
        let mut in_doubt = 0;
        for (i, oid) in self.oids.iter().enumerate() {
            let db = self.transport.node(i).db();
            vals.push(db.peek(*oid).expect("peek"));
            in_doubt += db.in_doubt_transactions().len();
        }
        (vals, in_doubt)
    }
}

/// Assert the cluster reached `want` atomically: all nodes agree, no
/// one is left in doubt.
fn assert_converged(c: &Cluster, gid: u64, want: Decision, label: &str) {
    let (vals, in_doubt) = c.outcomes();
    let expected = match want {
        Decision::Commit => Some(format!("gid{gid}").into_bytes()),
        Decision::Abort => None,
    };
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(
            *v, expected,
            "{label}: node {i} diverged (mixed outcome in a cross-node group)"
        );
    }
    assert_eq!(in_doubt, 0, "{label}: transactions left in doubt");
    println!("  ok: {label} -> {want:?}, all {NODES} nodes agree, none in doubt");
}

#[verify_allow(
    no_panics,
    reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
)]
fn twopc_scenarios() {
    // happy path
    let c = cluster();
    let g = c.stage(1);
    let log = Arc::new(CoordLog::in_memory());
    let coord = TwoPhase::new(c.transport.clone(), log.clone());
    assert_eq!(coord.commit(&g).expect("2pc commit"), Decision::Commit);
    assert_converged(&c, 1, Decision::Commit, "2pc/no-fault");

    // coordinator dies before the decision is logged: presumed abort
    let c = cluster();
    let g = c.stage(2);
    let log = Arc::new(CoordLog::in_memory());
    let faults = Arc::new(FaultRegistry::new());
    faults.arm(COORD_BEFORE_DECIDE, Trigger::Once, FaultAction::Error);
    let coord = TwoPhase::new(c.transport.clone(), log.clone()).with_faults(faults);
    assert!(coord.commit(&g).is_err(), "scripted crash must surface");
    let (_, in_doubt) = c.outcomes();
    assert_eq!(in_doubt, NODES, "all participants prepared and in doubt");
    let recovery = TwoPhase::new(c.transport.clone(), log);
    assert_eq!(recovery.recover(&g).expect("recover"), Decision::Abort);
    assert_converged(&c, 2, Decision::Abort, "2pc/crash-before-decide");

    // coordinator dies after logging commit: recovery re-delivers it
    let c = cluster();
    let g = c.stage(3);
    let log = Arc::new(CoordLog::in_memory());
    let faults = Arc::new(FaultRegistry::new());
    faults.arm(COORD_AFTER_DECIDE, Trigger::Once, FaultAction::Error);
    let coord = TwoPhase::new(c.transport.clone(), log.clone()).with_faults(faults);
    assert!(coord.commit(&g).is_err(), "scripted crash must surface");
    let recovery = TwoPhase::new(c.transport.clone(), log);
    assert_eq!(recovery.recover(&g).expect("recover"), Decision::Commit);
    assert_converged(&c, 3, Decision::Commit, "2pc/crash-after-decide");
}

#[verify_allow(
    no_panics,
    reason = "CI smoke harness: a panic here is the failure signal the job exists to raise"
)]
fn paxos_scenarios() {
    let acceptors =
        || -> Vec<Arc<Acceptor>> { (0..3).map(|_| Arc::new(Acceptor::new())).collect() };

    // happy path
    let c = cluster();
    let g = c.stage(4);
    let acc = acceptors();
    let coord = PaxosCommit::new(c.transport.clone(), acc);
    assert_eq!(coord.commit(&g).expect("paxos commit"), Decision::Commit);
    assert_converged(&c, 4, Decision::Commit, "paxos/no-fault");

    // coordinator dies before any instance decides: free instances, abort
    let c = cluster();
    let g = c.stage(5);
    let acc = acceptors();
    let faults = Arc::new(FaultRegistry::new());
    faults.arm(COORD_BEFORE_DECIDE, Trigger::Once, FaultAction::Error);
    let coord = PaxosCommit::new(c.transport.clone(), acc.clone()).with_faults(faults);
    assert!(coord.commit(&g).is_err(), "scripted crash must surface");
    let recovery = PaxosCommit::recovery(c.transport.clone(), acc, 1);
    assert_eq!(recovery.recover(&g).expect("recover"), Decision::Abort);
    assert_converged(&c, 5, Decision::Abort, "paxos/crash-before-decide");

    // coordinator dies after the quorum accepted: recovery finds Commit
    // with no trace of the dead coordinator — the non-blocking property
    let c = cluster();
    let g = c.stage(6);
    let acc = acceptors();
    let faults = Arc::new(FaultRegistry::new());
    faults.arm(COORD_AFTER_DECIDE, Trigger::Once, FaultAction::Error);
    let coord = PaxosCommit::new(c.transport.clone(), acc.clone()).with_faults(faults);
    assert!(coord.commit(&g).is_err(), "scripted crash must surface");
    let recovery = PaxosCommit::recovery(c.transport.clone(), acc, 1);
    assert_eq!(recovery.recover(&g).expect("recover"), Decision::Commit);
    assert_converged(&c, 6, Decision::Commit, "paxos/crash-after-decide");

    // one dead acceptor is a non-event
    let c = cluster();
    let g = c.stage(7);
    let acc = acceptors();
    acc[2].kill();
    let coord = PaxosCommit::new(c.transport.clone(), acc);
    assert_eq!(coord.commit(&g).expect("paxos commit"), Decision::Commit);
    assert_converged(&c, 7, Decision::Commit, "paxos/one-acceptor-down");
}

fn main() {
    asset_faults::silence_crash_panics();
    println!("coord-smoke: {NODES}-node cluster, 2PC + Paxos Commit");
    twopc_scenarios();
    paxos_scenarios();
    println!("coord-smoke: all scenarios converged");
}

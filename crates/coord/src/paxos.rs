//! Paxos Commit (Gray & Lamport, *Consensus on Transaction Commit*) —
//! the non-blocking member of the protocol family (DESIGN.md §14.5).
//!
//! One consensus **instance** per participant decides that
//! participant's vote; the global decision is a pure function of the
//! decided instances (commit iff every instance decided *yes*). The
//! instance's value is durable once a **majority of acceptors** accept
//! it — there is no coordinator log, so the coordinator's death loses
//! nothing: any recovery coordinator that can reach an acceptor
//! majority reads (or completes) each instance at a higher ballot and
//! finishes the protocol. 2PC is the one-acceptor special case, and the
//! one acceptor doubling as coordinator is exactly why 2PC blocks.
//!
//! The working coordinator is ballot 0's owner, so it skips phase 1 —
//! the Prepare/Vote exchange with participants plus one phase-2 round
//! to the acceptors is the whole happy path: the same message depth as
//! 2PC with the log force replaced by a quorum round.
//!
//! A recovery coordinator runs full Paxos at a higher ballot: phase 1
//! to a majority learns any value the instance may already have decided
//! (choose the highest-ballot accepted value); a **free** instance —
//! no acceptor has accepted anything — is proposed *no* (the
//! participant may be crashed and unprepared; abort is the only safe
//! decision the protocol can force). Phase 2 at the new ballot makes
//! the choice durable. Promises at the higher ballot fence the old
//! coordinator out: its ballot-0 phase 2 can no longer reach a quorum.

use crate::failpoints::{COORD_AFTER_DECIDE, COORD_BEFORE_DECIDE};
use crate::transport::{CommitMessage, CommitTransport, CoordError};
use crate::{coord_send, terminate, CoordObs, Decision, GlobalTxn};
use asset_common::Tid;
use asset_dep::NodeId;
use asset_faults::{FaultAction, FaultRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One consensus instance: the vote of participant `node` in global
/// transaction `gid`.
type Instance = (u64, u32);

#[derive(Clone, Copy, Default)]
struct Slot {
    /// Highest ballot promised (phase 1) or accepted (phase 2).
    promised: u64,
    /// The accepted (ballot, vote) pair, if any.
    accepted: Option<(u64, bool)>,
}

/// One Paxos acceptor. Real deployments would place each on its own
/// machine; here an acceptor is an in-process object that can be
/// [`kill`](Self::kill)ed to model machine failure — the protocol's
/// claim is exactly that a minority of dead acceptors changes nothing.
#[derive(Default)]
pub struct Acceptor {
    slots: Mutex<HashMap<Instance, Slot>>,
    down: AtomicBool,
}

impl Acceptor {
    /// A fresh acceptor with no state.
    pub fn new() -> Acceptor {
        Acceptor::default()
    }

    /// Take the acceptor offline: it answers nothing until
    /// [`revive`](Self::revive). Its accepted state is retained —
    /// acceptors persist their slots; only availability is lost.
    pub fn kill(&self) {
        self.down.store(true, Ordering::Release);
    }

    /// Bring the acceptor back online.
    pub fn revive(&self) {
        self.down.store(false, Ordering::Release);
    }

    /// Phase 1 (prepare): promise not to accept below `ballot`.
    /// `Ok(accepted)` carries any value already accepted; `Err` is a
    /// nack (higher promise outstanding) or no answer (down).
    fn phase1(&self, inst: Instance, ballot: u64) -> Result<Option<(u64, bool)>, ()> {
        if self.down.load(Ordering::Acquire) {
            return Err(());
        }
        let mut slots = self.slots.lock();
        let slot = slots.entry(inst).or_default();
        if ballot >= slot.promised {
            slot.promised = ballot;
            Ok(slot.accepted)
        } else {
            Err(())
        }
    }

    /// Phase 2 (accept): accept `vote` at `ballot` unless a higher
    /// ballot was promised. `Err` is a nack or no answer.
    fn phase2(&self, inst: Instance, ballot: u64, vote: bool) -> Result<(), ()> {
        if self.down.load(Ordering::Acquire) {
            return Err(());
        }
        let mut slots = self.slots.lock();
        let slot = slots.entry(inst).or_default();
        if ballot >= slot.promised {
            slot.promised = ballot;
            slot.accepted = Some((ballot, vote));
            Ok(())
        } else {
            Err(())
        }
    }
}

/// A Paxos Commit coordinator: participant votes decided by an acceptor
/// quorum instead of a coordinator log.
pub struct PaxosCommit {
    transport: Arc<dyn CommitTransport>,
    acceptors: Vec<Arc<Acceptor>>,
    /// This coordinator's ballot: 0 for the initial coordinator (which
    /// may skip phase 1), higher for recovery coordinators.
    ballot: u64,
    faults: Arc<FaultRegistry>,
    obs: Option<CoordObs>,
}

impl PaxosCommit {
    /// The initial coordinator (ballot 0) over `acceptors`.
    pub fn new(transport: Arc<dyn CommitTransport>, acceptors: Vec<Arc<Acceptor>>) -> PaxosCommit {
        PaxosCommit {
            transport,
            acceptors,
            ballot: 0,
            faults: Arc::new(FaultRegistry::new()),
            obs: None,
        }
    }

    /// A recovery coordinator at `ballot` (must exceed every prior
    /// coordinator's — the harness picks; real systems derive it from a
    /// unique coordinator id).
    pub fn recovery(
        transport: Arc<dyn CommitTransport>,
        acceptors: Vec<Arc<Acceptor>>,
        ballot: u64,
    ) -> PaxosCommit {
        assert!(ballot > 0, "recovery coordinators need a ballot above 0");
        PaxosCommit {
            transport,
            acceptors,
            ballot,
            faults: Arc::new(FaultRegistry::new()),
            obs: None,
        }
    }

    /// Builder-style: script coordinator crashes through `faults`.
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> PaxosCommit {
        self.faults = faults;
        self
    }

    /// Builder-style: record coordinator-side observability into `co` —
    /// `coord_msg_*` counters, the `decision_ns` histogram, and (with
    /// tracing enabled on the hub) `MsgSend`/`MsgAck` events plus a
    /// trace context on every message (DESIGN.md §7.2).
    pub fn with_obs(mut self, co: CoordObs) -> PaxosCommit {
        self.obs = Some(co);
        self
    }

    fn send(&self, gid: u64, node: usize, msg: CommitMessage) -> Result<CommitMessage, CoordError> {
        coord_send(self.transport.as_ref(), self.obs.as_ref(), gid, node, msg)
    }

    fn quorum(&self) -> usize {
        self.acceptors.len() / 2 + 1
    }

    /// Phase 2 for one instance: `vote` must be accepted by a majority.
    fn decide_instance(&self, inst: Instance, vote: bool) -> Result<(), CoordError> {
        let accepts = self
            .acceptors
            .iter()
            .filter(|a| a.phase2(inst, self.ballot, vote).is_ok())
            .count();
        if accepts >= self.quorum() {
            Ok(())
        } else {
            Err(CoordError::NoQuorum { instance: inst.1 })
        }
    }

    /// Drive `txn` to a decision: collect participant votes, make each
    /// vote durable at an acceptor quorum, deliver the decision.
    /// Requires a quorum — with a majority of acceptors down the
    /// protocol (correctly) cannot decide.
    pub fn commit(&self, txn: &GlobalTxn) -> Result<Decision, CoordError> {
        let started = Instant::now();
        let members = txn.members();
        // participant voting round, identical to 2PC phase 1
        let mut prepared: Vec<(NodeId, Vec<Tid>)> = Vec::new();
        let mut votes: Vec<(u32, bool)> = Vec::new();
        for (node, tids) in &members {
            let sent = self.send(
                txn.gid,
                node.0 as usize,
                CommitMessage::Prepare { tids: tids.clone() },
            );
            let yes = match sent {
                Ok(CommitMessage::Vote { yes: true, group }) => {
                    prepared.push((*node, group));
                    true
                }
                Ok(CommitMessage::Vote { yes: false, .. }) => false,
                Ok(other) => return Err(CoordError::protocol("vote", &other)),
                Err(_) => false, // unreachable node votes no by proxy
            };
            votes.push((node.0, yes));
            if !yes {
                break;
            }
        }
        // instances for members never asked (early break) default to no
        for (node, _) in members.iter().skip(votes.len()) {
            votes.push((node.0, false));
        }
        if let Some(act) = self.faults.check(COORD_BEFORE_DECIDE) {
            return Err(self.realize(COORD_BEFORE_DECIDE, act));
        }
        // the decision point: every instance durable at a quorum
        for (node, yes) in &votes {
            self.decide_instance((txn.gid, *node), *yes)?;
        }
        if let Some(co) = &self.obs {
            // decision latency: first prepare sent → quorum durable
            co.obs()
                .decision_ns
                .record(started.elapsed().as_nanos() as u64);
        }
        let decision = if votes.iter().all(|(_, yes)| *yes) {
            Decision::Commit
        } else {
            Decision::Abort
        };
        if let Some(act) = self.faults.check(COORD_AFTER_DECIDE) {
            return Err(self.realize(COORD_AFTER_DECIDE, act));
        }
        // delivery, best-effort exactly as in 2PC
        for (node, group) in &prepared {
            let msg = match decision {
                Decision::Commit => CommitMessage::CommitDecide {
                    tids: group.clone(),
                },
                Decision::Abort => CommitMessage::AbortDecide {
                    tids: group.clone(),
                },
            };
            // verify: allow(status_flow) — decision is Paxos-durable; learners re-deliver lost decides
            let _ = self.send(txn.gid, node.0 as usize, msg);
        }
        if decision == Decision::Abort {
            for (node, tids) in &members {
                if !prepared.iter().any(|(n, _)| n == node) {
                    // verify: allow(status_flow) — abort decide is best-effort; participants time out
                    let _ = self.send(
                        txn.gid,
                        node.0 as usize,
                        CommitMessage::AbortDecide { tids: tids.clone() },
                    );
                }
            }
        }
        Ok(decision)
    }

    /// Recovery: learn (or force) every instance at this coordinator's
    /// ballot, then terminate the participants with the decision. Needs
    /// only an acceptor majority — the failed coordinator's state is
    /// irrelevant, which is the non-blocking property E17 measures.
    pub fn recover(&self, txn: &GlobalTxn) -> Result<Decision, CoordError> {
        assert!(self.ballot > 0, "recovery requires a ballot above 0");
        let members = txn.members();
        let mut all_yes = true;
        for (node, _) in &members {
            let inst = (txn.gid, node.0);
            // phase 1: a majority of promises, learning any accepted value
            let mut accepted: Vec<(u64, bool)> = Vec::new();
            let mut promises = 0usize;
            for a in &self.acceptors {
                if let Ok(prior) = a.phase1(inst, self.ballot) {
                    promises += 1;
                    accepted.extend(prior);
                }
            }
            if promises < self.quorum() {
                return Err(CoordError::NoQuorum { instance: node.0 });
            }
            // the value: highest-ballot accepted vote, or no for a free
            // instance (Paxos Commit's abort-on-timeout rule)
            let vote = accepted
                .iter()
                .max_by_key(|(b, _)| *b)
                .map(|(_, v)| *v)
                .unwrap_or(false);
            self.decide_instance(inst, vote)?;
            all_yes &= vote;
        }
        let decision = if all_yes {
            Decision::Commit
        } else {
            Decision::Abort
        };
        terminate(
            self.transport.as_ref(),
            self.obs.as_ref(),
            txn.gid,
            &members,
            decision,
        )?;
        Ok(decision)
    }

    fn realize(&self, point: &'static str, act: FaultAction) -> CoordError {
        match act {
            FaultAction::Crash | FaultAction::Torn { .. } => self.faults.crash_now(point),
            _ => CoordError::Io(asset_faults::injected(point)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{mem_nodes, stage};
    use crate::transport::ChannelTransport;
    use asset_faults::Trigger;

    fn cluster(
        nodes: usize,
        acceptors: usize,
    ) -> (
        Arc<ChannelTransport>,
        Vec<Arc<Acceptor>>,
        Vec<asset_common::Oid>,
    ) {
        let nodes = mem_nodes(nodes);
        let oids = nodes.iter().map(|n| n.db().new_oid()).collect();
        let transport = Arc::new(ChannelTransport::new(nodes));
        let acc = (0..acceptors).map(|_| Arc::new(Acceptor::new())).collect();
        (transport, acc, oids)
    }

    fn staged(transport: &ChannelTransport, oids: &[asset_common::Oid], gid: u64) -> GlobalTxn {
        let mut g = GlobalTxn::new(gid);
        for (i, oid) in oids.iter().enumerate() {
            let t = stage(transport.node(i), *oid, b"pax");
            g.add_member(i as u32, t);
        }
        g
    }

    #[test]
    fn unanimous_yes_commits_through_the_quorum() {
        let (transport, acc, oids) = cluster(3, 3);
        let g = staged(&transport, &oids, 1);
        let coord = PaxosCommit::new(transport.clone(), acc);
        assert_eq!(coord.commit(&g).unwrap(), Decision::Commit);
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(transport.node(i).db().peek(*oid).unwrap().unwrap(), b"pax");
        }
    }

    #[test]
    fn minority_of_dead_acceptors_changes_nothing() {
        let (transport, acc, oids) = cluster(2, 3);
        acc[0].kill();
        let g = staged(&transport, &oids, 2);
        let coord = PaxosCommit::new(transport.clone(), acc);
        assert_eq!(coord.commit(&g).unwrap(), Decision::Commit);
    }

    #[test]
    fn majority_of_dead_acceptors_blocks_the_decision() {
        let (transport, acc, oids) = cluster(2, 3);
        acc[0].kill();
        acc[1].kill();
        let g = staged(&transport, &oids, 3);
        let coord = PaxosCommit::new(transport.clone(), acc.clone());
        assert!(matches!(coord.commit(&g), Err(CoordError::NoQuorum { .. })));
        // participants are prepared and in doubt — but once a majority is
        // back, recovery completes the instances (it finds the accepted
        // yes votes from the minority, or free instances, and decides)
        acc[0].revive();
        acc[1].revive();
        let rec = PaxosCommit::recovery(transport.clone(), acc, 1);
        let d = rec.recover(&g).unwrap();
        for (i, oid) in oids.iter().enumerate() {
            let db = transport.node(i).db();
            assert!(db.in_doubt_transactions().is_empty(), "node {i} resolved");
            match d {
                Decision::Commit => {
                    assert_eq!(db.peek(*oid).unwrap().unwrap(), b"pax")
                }
                Decision::Abort => assert_eq!(db.peek(*oid).unwrap(), None),
            }
        }
    }

    #[test]
    fn coordinator_death_before_decide_recovers_to_abort() {
        let (transport, acc, oids) = cluster(2, 3);
        let g = staged(&transport, &oids, 4);
        let faults = Arc::new(FaultRegistry::new());
        faults.arm(COORD_BEFORE_DECIDE, Trigger::Once, FaultAction::Error);
        let coord = PaxosCommit::new(transport.clone(), acc.clone()).with_faults(faults);
        assert!(coord.commit(&g).is_err());
        // both participants prepared; no instance has an accepted value.
        // A recovery coordinator finds every instance free → abort.
        let rec = PaxosCommit::recovery(transport.clone(), acc, 1);
        assert_eq!(rec.recover(&g).unwrap(), Decision::Abort);
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(transport.node(i).db().peek(*oid).unwrap(), None);
            assert!(transport.node(i).db().in_doubt_transactions().is_empty());
        }
    }

    #[test]
    fn coordinator_death_after_decide_recovers_to_commit() {
        let (transport, acc, oids) = cluster(2, 3);
        let g = staged(&transport, &oids, 5);
        let faults = Arc::new(FaultRegistry::new());
        faults.arm(COORD_AFTER_DECIDE, Trigger::Once, FaultAction::Error);
        let coord = PaxosCommit::new(transport.clone(), acc.clone()).with_faults(faults);
        // every instance reached a quorum with a yes vote, then the
        // coordinator died before telling anyone
        assert!(coord.commit(&g).is_err());
        for i in 0..2 {
            assert_eq!(
                transport.node(i).db().in_doubt_transactions().len(),
                1,
                "node {i} is in doubt"
            );
        }
        // the decision is already durable at the quorum: recovery MUST
        // find Commit — no participant state consulted, no old
        // coordinator needed
        let rec = PaxosCommit::recovery(transport.clone(), acc.clone(), 1);
        assert_eq!(rec.recover(&g).unwrap(), Decision::Commit);
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(transport.node(i).db().peek(*oid).unwrap().unwrap(), b"pax");
        }
        // idempotent: a second recovery at a later ballot agrees
        let rec2 = PaxosCommit::recovery(transport.clone(), acc, 2);
        assert_eq!(rec2.recover(&g).unwrap(), Decision::Commit);
    }

    #[test]
    fn higher_ballot_fences_out_the_old_coordinator() {
        let acc = Acceptor::new();
        let inst = (9u64, 0u32);
        // recovery coordinator at ballot 5 takes over the instance
        assert_eq!(acc.phase1(inst, 5), Ok(None));
        // the old ballot-0 coordinator's phase 2 now bounces
        assert!(acc.phase2(inst, 0, true).is_err());
        // and the new coordinator's accept lands
        assert!(acc.phase2(inst, 5, false).is_ok());
        // a later phase 1 learns the accepted value
        assert_eq!(acc.phase1(inst, 6), Ok(Some((5, false))));
    }

    #[test]
    fn one_no_vote_aborts_with_no_vote_instances_durable() {
        let (transport, acc, oids) = cluster(2, 3);
        let g = staged(&transport, &oids, 7);
        // doom node 1's member before the protocol runs
        let tids1 = g.members()[1].1.clone();
        transport.node(1).db().abort(tids1[0]).unwrap();
        let coord = PaxosCommit::new(transport.clone(), acc.clone());
        assert_eq!(coord.commit(&g).unwrap(), Decision::Abort);
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(transport.node(i).db().peek(*oid).unwrap(), None, "node {i}");
        }
        // the no is durable: a recovery pass reaches the same decision
        let rec = PaxosCommit::recovery(transport.clone(), acc, 1);
        assert_eq!(rec.recover(&g).unwrap(), Decision::Abort);
    }
}

//! An in-process participant node: one [`Database`] plus the
//! participant half of the commit protocol vocabulary.
//!
//! The node wrapper exists so crash matrices can **kill** a participant
//! (simulating process death — the `Database` is dropped, its
//! executor stops, every in-memory state is gone) and **restart** it
//! from its directory, asserting that prepared transactions come back
//! in doubt with their locks held (DESIGN.md §14.3). The same handling
//! logic backs [`ChannelTransport`](crate::ChannelTransport); over TCP
//! the equivalent mapping lives in the server's dispatch.

use crate::transport::{wire_opcode, CommitMessage, ParticipantState};
use asset_annot::verify_allow;
use asset_common::{Config, Result, Tid, TxnStatus};
use asset_core::Database;
use asset_obs::{EventKind, TraceCtx};
use parking_lot::Mutex;

/// One participant node: a [`Database`] that can be killed and
/// restarted from its directory.
pub struct ParticipantNode {
    config: Config,
    db: Mutex<Option<Database>>,
}

impl ParticipantNode {
    /// Open a node from `config`. Use [`Config::on_disk`] if the node
    /// must survive [`kill`](Self::kill)/[`restart`](Self::restart).
    pub fn open(config: Config) -> Result<ParticipantNode> {
        let (db, _report) = Database::open(config.clone())?;
        Ok(ParticipantNode {
            config,
            db: Mutex::new(Some(db)),
        })
    }

    /// A handle to the node's database.
    ///
    /// # Panics
    /// If the node is down (killed and not yet restarted).
    #[verify_allow(
        no_panics,
        reason = "documented panic: grabbing a database handle from a killed node is harness misuse, not a protocol path (transports go through handle(), which reports None)"
    )]
    pub fn db(&self) -> Database {
        self.db.lock().clone().expect("participant node is down")
    }

    /// Is the node down?
    pub fn is_down(&self) -> bool {
        self.db.lock().is_none()
    }

    /// Kill the node: drop the database (executor threads stop, all
    /// volatile state is lost). A killed node answers no message until
    /// [`restart`](Self::restart).
    pub fn kill(&self) {
        *self.db.lock() = None;
    }

    /// Restart the node from its directory: clears any tripped fault
    /// registry, replays the WAL, and returns the tids restored **in
    /// doubt** (prepared before the crash, undecided). Their locks are
    /// held again; only a decide resolves them.
    pub fn restart(&self) -> Result<Vec<Tid>> {
        let mut slot = self.db.lock();
        *slot = None; // drop the old instance before reopening the dir
        #[cfg(feature = "faults")]
        self.config.faults.reset();
        let (db, _report) = Database::open(self.config.clone())?;
        let in_doubt = db.in_doubt_transactions();
        *slot = Some(db);
        Ok(in_doubt)
    }

    /// Answer one protocol message (the participant side of §14.2).
    /// `None` means the node is down. May unwind with a
    /// `CrashPoint` panic when a participant failpoint fires —
    /// transports catch that and mark the node dead.
    pub fn handle(&self, msg: CommitMessage) -> Option<CommitMessage> {
        self.handle_traced(msg, None)
    }

    /// [`handle`](Self::handle) with a propagated trace context: the
    /// request/reply pair is mirrored as `MsgRecv`/`MsgReply` events in
    /// this node's database hub (DESIGN.md §7.2), tagged with the
    /// coordinator's origin node id and root span so the multi-node
    /// merge can pair them with the coordinator's `MsgSend`/`MsgAck`.
    pub fn handle_traced(
        &self,
        msg: CommitMessage,
        ctx: Option<TraceCtx>,
    ) -> Option<CommitMessage> {
        let db = self.db.lock().clone()?;
        let op = ctx.and_then(|_| wire_opcode(&msg));
        if let (Some(ctx), Some(op)) = (ctx, op) {
            db.obs().record(EventKind::MsgRecv {
                opcode: op,
                origin: ctx.origin,
                root: ctx.root,
            });
        }
        let reply = Some(match msg {
            CommitMessage::Prepare { tids } => match db.prepare_group(&tids) {
                Ok(group) => CommitMessage::Vote { yes: true, group },
                Err(_) => CommitMessage::Vote {
                    yes: false,
                    group: Vec::new(),
                },
            },
            CommitMessage::CommitDecide { tids } => match db.decide_commit_group(&tids) {
                Ok(()) => CommitMessage::Ack,
                Err(e) => CommitMessage::Failed {
                    info: e.to_string(),
                },
            },
            CommitMessage::AbortDecide { tids } => {
                db.decide_abort_group(&tids);
                CommitMessage::Ack
            }
            CommitMessage::QueryState { tid } => CommitMessage::State(match db.status(tid) {
                Ok(TxnStatus::Prepared) => ParticipantState::Prepared,
                Ok(TxnStatus::Committed) => ParticipantState::Committed,
                Ok(TxnStatus::Aborting) | Ok(TxnStatus::Aborted) => ParticipantState::Aborted,
                Ok(_) => ParticipantState::Other,
                Err(_) => ParticipantState::Unknown,
            }),
            other => CommitMessage::Failed {
                info: format!("participant cannot handle {other:?}"),
            },
        });
        if let (Some(ctx), Some(op)) = (ctx, op) {
            let status = match &reply {
                Some(CommitMessage::Vote { yes: false, .. })
                | Some(CommitMessage::Failed { .. }) => 1,
                _ => 0,
            };
            db.obs().record(EventKind::MsgReply {
                opcode: op,
                origin: ctx.origin,
                root: ctx.root,
                status,
            });
        }
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn killed_node_answers_nothing_until_restart() {
        let dir = std::env::temp_dir().join(format!(
            "asset-coord-node-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let node = ParticipantNode::open(Config::on_disk(&dir)).unwrap();
        assert!(!node.is_down());
        node.kill();
        assert!(node.is_down());
        assert!(node
            .handle(CommitMessage::QueryState { tid: Tid(1) })
            .is_none());
        assert_eq!(node.restart().unwrap(), Vec::<Tid>::new());
        assert!(!node.is_down());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Named failpoints of the coordinator layer.
//!
//! Companions to `asset_core::failpoints` (`prepare.record`,
//! `prepare.after_record` — the participant-side windows): these sit in
//! the coordinator's own protocol steps and in the message transport.
//! Unlike the storage/transaction points they are compiled
//! unconditionally — the coordinator is not a hot path, and a disarmed
//! registry costs one relaxed load — so crash-matrix harnesses work
//! against every build; participant-side points still need the
//! `faults` feature.

/// After every vote is collected but **before** the decision is made
/// durable: `Crash` models the classic 2PC blocking window — prepared
/// participants are in doubt and the crashed coordinator logged
/// nothing, so recovery must presume abort (2PC) or read the acceptor
/// quorum (Paxos Commit, which finds no accepted value and aborts).
pub const COORD_BEFORE_DECIDE: &str = "coord.before_decide";

/// After the decision is durable (coordinator log / acceptor quorum)
/// but **before** any participant is told: `Crash` leaves every
/// participant prepared; recovery must recover the *same* decision and
/// deliver it.
pub const COORD_AFTER_DECIDE: &str = "coord.after_decide";

/// In the transport, before a `Prepare` message is delivered: `Error`
/// drops the request (the coordinator sees the node as unreachable and
/// must vote no on its behalf).
pub const MSG_PREPARE_DROP: &str = "coord.msg.prepare";

/// In the transport, before a decide message is delivered: `Error`
/// drops it — the participant stays prepared and a later termination
/// pass must re-deliver.
pub const MSG_DECIDE_DROP: &str = "coord.msg.decide";

/// Every coordinator-layer failpoint, for matrix sweeps.
pub const ALL: &[&str] = &[
    COORD_BEFORE_DECIDE,
    COORD_AFTER_DECIDE,
    MSG_PREPARE_DROP,
    MSG_DECIDE_DROP,
];

//! A minimal Rust lexer: just enough to recover identifiers, punctuation
//! and literal boundaries with line numbers, while stripping comments and
//! string contents (so `.unwrap()` inside a doc comment or a log message is
//! never mistaken for code).
//!
//! `// verify: allow(rule, ...)` line comments are collected as suppression
//! directives before being discarded.

/// Token categories. The analyzer mostly matches on exact `text`, so the
/// kinds stay coarse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Operator / delimiter (multi-character operators are one token).
    Punct,
    /// String / char / numeric literal (text is a placeholder, not content).
    Lit,
    /// A lifetime or loop label (`'a`).
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token text; literals are collapsed to `"…"` / `0`.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Coarse category.
    pub kind: Kind,
    /// For string literals only: the interior characters (attribute
    /// arguments like `logs = "log_record"` need them).
    pub raw_str: Option<String>,
}

impl Tok {
    fn new(text: impl Into<String>, line: u32, kind: Kind) -> Self {
        Tok {
            text: text.into(),
            line,
            kind,
            raw_str: None,
        }
    }
}

/// A `// verify: allow(rule, ...) — reason` suppression directive. It
/// applies to findings on its own line and the line directly below it.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Free-text justification after the closing paren (may be empty; the
    /// analyzer reports reason-less suppressions as findings).
    pub reason: String,
}

/// Two-character operators emitted as single tokens. `<<`/`>>` are left
/// split so angle-bracket depth tracking in signatures stays simple (shift
/// operators cannot appear in the signature positions we scan).
const TWO: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "|=",
    "&=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens plus suppression directives.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Directive>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut dirs = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // line comment (may carry a directive)
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if let Some((rules, reason)) = parse_directive(&text) {
                dirs.push(Directive {
                    line,
                    rules,
                    reason,
                });
            }
            continue;
        }
        // block comment (Rust block comments nest)
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // raw / byte string prefixes
        if (c == 'r' || c == 'b') && peek_string_start(&b, i).is_some() {
            let (ni, nl, content) = skip_string(&b, i, line);
            toks.push(Tok {
                raw_str: Some(content),
                ..Tok::new("\"…\"", line, Kind::Lit)
            });
            i = ni;
            line = nl;
            continue;
        }
        if c == '"' {
            let (ni, nl, content) = skip_string(&b, i, line);
            toks.push(Tok {
                raw_str: Some(content),
                ..Tok::new("\"…\"", line, Kind::Lit)
            });
            i = ni;
            line = nl;
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            if i + 1 < b.len() && b[i + 1] == '\\' {
                // escaped char literal: '\n', '\u{..}', '\''
                i += 2;
                while i < b.len() && b[i] != '\'' {
                    i += 1;
                }
                i += 1;
                toks.push(Tok::new("'…'", line, Kind::Lit));
                continue;
            }
            if i + 2 < b.len() && b[i + 2] == '\'' {
                i += 3;
                toks.push(Tok::new("'…'", line, Kind::Lit));
                continue;
            }
            // lifetime / label
            let start = i;
            i += 1;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            toks.push(Tok::new(text, line, Kind::Lifetime));
            continue;
        }
        if c.is_ascii_digit() {
            // number (suffix and hex digits folded in; `..` is left alone)
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                let frac = d == '.'
                    && i + 1 < b.len()
                    && b[i + 1].is_ascii_digit()
                    && !b[start..i].contains(&'.');
                if !is_ident_continue(d) && !frac {
                    break;
                }
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            toks.push(Tok::new(text, line, Kind::Lit));
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            toks.push(Tok::new(text, line, Kind::Ident));
            continue;
        }
        // punctuation: prefer two-char operators
        if i + 1 < b.len() {
            let two: String = [c, b[i + 1]].iter().collect();
            if TWO.contains(&two.as_str()) {
                // `..=` is three chars; fold the `=` in
                if two == ".." && i + 2 < b.len() && b[i + 2] == '=' {
                    toks.push(Tok::new("..=", line, Kind::Punct));
                    i += 3;
                    continue;
                }
                toks.push(Tok::new(two, line, Kind::Punct));
                i += 2;
                continue;
            }
        }
        toks.push(Tok::new(c, line, Kind::Punct));
        i += 1;
    }
    (toks, dirs)
}

/// Does a string literal start at `i` (possibly behind `r`/`b`/`br`
/// prefixes)? Returns the offset of the opening quote machinery.
fn peek_string_start(b: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if j < b.len() && b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
        while j < b.len() && b[j] == '#' {
            j += 1;
        }
    }
    if j > i && j < b.len() && b[j] == '"' {
        Some(j)
    } else {
        None
    }
}

/// Skip a (raw/byte) string literal starting at `i`; returns (next index,
/// line after, interior content).
fn skip_string(b: &[char], i: usize, mut line: u32) -> (usize, u32, String) {
    let mut j = i;
    let mut raw = false;
    let mut hashes = 0usize;
    if b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        raw = true;
        j += 1;
        while j < b.len() && b[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    debug_assert!(j < b.len() && b[j] == '"');
    j += 1;
    let body_start = j;
    while j < b.len() {
        let c = b[j];
        if c == '\n' {
            line += 1;
            j += 1;
        } else if !raw && c == '\\' {
            // escape — may hide a line-continuation newline
            if j + 1 < b.len() && b[j + 1] == '\n' {
                line += 1;
            }
            j += 2;
        } else if c == '"' {
            if !raw {
                let content: String = b[body_start..j].iter().collect();
                return (j + 1, line, content);
            }
            // raw string: need `"` followed by `hashes` hash marks
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == '#' && seen < hashes {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                let content: String = b[body_start..j].iter().collect();
                return (k, line, content);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    let content: String = b[body_start..j.min(b.len())].iter().collect();
    (j, line, content)
}

/// Parse a `// verify: allow(rule1, rule2) — reason` comment; returns the
/// rules and the trailing justification text.
fn parse_directive(comment: &str) -> Option<(Vec<String>, String)> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("verify:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let reason = inner[close + 1..]
        .trim_start_matches([' ', '-', '—', '–', ':'])
        .trim()
        .to_string();
    if rules.is_empty() {
        None
    } else {
        Some((rules, reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let (t, d) = lex("let x = \"a.unwrap()\"; // .unwrap()\n/* panic!() */ y");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "\"…\"", ";", "y"]);
        assert!(d.is_empty());
    }

    #[test]
    fn collects_directives() {
        let (_, d) = lex("x();\n// verify: allow(no_panics, wal) — both fine here\ny();");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].rules, ["no_panics", "wal"]);
        assert_eq!(d[0].reason, "both fine here");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (t, _) = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert!(t.iter().any(|t| t.text == "'a" && t.kind == Kind::Lifetime));
        assert_eq!(t.iter().filter(|t| t.text == "'…'").count(), 2);
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let (t, _) = lex("a r#\"has \" quote\"# /* outer /* inner */ still */ b");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "\"…\"", "b"]);
    }

    #[test]
    fn two_char_operators_fuse() {
        let (t, _) = lex("a::b != c -> d => e..=f");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["a", "::", "b", "!=", "c", "->", "d", "=>", "e", "..=", "f"]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let (t, _) = lex("let s = \"line\nline\nline\";\nfinal_ident");
        let f = t.iter().find(|t| t.text == "final_ident").unwrap();
        assert_eq!(f.line, 4);
    }
}

//! # asset-verify
//!
//! A workspace invariant analyzer for the ASSET codebase. It parses the
//! runtime crates (`asset-core`, `asset-lock`, `asset-storage`) with a
//! purpose-built lexer (no external parser dependencies) and enforces five
//! named rules:
//!
//! - **R1 `wal`** — WAL discipline: functions annotated
//!   `#[wal(logs = "...", mutates = "...")]` must append their log record
//!   (a call that reaches a durable append sink through the call graph)
//!   before mutating the tracked state; functions that call `log_record`
//!   must carry a `#[wal]` contract.
//! - **R2 `lock_order`** — stripe lock order: the global acquisition order
//!   is txn-table shard (rank 0) → lock-table stripe (rank 1) → storage
//!   latch/shard (rank 2). Acquiring a lock of rank ≤ the highest rank
//!   held — directly or through a callee — is a violation, except inside
//!   the blessed ordered-multi-lock helpers.
//! - **R3 `failpoint_coverage`** — every durable-write call site in
//!   `asset-storage` (`write_all`, `write_all_at`, `sync_data`,
//!   `sync_all`, `set_len`) must be dominated by a `failpoint!` /
//!   `failpoint_sync!` evaluation or a call to a failpoint-checker fn.
//! - **R4 `no_panics`** — no `.unwrap()`, `.expect()`, `panic!`,
//!   `unimplemented!`, or `todo!` in runtime (non-`#[cfg(test)]`) paths.
//! - **R5 `exec_step`** — no blocking call inside an executor worker step:
//!   functions annotated `#[exec_step]` must not call condvar waits,
//!   sleeps, fsyncs, joins, channel receives, or synchronous flusher
//!   submissions; suspension is expressed only by returning a
//!   `TxnStep::Wait*` value.
//! - **R6 `spec_drift`** — the normative DESIGN.md tables (§13.3 opcode
//!   and status tables, §14.1 coordinator opcodes, the WAL record-type
//!   inventory) must agree bidirectionally with the code constants and
//!   the dispatch/decode/mapping functions that consume them.
//! - **R7 `status_flow`** — a `CommitAmbiguous` outcome must never be
//!   swallowed (`let _ =`, `.ok()`, empty `Err(_)` arm) in `server`,
//!   `client`, or `coord` before reaching a wire status or `TxnFate`
//!   (the §13.4 contract as a checked property).
//! - **R8 `state_machine`** — the `TxnStatus` transition relation and the
//!   coordinator's participant-state report map must match the declared
//!   tables derived from §14.2–§14.3, and `Prepared` is only entered via
//!   a forced WAL record.
//!
//! Suppressions are explicit and auditable: `#[verify_allow(rule,
//! reason = "...")]` on a function, or `// verify: allow(rule) — reason`
//! on (or directly above) the offending line. Reason-less suppressions are
//! themselves findings.

pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod spec;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::Path;

use lexer::{lex, Directive, Kind, Tok};
use parse::{parse_file, FnItem, ParsedFile};

/// Lock classes of the global acquisition order, ranked ascending.
pub const CLASS_NAMES: [&str; 3] = ["txn-shard", "lock-stripe", "storage-latch"];

/// Rule id → human prefix (`wal` → `R1`).
pub fn rule_id(rule: &str) -> &'static str {
    match rule {
        "wal" => "R1",
        "lock_order" => "R2",
        "failpoint_coverage" => "R3",
        "no_panics" => "R4",
        "exec_step" => "R5",
        "spec_drift" => "R6",
        "status_flow" => "R7",
        "state_machine" => "R8",
        _ => "R0",
    }
}

/// The rule catalog: `(name, id, one-line description)`, in id order.
/// Drives `--help`, the SARIF `tool.driver.rules` array, and the CLI's
/// rule count.
pub const RULES: [(&str, &str, &str); 8] = [
    (
        "wal",
        "R1",
        "WAL discipline: log records land before the mutations they cover",
    ),
    (
        "lock_order",
        "R2",
        "stripe lock order: txn-shard -> lock-stripe -> storage-latch",
    ),
    (
        "failpoint_coverage",
        "R3",
        "every durable write in asset-storage is dominated by a failpoint evaluation",
    ),
    ("no_panics", "R4", "no unwrap/expect/panic in runtime paths"),
    (
        "exec_step",
        "R5",
        "no blocking calls inside #[exec_step] executor steps",
    ),
    (
        "spec_drift",
        "R6",
        "code constants and dispatch match the normative DESIGN.md tables bidirectionally",
    ),
    (
        "status_flow",
        "R7",
        "CommitAmbiguous outcomes are never swallowed before reaching a wire status or TxnFate",
    ),
    (
        "state_machine",
        "R8",
        "TxnStatus and participant transitions match the declared legal-transition tables",
    ),
];

/// Methods whose receiver spine decides whether they are tracked lock
/// acquisitions.
pub const ACQUIRE_METHODS: [&str; 7] = [
    "lock",
    "shared",
    "exclusive",
    "shared_profiled",
    "exclusive_profiled",
    "try_shared",
    "try_exclusive",
];

/// Ordered multi-lock helpers: calling them while holding a tracked lock
/// is exempt from R2 (they establish order internally), and their own
/// bodies are covered by a mandatory `#[verify_allow(lock_order)]`.
pub const BLESSED: [&str; 8] = [
    "release_all",
    "delegate",
    "permit",
    "permit_accessed",
    "permits_across",
    "permits_across_depth",
    "poison",
    "notify_all_shards",
];

/// Guard constructors that acquire txn-table shards (rank 0) in ascending
/// order and hand back a multi-shard guard.
pub const CONSTRUCTORS: [&str; 2] = ["lock_group", "lock_all"];

/// Method names too generic to propagate lock-acquisition sets through the
/// name-based call graph (a `HashMap::insert` call must not inherit
/// `TxnTable::insert`'s behavior).
pub const COMMON_NAMES: [&str; 52] = [
    "wait",
    "with",
    "open",
    "truncate",
    "insert",
    "remove",
    "get",
    "get_mut",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "extend_from_slice",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "new",
    "default",
    "lock",
    "read",
    "write",
    "drain",
    "retain",
    "take",
    "replace",
    "entry",
    "or_insert",
    "or_insert_with",
    "map",
    "map_err",
    "and_then",
    "ok",
    "ok_or",
    "err",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "to_vec",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "flush",
    "min",
];

/// Durable-write sinks for R1 reachability and R3 coverage.
pub const DURABLE_SINKS: [&str; 5] = [
    "write_all",
    "write_all_at",
    "sync_data",
    "sync_all",
    "extend_from_slice",
];

/// Durable-write methods R3 requires failpoint domination for (the on-disk
/// subset of [`DURABLE_SINKS`] plus truncation).
pub const DURABLE_WRITES: [&str; 5] = [
    "write_all",
    "write_all_at",
    "sync_data",
    "sync_all",
    "set_len",
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`wal`, `lock_order`, `failpoint_coverage`, `no_panics`,
    /// `exec_step`, or `meta` for analyzer-consistency findings).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function name.
    pub func: String,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}:{} in `{}` — {}",
            rule_id(self.rule),
            self.rule,
            self.file,
            self.line,
            self.func,
            self.msg
        )
    }
}

/// A suppressed finding, retained for `--list-allows` auditing.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The suppressed rule.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// Line of the suppressed finding.
    pub line: u32,
    /// Enclosing function.
    pub func: String,
    /// The justification supplied with the suppression.
    pub reason: String,
}

/// Result of one analyzer run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Violations that survived suppression.
    pub findings: Vec<Finding>,
    /// Suppressed violations with their reasons.
    pub allows: Vec<Allow>,
}

/// One loaded source file.
#[derive(Debug)]
pub struct SrcFile {
    /// Short crate name: `core`, `lock`, `storage`.
    pub krate: String,
    /// Workspace-relative display path.
    pub path: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Suppression directives.
    pub dirs: Vec<Directive>,
    /// Extracted items.
    pub parsed: ParsedFile,
    /// Whole file is test code (declared via `#[cfg(test)] mod x;`).
    pub is_test_file: bool,
}

/// Lock-class rank for a crate: the global order is core(0) → lock(1) →
/// storage(2).
pub fn crate_rank(krate: &str) -> u8 {
    match krate {
        "core" => 0,
        "lock" => 1,
        _ => 2,
    }
}

/// The loaded workspace plus derived indexes.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All loaded files.
    pub files: Vec<SrcFile>,
    /// Name-based call graph over non-test functions.
    pub graph: BTreeMap<String, BTreeSet<String>>,
    /// Transitive lock-class acquisition sets per function name.
    pub acquire: BTreeMap<String, BTreeSet<u8>>,
    /// Failpoint-checker function names (R3 coverage sources).
    pub checkers: BTreeSet<String>,
    /// Normative spec tables parsed from `DESIGN.md` (R6/R8 inputs);
    /// empty for fixture workspaces built without a spec document.
    pub spec: spec::SpecTables,
    /// Display path of the spec document (spec-side finding location).
    pub spec_file: String,
    /// Analyze the `faults`-feature configuration: functions gated
    /// `#[cfg(feature = "faults")]` are scanned and `#[cfg(not(...))]`
    /// counterparts are skipped (the default mode does the reverse).
    pub cfg_faults: bool,
}

impl Workspace {
    /// Load `crates/{common,core,lock,storage,trace,server,client,coord}/src`
    /// and the normative spec tables of `DESIGN.md` under `root`.
    pub fn from_root(root: &Path) -> io::Result<Self> {
        let mut raw = Vec::new();
        for krate in [
            "common", "core", "lock", "storage", "trace", "server", "client", "coord",
        ] {
            let src = root.join("crates").join(krate).join("src");
            let mut paths = Vec::new();
            collect_rs(&src, &mut paths)?;
            paths.sort();
            for p in paths {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = std::fs::read_to_string(&p)?;
                raw.push((krate.to_string(), rel, text));
            }
        }
        let spec_md = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
        Ok(Self::from_sources_with_spec(raw, "DESIGN.md", &spec_md))
    }

    /// Build a workspace from in-memory sources plus a spec document
    /// (used by the R6/R8 fixture tests and [`Self::from_root`]).
    pub fn from_sources_with_spec(
        raw: Vec<(String, String, String)>,
        spec_file: &str,
        spec_md: &str,
    ) -> Self {
        let mut ws = Self::from_sources(raw);
        ws.spec = spec::SpecTables::parse(spec_md);
        ws.spec_file = spec_file.to_string();
        ws
    }

    /// Build a workspace from in-memory sources (used by fixture tests).
    pub fn from_sources(raw: Vec<(String, String, String)>) -> Self {
        let mut files: Vec<SrcFile> = raw
            .into_iter()
            .map(|(krate, path, text)| {
                let (toks, dirs) = lex(&text);
                let parsed = parse_file(&toks);
                SrcFile {
                    krate,
                    path,
                    toks,
                    dirs,
                    parsed,
                    is_test_file: false,
                }
            })
            .collect();

        // Mark whole files declared as `#[cfg(test)] mod x;` in the same
        // crate (e.g. core/src/tests.rs).
        let mut test_mods: BTreeSet<(String, String)> = BTreeSet::new();
        for f in &files {
            for m in &f.parsed.cfg_test_mods {
                test_mods.insert((f.krate.clone(), m.clone()));
            }
        }
        for f in &mut files {
            let stem = Path::new(&f.path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let dir_name = if stem == "mod" {
                Path::new(&f.path)
                    .parent()
                    .and_then(|d| d.file_name())
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default()
            } else {
                stem.clone()
            };
            if test_mods.contains(&(f.krate.clone(), stem))
                || test_mods.contains(&(f.krate.clone(), dir_name))
            {
                f.is_test_file = true;
            }
        }

        let mut ws = Workspace {
            files,
            ..Default::default()
        };
        ws.build_graph();
        ws.build_checkers();
        ws.build_acquire_sets();
        ws
    }

    /// Iterate non-test functions with their file, honoring the active
    /// `faults` configuration (functions gated on the other cfg are
    /// skipped, mirroring what the compiler would build).
    pub fn runtime_fns(&self) -> impl Iterator<Item = (&SrcFile, &FnItem)> {
        let cfg_faults = self.cfg_faults;
        self.files.iter().flat_map(move |f| {
            f.parsed
                .fns
                .iter()
                .filter(move |i| !i.is_test && !f.is_test_file)
                .filter(move |i| {
                    match i.attrs.iter().find_map(|a| a.cfg_faults_gate()) {
                        Some(true) => cfg_faults,   // only with the feature
                        Some(false) => !cfg_faults, // only without it
                        None => true,
                    }
                })
                .map(move |i| (f, i))
        })
    }

    /// Body tokens of a function (including the outer braces).
    pub fn body<'a>(&self, file: &'a SrcFile, item: &FnItem) -> &'a [Tok] {
        &file.toks[item.body.0..=item.body.1]
    }

    fn build_graph(&mut self) {
        let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &self.files {
            for item in &f.parsed.fns {
                if item.is_test || f.is_test_file {
                    continue;
                }
                let body = &f.toks[item.body.0..=item.body.1];
                let entry = graph.entry(item.name.clone()).or_default();
                entry.extend(calls_of(body));
            }
        }
        self.graph = graph;
    }

    fn build_checkers(&mut self) {
        let mut checkers = BTreeSet::new();
        for f in &self.files {
            for item in &f.parsed.fns {
                let body = &f.toks[item.body.0..=item.body.1];
                let by_attr = item.attrs.iter().any(|a| a.name == "failpoint_checker");
                if by_attr || body_is_checker(body) {
                    checkers.insert(item.name.clone());
                }
            }
        }
        self.checkers = checkers;
    }

    fn build_acquire_sets(&mut self) {
        // Direct sets: tracked acquisitions visible in each fn body.
        let mut direct: BTreeMap<String, BTreeSet<u8>> = BTreeMap::new();
        for f in &self.files {
            for item in &f.parsed.fns {
                if item.is_test || f.is_test_file {
                    continue;
                }
                let body = &f.toks[item.body.0..=item.body.1];
                let set = direct.entry(item.name.clone()).or_default();
                set.extend(rules::lock_order::direct_acquisitions(body, &f.krate));
            }
        }
        // Transitive closure over the call graph, blocked at generic and
        // blessed names so std-colliding methods don't leak classes.
        let mut acquire = BTreeMap::new();
        for name in direct.keys() {
            let mut seen = BTreeSet::new();
            let mut out = BTreeSet::new();
            let mut frontier = vec![(name.clone(), 0usize)];
            while let Some((n, d)) = frontier.pop() {
                if d > 12 || !seen.insert(n.clone()) {
                    continue;
                }
                if d > 0 && (COMMON_NAMES.contains(&n.as_str()) || BLESSED.contains(&n.as_str())) {
                    continue;
                }
                if let Some(s) = direct.get(&n) {
                    out.extend(s.iter().copied());
                }
                if let Some(callees) = self.graph.get(&n) {
                    for c in callees {
                        frontier.push((c.clone(), d + 1));
                    }
                }
            }
            if !out.is_empty() {
                acquire.insert(name.clone(), out);
            }
        }
        self.acquire = acquire;
    }

    /// Does `from` reach a durable append sink through the call graph?
    pub fn reaches_sink(&self, from: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut frontier = vec![(from.to_string(), 0usize)];
        while let Some((n, d)) = frontier.pop() {
            if DURABLE_SINKS.contains(&n.as_str()) {
                return true;
            }
            if d > 12 || !seen.insert(n.clone()) {
                continue;
            }
            if d > 0 && COMMON_NAMES.contains(&n.as_str()) {
                continue;
            }
            if let Some(callees) = self.graph.get(&n) {
                for c in callees {
                    frontier.push((c.clone(), d + 1));
                }
            }
        }
        false
    }

    /// Run every rule and apply suppressions.
    pub fn analyze(&self) -> Analysis {
        let mut raw = Vec::new();
        rules::wal::run(self, &mut raw);
        rules::lock_order::run(self, &mut raw);
        rules::failpoints::run(self, &mut raw);
        rules::no_panics::run(self, &mut raw);
        rules::exec_step::run(self, &mut raw);
        rules::spec_drift::run(self, &mut raw);
        rules::status_flow::run(self, &mut raw);
        rules::state_machine::run(self, &mut raw);

        let mut out = Analysis::default();
        for f in raw {
            match self.suppression_for(&f) {
                Some((reason, origin)) => {
                    if reason.is_empty() {
                        out.findings.push(Finding {
                            rule: "meta",
                            file: f.file.clone(),
                            line: f.line,
                            func: f.func.clone(),
                            msg: format!(
                                "suppression of `{}` via {origin} has no reason; add one",
                                f.rule
                            ),
                        });
                    }
                    out.allows.push(Allow {
                        rule: f.rule,
                        file: f.file,
                        line: f.line,
                        func: f.func,
                        reason,
                    });
                }
                None => out.findings.push(f),
            }
        }
        out.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        out
    }

    /// Is the finding suppressed? Returns `(reason, origin)` if so.
    fn suppression_for(&self, f: &Finding) -> Option<(String, &'static str)> {
        let file = self.files.iter().find(|s| s.path == f.file)?;
        // Line directive on the finding's line or the line above it.
        for d in &file.dirs {
            if (d.line == f.line || d.line + 1 == f.line) && d.rules.iter().any(|r| r == f.rule) {
                return Some((d.reason.clone(), "line directive"));
            }
        }
        // `#[verify_allow(rule, reason = "...")]` on the enclosing fn.
        let item =
            file.parsed.fns.iter().find(|i| {
                i.name == f.func && f.line >= i.line && f.line <= file.toks[i.body.1].line
            })?;
        for a in &item.attrs {
            if a.name == "verify_allow" && a.first_ident() == Some(f.rule) {
                let reason = a.str_arg("reason").unwrap_or_default();
                return Some((reason, "#[verify_allow]"));
            }
        }
        None
    }
}

/// Collect callee names: identifiers directly followed by `(`, or macro
/// names (`ident !`). Keywords and control-flow constructs are filtered by
/// the caller's graph lookups (only defined fn names resolve).
pub fn calls_of(body: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i + 1 < body.len() {
        if body[i].kind == Kind::Ident && (body[i + 1].text == "(" || body[i + 1].text == "!") {
            out.insert(body[i].text.clone());
        }
        i += 1;
    }
    out
}

/// A function body counts as a failpoint checker if it evaluates the
/// failpoint macros or consults the fault registry directly.
fn body_is_checker(body: &[Tok]) -> bool {
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i].text;
        if t == "failpoint" || t == "failpoint_sync" {
            return true;
        }
        if t == "faults"
            && i + 2 < body.len()
            && body[i + 1].text == "."
            && body[i + 2].text == "check"
        {
            return true;
        }
        i += 1;
    }
    false
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Load and analyze the workspace under `root`.
pub fn analyze_root(root: &Path) -> io::Result<Analysis> {
    analyze_root_cfg(root, false)
}

/// Load and analyze the workspace under `root` in the given `faults`
/// configuration.
pub fn analyze_root_cfg(root: &Path, cfg_faults: bool) -> io::Result<Analysis> {
    let mut ws = Workspace::from_root(root)?;
    ws.cfg_faults = cfg_faults;
    Ok(ws.analyze())
}

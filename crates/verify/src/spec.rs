//! Parser for the normative spec tables in `DESIGN.md` (the inputs of
//! R6 `spec_drift` and R8 `state_machine`).
//!
//! The grammar is deliberately small (DESIGN.md §11): a *spec table* is
//! a GitHub-flavored markdown table recognized by its **header row**;
//! value cells are backtick code spans holding `0xNN` hex or decimal
//! integers; name cells are bare identifiers or code spans. Recognized
//! headers:
//!
//! | header starts with            | table                             |
//! |-------------------------------|-----------------------------------|
//! | `\| opcode \| name \|`        | §13.3 wire opcode table           |
//! | `\| status \| name \|`        | §13.3 wire status table           |
//! | `\| message \| wire opcode \|`| §14.1 coordinator message table   |
//! | `\| tag \| record \|`         | §11 WAL record-type inventory     |
//! | `\| from \| to \|`            | §11 declared `TxnStatus` machine  |
//! | `\| txn status \| reported state \|` | §11 participant report map |
//!
//! Unrecognized tables are ignored; rows whose value cell does not
//! parse are skipped (prose rows like "—" never become constants).

/// One `name = value` row of a value table, with its `DESIGN.md` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRow {
    /// Constant name the row binds (`PING`, `ERR_IO`, `KIND_BEGIN`).
    pub name: String,
    /// The row's numeric value.
    pub value: u64,
    /// 1-based line in the spec document.
    pub line: u32,
}

/// One §14.1 row: a coordinator message and its wire opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordRow {
    /// `CommitMessage` variant name (`Prepare`, `CommitDecide`, ...).
    pub message: String,
    /// The wire opcode constant it rides (`PREPARE`, ...).
    pub opcode_name: String,
    /// The wire opcode value the row claims.
    pub value: u64,
    /// 1-based line in the spec document.
    pub line: u32,
}

/// One ordered pair row (`from` → `to`) of a relation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairRow {
    /// Left element (source state).
    pub from: String,
    /// Right element (target state).
    pub to: String,
    /// 1-based line in the spec document.
    pub line: u32,
}

/// Every normative table extracted from one spec document.
#[derive(Debug, Clone, Default)]
pub struct SpecTables {
    /// §13.3 opcode table: wire opcode name → value.
    pub opcodes: Vec<ValueRow>,
    /// §13.3 status table: wire status name → value.
    pub statuses: Vec<ValueRow>,
    /// §14.1 coordinator messages and their wire opcodes.
    pub coord_ops: Vec<CoordRow>,
    /// WAL record-type inventory: record-tag constant name → tag value.
    pub wal_records: Vec<ValueRow>,
    /// Declared legal `TxnStatus` transitions (from → to).
    pub transitions: Vec<PairRow>,
    /// Declared participant-state report map (`TxnStatus` →
    /// `ParticipantState`).
    pub reports: Vec<PairRow>,
}

impl SpecTables {
    /// No table was found (fixture workspaces without a spec document).
    pub fn is_empty(&self) -> bool {
        self.opcodes.is_empty()
            && self.statuses.is_empty()
            && self.coord_ops.is_empty()
            && self.wal_records.is_empty()
            && self.transitions.is_empty()
            && self.reports.is_empty()
    }

    /// Parse every recognized spec table out of a markdown document.
    pub fn parse(md: &str) -> SpecTables {
        let mut out = SpecTables::default();
        let lines: Vec<&str> = md.lines().collect();
        let mut i = 0usize;
        while i < lines.len() {
            let cells = row_cells(lines[i]);
            if cells.is_empty() {
                i += 1;
                continue;
            }
            let header: Vec<String> = cells
                .iter()
                .map(|c| strip_spans(c).to_ascii_lowercase())
                .collect();
            let kind = match header.as_slice() {
                [a, b, ..] if a == "opcode" && b == "name" => Some(Table::Opcodes),
                [a, b, ..] if a == "status" && b == "name" => Some(Table::Statuses),
                [a, b, ..] if a == "message" && b == "wire opcode" => Some(Table::CoordOps),
                [a, b, ..] if a == "tag" && b == "record" => Some(Table::WalRecords),
                [a, b, ..] if a == "from" && b == "to" => Some(Table::Transitions),
                [a, b, ..] if a == "txn status" && b == "reported state" => Some(Table::Reports),
                _ => None,
            };
            let Some(kind) = kind else {
                i += 1;
                continue;
            };
            // skip the header and the |---| separator row
            i += 2;
            while i < lines.len() {
                let cells = row_cells(lines[i]);
                if cells.is_empty() {
                    break;
                }
                let line = (i + 1) as u32;
                match kind {
                    Table::Opcodes => push_value(&mut out.opcodes, &cells, 0, 1, line),
                    Table::Statuses => push_value(&mut out.statuses, &cells, 0, 1, line),
                    Table::WalRecords => push_value(&mut out.wal_records, &cells, 0, 2, line),
                    Table::CoordOps => push_coord(&mut out.coord_ops, &cells, line),
                    Table::Transitions => push_pair(&mut out.transitions, &cells, line),
                    Table::Reports => push_pair(&mut out.reports, &cells, line),
                }
                i += 1;
            }
        }
        out
    }
}

#[derive(Clone, Copy)]
enum Table {
    Opcodes,
    Statuses,
    CoordOps,
    WalRecords,
    Transitions,
    Reports,
}

/// Split a markdown table row into trimmed cells; non-rows (and the
/// `|---|` separator) yield an empty vec.
fn row_cells(line: &str) -> Vec<String> {
    let t = line.trim();
    if !t.starts_with('|') {
        return Vec::new();
    }
    let cells: Vec<String> = t
        .trim_matches('|')
        .split('|')
        .map(|c| c.trim().to_string())
        .collect();
    if cells
        .iter()
        .all(|c| !c.is_empty() && c.chars().all(|ch| ch == '-' || ch == ':'))
    {
        return Vec::new(); // separator row
    }
    cells
}

/// The content of the first backtick code span, or the whole cell.
fn code_span(cell: &str) -> &str {
    let mut parts = cell.split('`');
    match (parts.next(), parts.next()) {
        (_, Some(span)) => span,
        _ => cell,
    }
}

/// Remove backticks (for header normalization and name cells).
fn strip_spans(cell: &str) -> String {
    cell.replace('`', "").trim().to_string()
}

/// Parse `0xNN` hex or decimal out of a value cell's code span.
fn parse_value(cell: &str) -> Option<u64> {
    let s = code_span(cell).trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// First identifier in a cell (`Prepare { tids }` → `Prepare`).
fn first_ident(cell: &str) -> Option<String> {
    let s = strip_spans(cell);
    let ident: String = s
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

fn push_value(out: &mut Vec<ValueRow>, cells: &[String], vcol: usize, ncol: usize, line: u32) {
    let (Some(vc), Some(nc)) = (cells.get(vcol), cells.get(ncol)) else {
        return;
    };
    let (Some(value), Some(name)) = (parse_value(vc), first_ident(nc)) else {
        return;
    };
    out.push(ValueRow { name, value, line });
}

fn push_coord(out: &mut Vec<CoordRow>, cells: &[String], line: u32) {
    let (Some(mc), Some(oc)) = (cells.first(), cells.get(1)) else {
        return;
    };
    let Some(message) = first_ident(mc) else {
        return;
    };
    // opcode cell shape: `0x40` PREPARE — value in the span, name after
    let Some(value) = parse_value(oc) else { return };
    let after = strip_spans(oc);
    let opcode_name = after
        .split_whitespace()
        .find(|w| w.chars().all(|c| c.is_ascii_uppercase() || c == '_'))
        .unwrap_or("")
        .to_string();
    if opcode_name.is_empty() {
        return;
    }
    out.push(CoordRow {
        message,
        opcode_name,
        value,
        line,
    });
}

fn push_pair(out: &mut Vec<PairRow>, cells: &[String], line: u32) {
    let (Some(fc), Some(tc)) = (cells.first(), cells.get(1)) else {
        return;
    };
    let (Some(from), Some(to)) = (first_ident(fc), first_ident(tc)) else {
        return;
    };
    out.push(PairRow { from, to, line });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_value_and_relation_shapes() {
        let md = "\
| opcode | name | body | OK payload |
|---|---|---|---|
| `0x01` | PING | — | — |
| `0x13` | COMMIT | `u64` tid | — |

| status | name | meaning |
|---|---|---|
| `0x0F` | ERR_COMMIT_AMBIGUOUS | fate unknown |

| message | wire opcode | participant action |
|---|---|---|
| `Prepare { tids }` | `0x40` PREPARE | force a record |

| tag | record | constant | payload |
|---|---|---|---|
| `1` | Begin | `KIND_BEGIN` | tid |

| from | to | via |
|---|---|---|
| `Initiated` | `Running` | `begin` |

| txn status | reported state |
|---|---|
| `Prepared` | `Prepared` |
";
        let s = SpecTables::parse(md);
        assert_eq!(s.opcodes.len(), 2);
        assert_eq!(s.opcodes[1].name, "COMMIT");
        assert_eq!(s.opcodes[1].value, 0x13);
        assert_eq!(s.opcodes[1].line, 4);
        assert_eq!(s.statuses[0].name, "ERR_COMMIT_AMBIGUOUS");
        assert_eq!(s.statuses[0].value, 0x0F);
        assert_eq!(s.coord_ops[0].message, "Prepare");
        assert_eq!(s.coord_ops[0].opcode_name, "PREPARE");
        assert_eq!(s.coord_ops[0].value, 0x40);
        assert_eq!(s.wal_records[0].name, "KIND_BEGIN");
        assert_eq!(s.wal_records[0].value, 1);
        assert_eq!(s.transitions[0].from, "Initiated");
        assert_eq!(s.transitions[0].to, "Running");
        assert_eq!(s.reports[0].from, "Prepared");
        assert_eq!(s.reports[0].to, "Prepared");
    }

    #[test]
    fn unrecognized_tables_and_prose_rows_are_skipped() {
        let md = "\
| Exp | Reproduces |
|---|---|
| E1 | something |

| opcode | name | body | OK payload |
|---|---|---|---|
| prose | not a row |
";
        let s = SpecTables::parse(md);
        assert!(s.opcodes.is_empty());
        assert!(s.is_empty());
    }
}

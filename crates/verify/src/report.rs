//! Machine-readable output: JSON, SARIF 2.1.0, and the baseline diff
//! format. Hand-rolled emitters (the analyzer keeps its zero-dependency
//! contract), driven by the [`crate::RULES`] catalog.
//!
//! The **baseline** format is line-number-insensitive: one key per
//! finding (`rule<TAB>file<TAB>func<TAB>msg`), sorted and de-duplicated,
//! so a saved baseline survives unrelated edits that shift lines.
//! `--baseline FILE` subtracts those keys from a run and reports only
//! *new* findings — the CI gating mode.

use crate::{rule_id, Analysis, Finding, RULES};

/// Escape a string for a JSON double-quoted literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The analyzer's own JSON document: rule count, findings, allows.
pub fn to_json(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n  \"tool\": \"asset-verify\",\n  \"rules\": {},\n  \"findings\": [",
        RULES.len()
    ));
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"func\": \"{}\", \"msg\": \"{}\"}}",
            rule_id(f.rule),
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.func),
            esc(&f.msg)
        ));
    }
    s.push_str("\n  ],\n  \"allows\": [");
    for (i, al) in a.allows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"func\": \"{}\", \"reason\": \"{}\"}}",
            rule_id(al.rule),
            esc(al.rule),
            esc(&al.file),
            al.line,
            esc(&al.func),
            esc(&al.reason)
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// SARIF 2.1.0 log: one run, the R0–R8 rule catalog in
/// `tool.driver.rules`, one `error`-level result per finding.
pub fn to_sarif(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"asset-verify\",\n          \
         \"informationUri\": \"https://example.invalid/asset-verify\",\n          \
         \"rules\": [",
    );
    let meta = (
        "meta",
        "R0",
        "analyzer-consistency findings (reason-less suppressions, missing exemptions)",
    );
    for (i, (name, id, desc)) in RULES.iter().chain([&meta]).enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n            {{\"id\": \"{id}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(name),
            esc(desc)
        ));
    }
    s.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \
             \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \
             \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \
             \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \
             \"region\": {{\"startLine\": {}}}\n              }}\n            }}\n          ]\n        }}",
            rule_id(f.rule),
            esc(&format!("in `{}` — {}", f.func, f.msg)),
            esc(&f.file),
            f.line.max(1)
        ));
    }
    s.push_str("\n      ]\n    }\n  ]\n}\n");
    s
}

/// The line-number-insensitive identity of a finding.
pub fn baseline_key(f: &Finding) -> String {
    format!("{}\t{}\t{}\t{}", f.rule, f.file, f.func, f.msg)
}

/// Render the baseline document: sorted unique keys, one per line.
pub fn to_baseline(a: &Analysis) -> String {
    let mut keys: Vec<String> = a.findings.iter().map(baseline_key).collect();
    keys.sort();
    keys.dedup();
    let mut s = keys.join("\n");
    if !s.is_empty() {
        s.push('\n');
    }
    s
}

/// Findings not present in `baseline_text` (the CI gating subtraction).
pub fn filter_new(findings: &[Finding], baseline_text: &str) -> Vec<Finding> {
    let known: std::collections::BTreeSet<&str> = baseline_text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty())
        .collect();
    findings
        .iter()
        .filter(|f| !known.contains(baseline_key(f).as_str()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;

    fn one() -> Analysis {
        Analysis {
            findings: vec![Finding {
                rule: "spec_drift",
                file: "crates/server/src/protocol.rs".into(),
                line: 7,
                func: "opcode".into(),
                msg: "constant `X` = 0x10 has no row \"quoted\"".into(),
            }],
            allows: Vec::new(),
        }
    }

    #[test]
    fn json_and_sarif_escape_and_embed_the_finding() {
        let a = one();
        let j = to_json(&a);
        assert!(j.contains("\"id\": \"R6\""));
        assert!(j.contains("no row \\\"quoted\\\""));
        let s = to_sarif(&a);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"R6\""));
        assert!(s.contains("\"startLine\": 7"));
        // all nine catalog entries are declared
        assert_eq!(s.matches("\"shortDescription\"").count(), 9);
    }

    #[test]
    fn baseline_subtracts_known_findings_ignoring_lines() {
        let a = one();
        let base = to_baseline(&a);
        let mut moved = a.findings.clone();
        moved[0].line = 99; // unrelated edit shifted the line
        assert!(filter_new(&moved, &base).is_empty());
        moved[0].msg = "different".into();
        assert_eq!(filter_new(&moved, &base).len(), 1);
    }
}

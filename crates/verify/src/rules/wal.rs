//! **R1 `wal`** — WAL discipline.
//!
//! ASSET's recovery correctness (paper §4) rests on the undo/redo log
//! describing every state transition *before* the in-memory transaction
//! tables reflect it. The rule has three parts:
//!
//! 1. Every `#[wal(logs = "...", mutates = "...")]` contract is checked:
//!    the first call to the `logs` function must textually precede the
//!    first occurrence of the `mutates` token sequence in the body.
//! 2. The `logs` callee must actually reach a durable append sink
//!    (`write_all` / `sync_data` / buffer extend) through the call graph —
//!    a contract naming a function that never persists anything is stale.
//! 3. Inventory completeness: any runtime function in `asset-core` or
//!    `asset-storage` that calls `log_record` directly must carry a
//!    `#[wal]` contract (or an explicit suppression), so new log-writing
//!    code cannot silently skip the ordering check.

use crate::lexer::{lex, Kind, Tok};
use crate::{Finding, Workspace};

/// Run R1 over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for (file, item) in ws.runtime_fns() {
        if file.krate != "core" && file.krate != "storage" {
            continue;
        }
        let body = ws.body(file, item);
        let wal = item.attrs.iter().find(|a| a.name == "wal");
        match wal {
            Some(attr) => {
                let logs = attr.str_arg("logs").unwrap_or_default();
                let mutates = attr.str_arg("mutates").unwrap_or_default();
                if logs.is_empty() || mutates.is_empty() {
                    out.push(finding(
                        file,
                        item,
                        item.line,
                        "#[wal] contract needs both `logs` and `mutates` arguments".into(),
                    ));
                    continue;
                }
                check_contract(ws, file, item, body, &logs, &mutates, out);
            }
            None => {
                // Inventory: direct log_record callers must be annotated.
                if item.name != "log_record" {
                    if let Some(i) = first_call(body, "log_record") {
                        out.push(finding(
                            file,
                            item,
                            body[i].line,
                            "calls `log_record` but carries no #[wal(logs, mutates)] contract"
                                .into(),
                        ));
                    }
                }
            }
        }
    }
}

fn check_contract(
    ws: &Workspace,
    file: &crate::SrcFile,
    item: &crate::parse::FnItem,
    body: &[Tok],
    logs: &str,
    mutates: &str,
    out: &mut Vec<Finding>,
) {
    let log_idx = match first_call(body, logs) {
        Some(i) => i,
        None => {
            out.push(finding(
                file,
                item,
                item.line,
                format!("#[wal] contract names `{logs}` but the body never calls it"),
            ));
            return;
        }
    };
    if !ws.reaches_sink(logs) {
        out.push(finding(
            file,
            item,
            body[log_idx].line,
            format!("`{logs}` does not reach a durable append sink through the call graph"),
        ));
    }
    let pattern: Vec<String> = lex(mutates).0.into_iter().map(|t| t.text).collect();
    let mut_idx = match find_seq(body, &pattern) {
        Some(i) => i,
        None => {
            out.push(finding(
                file,
                item,
                item.line,
                format!("#[wal] contract is stale: `{mutates}` does not occur in the body"),
            ));
            return;
        }
    };
    if mut_idx < log_idx {
        out.push(finding(
            file,
            item,
            body[mut_idx].line,
            format!(
                "mutates tracked state (`{mutates}`, line {}) before logging via `{logs}` \
                 (line {}) — the WAL record must land first",
                body[mut_idx].line, body[log_idx].line
            ),
        ));
    }
}

/// Index of the first call to `name` (`name(` or `.name(`).
fn first_call(body: &[Tok], name: &str) -> Option<usize> {
    let mut i = 0usize;
    while i + 1 < body.len() {
        if body[i].kind == Kind::Ident && body[i].text == name && body[i + 1].text == "(" {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// First index where the token texts of `pattern` occur consecutively.
fn find_seq(body: &[Tok], pattern: &[String]) -> Option<usize> {
    if pattern.is_empty() || body.len() < pattern.len() {
        return None;
    }
    let mut i = 0usize;
    while i + pattern.len() <= body.len() {
        let mut k = 0usize;
        while k < pattern.len() && body[i + k].text == pattern[k] {
            k += 1;
        }
        if k == pattern.len() {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn finding(file: &crate::SrcFile, item: &crate::parse::FnItem, line: u32, msg: String) -> Finding {
    Finding {
        rule: "wal",
        file: file.path.clone(),
        line,
        func: item.name.clone(),
        msg,
    }
}

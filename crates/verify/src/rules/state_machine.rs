//! **R8 `state_machine`** — the transaction status machine and the
//! coordinator/participant transitions must match the declared tables
//! derived from DESIGN.md §14.2–§14.3.
//!
//! Three checks:
//!
//! - the `TxnStatus` transition relation is extracted from the match
//!   arms of `can_transition_to` (crate `common`) and compared
//!   **bidirectionally** against the declared `| from | to |` table:
//!   a code-allowed pair missing from the table is undocumented
//!   behavior; a declared pair the code rejects is an unimplemented
//!   spec row.
//! - `Prepared` may only be **entered via a forced WAL record**
//!   (§14.2): any function assigning `status = TxnStatus::Prepared`
//!   must construct `LogRecord::Prepared` earlier in its body (the
//!   recovery path re-materializes the state via struct init, a
//!   different shape, and is deliberately exempt).
//! - the participant report map (`TxnStatus` → `ParticipantState`
//!   arms in crate `coord`) is compared bidirectionally against the
//!   declared `| txn status | reported state |` table.

use std::collections::BTreeSet;

use crate::lexer::{Kind, Tok};
use crate::{Finding, Workspace};

/// Run R8 over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    check_transition_relation(ws, out);
    check_prepared_entry(ws, out);
    check_report_map(ws, out);
}

/// Extracted `(from, to)` pair with the line of its match arm.
struct CodePair {
    from: String,
    to: String,
    line: u32,
}

fn check_transition_relation(ws: &Workspace, out: &mut Vec<Finding>) {
    if ws.spec.transitions.is_empty() {
        return;
    }
    let machine = ws
        .runtime_fns()
        .find(|(_, item)| item.name == "can_transition_to");
    let Some((file, item)) = machine else {
        if ws.files.iter().any(|f| f.krate == "common") {
            out.push(Finding {
                rule: "state_machine",
                file: ws.spec_file.clone(),
                line: ws.spec.transitions[0].line,
                func: "transition-table".to_string(),
                msg: "a transition table is declared but no `can_transition_to` \
                      fn was found in the workspace"
                    .to_string(),
            });
        }
        return;
    };
    let code = tuple_arms(ws.body(file, item));
    for p in &code {
        if !ws
            .spec
            .transitions
            .iter()
            .any(|r| r.from == p.from && r.to == p.to)
        {
            out.push(Finding {
                rule: "state_machine",
                file: file.path.clone(),
                line: p.line,
                func: item.name.clone(),
                msg: format!(
                    "transition {} → {} is allowed in code but absent from the \
                     declared table (DESIGN.md §11)",
                    p.from, p.to
                ),
            });
        }
    }
    for r in &ws.spec.transitions {
        if !code.iter().any(|p| p.from == r.from && p.to == r.to) {
            out.push(Finding {
                rule: "state_machine",
                file: ws.spec_file.clone(),
                line: r.line,
                func: "transition-table".to_string(),
                msg: format!(
                    "declared transition {} → {} is not allowed by \
                     `can_transition_to`",
                    r.from, r.to
                ),
            });
        }
    }
}

/// `(A | B, C) => true` match arms of the status machine, expanded to
/// ordered pairs. Variant idents are collected per tuple side; the
/// enum-path prefix (`TxnStatus::`) and `_` wildcards are ignored, and
/// only arms whose result is literally `true` contribute.
fn tuple_arms(body: &[Tok]) -> Vec<CodePair> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        if body[i].text != "(" {
            i += 1;
            continue;
        }
        // collect the parenthesized pattern
        let open = i;
        let mut depth = 0i64;
        let mut comma_at = None;
        let mut j = i;
        while j < body.len() {
            match body[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "," if depth == 1 && comma_at.is_none() => comma_at = Some(j),
                _ => {}
            }
            j += 1;
        }
        // an arm pattern is `( .. , .. ) => true`
        let is_arm = j + 2 < body.len()
            && body[j + 1].text == "=>"
            && body[j + 2].text == "true"
            && comma_at.is_some();
        if is_arm {
            let comma = comma_at.unwrap();
            let lhs = variant_idents(&body[open + 1..comma]);
            let rhs = variant_idents(&body[comma + 1..j]);
            for f in &lhs {
                for t in &rhs {
                    out.push(CodePair {
                        from: f.clone(),
                        to: t.clone(),
                        line: body[open].line,
                    });
                }
            }
            i = j + 3;
        } else {
            i = open + 1;
        }
    }
    out
}

/// Variant identifiers in a pattern fragment, skipping enum path heads.
fn variant_idents(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        // skip `TxnStatus` in `TxnStatus :: X` (path head before `::`)
        if k + 1 < toks.len() && toks[k + 1].text == "::" {
            continue;
        }
        out.push(t.text.clone());
    }
    out
}

/// §14.2: entering `Prepared` requires a forced `LogRecord::Prepared`
/// earlier in the same function body.
fn check_prepared_entry(ws: &Workspace, out: &mut Vec<Finding>) {
    for (file, item) in ws.runtime_fns() {
        let body = ws.body(file, item);
        let mut assign_at = None;
        for i in 0..body.len().saturating_sub(4) {
            if body[i].text == "status"
                && i > 0
                && body[i - 1].text == "."
                && body[i + 1].text == "="
                && body[i + 2].text == "TxnStatus"
                && body[i + 3].text == "::"
                && body[i + 4].text == "Prepared"
            {
                assign_at = Some(i);
                break;
            }
        }
        let Some(at) = assign_at else { continue };
        let logged_before = (0..at).any(|i| {
            body[i].text == "LogRecord"
                && i + 2 < body.len()
                && body[i + 1].text == "::"
                && body[i + 2].text == "Prepared"
        });
        if !logged_before {
            out.push(Finding {
                rule: "state_machine",
                file: file.path.clone(),
                line: body[at].line,
                func: item.name.clone(),
                msg: "`status = TxnStatus::Prepared` without a forced \
                      `LogRecord::Prepared` earlier in the function — the \
                      prepared state must be entered via a forced WAL record \
                      (§14.2)"
                    .to_string(),
            });
        }
    }
}

/// Bidirectional check of the participant report map in crate `coord`.
fn check_report_map(ws: &Workspace, out: &mut Vec<Finding>) {
    if ws.spec.reports.is_empty() || !ws.files.iter().any(|f| f.krate == "coord") {
        return;
    }
    let mut code: Vec<CodePair> = Vec::new();
    for (file, item) in ws.runtime_fns() {
        if file.krate != "coord" {
            continue;
        }
        let body = ws.body(file, item);
        let mut pending: Vec<(String, u32)> = Vec::new();
        let mut i = 0usize;
        while i + 2 < body.len() {
            if body[i].text == "TxnStatus" && body[i + 1].text == "::" {
                pending.push((body[i + 2].text.clone(), body[i].line));
            } else if body[i].text == "ParticipantState" && body[i + 1].text == "::" {
                for (from, line) in pending.drain(..) {
                    code.push(CodePair {
                        from,
                        to: body[i + 2].text.clone(),
                        line,
                    });
                }
            }
            i += 1;
        }
        for p in &code {
            if code_pair_reported(p, ws) {
                continue;
            }
            out.push(Finding {
                rule: "state_machine",
                file: file.path.clone(),
                line: p.line,
                func: item.name.clone(),
                msg: format!(
                    "participant report maps TxnStatus::{} → ParticipantState::{}, \
                     absent from the declared report table (DESIGN.md §11)",
                    p.from, p.to
                ),
            });
        }
        code.clear();
    }
    // spec → code direction needs the union over every coord fn
    let mut union: BTreeSet<(String, String)> = BTreeSet::new();
    for (file, item) in ws.runtime_fns() {
        if file.krate != "coord" {
            continue;
        }
        let body = ws.body(file, item);
        let mut pending: Vec<String> = Vec::new();
        let mut i = 0usize;
        while i + 2 < body.len() {
            if body[i].text == "TxnStatus" && body[i + 1].text == "::" {
                pending.push(body[i + 2].text.clone());
            } else if body[i].text == "ParticipantState" && body[i + 1].text == "::" {
                for from in pending.drain(..) {
                    union.insert((from, body[i + 2].text.clone()));
                }
            }
            i += 1;
        }
    }
    for r in &ws.spec.reports {
        if !union.contains(&(r.from.clone(), r.to.clone())) {
            out.push(Finding {
                rule: "state_machine",
                file: ws.spec_file.clone(),
                line: r.line,
                func: "report-table".to_string(),
                msg: format!(
                    "declared report mapping TxnStatus::{} → ParticipantState::{} \
                     is not implemented in crate coord",
                    r.from, r.to
                ),
            });
        }
    }
}

/// Is the code pair present in the declared report table?
fn code_pair_reported(p: &CodePair, ws: &Workspace) -> bool {
    ws.spec
        .reports
        .iter()
        .any(|r| r.from == p.from && r.to == p.to)
}

//! **R2 `lock_order`** — stripe lock ordering.
//!
//! The workspace-wide acquisition order is:
//!
//! > txn-table shard (rank 0) → lock-table stripe (rank 1) →
//! > storage latch / cache shard (rank 2)
//!
//! Acquiring a tracked lock whose rank is ≤ the highest rank currently
//! held is a violation — that covers both same-class double acquisition
//! (two stripes, a latch under a cache-shard mutex) and order inversion
//! (a txn shard while holding a latch). The blessed ordered-multi-lock
//! helpers ([`crate::BLESSED`]) are exempt at their call sites and must
//! carry `#[verify_allow(lock_order)]` for their own bodies — a
//! consistency check enforces the annotation.
//!
//! Tracking is intraprocedural with a guard-scope model (`let`-bound
//! guards live to the end of their block or an explicit `drop`;
//! temporaries live to the end of the statement), extended one level
//! through the call graph via per-function *acquisition sets*: calling a
//! function that (transitively) acquires a class of rank ≤ a held rank is
//! flagged at the call site.

use crate::lexer::{Kind, Tok};
use crate::{
    crate_rank, Finding, Workspace, ACQUIRE_METHODS, BLESSED, CLASS_NAMES, COMMON_NAMES,
    CONSTRUCTORS,
};

/// Latch methods (rank 2 when the receiver spine names a latch).
const LATCH_METHODS: [&str; 6] = [
    "shared",
    "exclusive",
    "shared_profiled",
    "exclusive_profiled",
    "try_shared",
    "try_exclusive",
];

/// What an acquisition-candidate token resolved to.
enum Acq {
    /// A guard of this rank is produced.
    Guard(u8),
    /// The callee acquires and releases this rank internally
    /// (`locks.lock(...)` entering the lock table).
    Transient(u8),
}

/// Classify a candidate method call by receiver spine and defining crate.
fn classify(method: &str, spine: &[String], krate: &str) -> Option<Acq> {
    let has = |n: &str| spine.iter().any(|s| s == n);
    if method == "lock" {
        if has("shard") || has("shards") {
            return Some(Acq::Guard(crate_rank(krate)));
        }
        if has("locks") {
            return Some(Acq::Transient(1));
        }
        return None;
    }
    if LATCH_METHODS.contains(&method) && (has("latch") || has("latches")) {
        return Some(Acq::Guard(2));
    }
    None
}

/// Direct acquisition classes visible in a body (for acquisition sets).
pub fn direct_acquisitions(body: &[Tok], krate: &str) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < body.len() {
        if body[i].kind == Kind::Ident && body[i + 1].text == "(" {
            let name = body[i].text.as_str();
            if i > 0 && body[i - 1].text == "." && ACQUIRE_METHODS.contains(&name) {
                match classify(name, &spine(body, i - 1), krate) {
                    Some(Acq::Guard(r)) | Some(Acq::Transient(r)) => out.push(r),
                    None => {}
                }
            } else if CONSTRUCTORS.contains(&name) {
                out.push(0);
            }
        }
        i += 1;
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Walk the receiver spine leftwards from the `.` before a method call,
/// collecting the identifiers of the receiver expression
/// (`self.shard(oid).lock()` → `["self", "shard"]`).
fn spine(body: &[Tok], dot: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut k = dot;
    while k > 0 {
        k -= 1;
        let t = &body[k];
        match t.text.as_str() {
            ")" | "]" => {
                // skip the balanced group backwards
                let (close, open) = if t.text == ")" {
                    (")", "(")
                } else {
                    ("]", "[")
                };
                let mut depth = 0i64;
                loop {
                    if body[k].text == close {
                        depth += 1;
                    } else if body[k].text == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
            }
            "." | "::" | "?" => {}
            _ if t.kind == Kind::Ident => out.push(t.text.clone()),
            _ => break,
        }
        // after an identifier, only `.`/`::`/`(`… chains continue the spine
        if t.kind == Kind::Ident && k > 0 {
            let prev = &body[k - 1].text;
            if prev != "." && prev != "::" {
                break;
            }
        }
    }
    out.reverse();
    out
}

/// How the acquisition statement binds its guard.
enum Binding {
    Let(String),
    Reassign(String),
    Temp,
}

/// Look back from token `i` to the start of the statement and decide the
/// binding form.
fn stmt_binding(body: &[Tok], i: usize) -> Binding {
    let mut b = i;
    while b > 0 {
        match body[b - 1].text.as_str() {
            ";" | "{" | "}" | "=>" => break,
            _ => b -= 1,
        }
    }
    let mut s = b;
    if body[s].text == "let" {
        s += 1;
        if s < body.len() && body[s].text == "mut" {
            s += 1;
        }
        if s + 1 < body.len() && body[s].kind == Kind::Ident && body[s + 1].text == "=" {
            return Binding::Let(body[s].text.clone());
        }
        return Binding::Temp;
    }
    if s + 1 < body.len() && body[s].kind == Kind::Ident && body[s + 1].text == "=" {
        return Binding::Reassign(body[s].text.clone());
    }
    Binding::Temp
}

struct Guard {
    name: Option<String>,
    rank: u8,
    line: u32,
    /// Brace depth at binding for `let` guards; `None` = statement temp.
    depth: Option<i32>,
}

/// Run R2 over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    consistency_check(ws, out);
    for (file, item) in ws.runtime_fns() {
        scan_fn(ws, file, item, out);
    }
}

/// Blessed multi-lock helpers must declare their exemption explicitly.
fn consistency_check(ws: &Workspace, out: &mut Vec<Finding>) {
    for (file, item) in ws.runtime_fns() {
        let required = (file.krate == "lock" && BLESSED.contains(&item.name.as_str()))
            || (file.krate == "core" && CONSTRUCTORS.contains(&item.name.as_str()));
        if !required {
            continue;
        }
        let declared = item
            .attrs
            .iter()
            .any(|a| a.name == "verify_allow" && a.first_ident() == Some("lock_order"));
        if !declared {
            out.push(Finding {
                rule: "meta",
                file: file.path.clone(),
                line: item.line,
                func: item.name.clone(),
                msg: format!(
                    "`{}` is a blessed multi-lock helper; it must declare \
                     #[verify_allow(lock_order, reason = \"...\")]",
                    item.name
                ),
            });
        }
    }
}

fn scan_fn(
    ws: &Workspace,
    file: &crate::SrcFile,
    item: &crate::parse::FnItem,
    out: &mut Vec<Finding>,
) {
    let body = ws.body(file, item);
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth.is_none_or(|d| d <= depth));
            }
            ";" => guards.retain(|g| g.depth.is_some()),
            _ => {}
        }
        // drop(NAME) / mem::drop(NAME)
        if t.text == "drop"
            && i + 3 < body.len()
            && body[i + 1].text == "("
            && body[i + 2].kind == Kind::Ident
            && body[i + 3].text == ")"
        {
            let name = &body[i + 2].text;
            guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
            i += 4;
            continue;
        }
        if t.kind == Kind::Ident && i + 1 < body.len() && body[i + 1].text == "(" {
            let name = t.text.as_str();
            let is_method = i > 0 && body[i - 1].text == ".";
            let max_held = guards.iter().map(|g| g.rank).max();
            let held_line = |r: u8, gs: &[Guard]| {
                gs.iter()
                    .filter(|g| g.rank >= r)
                    .map(|g| g.line)
                    .max()
                    .unwrap_or(0)
            };
            if is_method && ACQUIRE_METHODS.contains(&name) {
                if let Some(acq) = classify(name, &spine(body, i - 1), &file.krate) {
                    match acq {
                        Acq::Guard(r) => {
                            let binding = stmt_binding(body, i);
                            if let Binding::Reassign(n) = &binding {
                                // rebind: the old guard is replaced, not
                                // held across the new acquisition
                                guards.retain(|g| g.name.as_deref() != Some(n.as_str()));
                            }
                            if let Some(h) = guards.iter().map(|g| g.rank).max() {
                                if r <= h {
                                    out.push(violation(
                                        file,
                                        item,
                                        t.line,
                                        format!(
                                            "acquires {} while already holding {} \
                                             (acquired line {})",
                                            CLASS_NAMES[r as usize],
                                            CLASS_NAMES[h as usize],
                                            held_line(r, &guards)
                                        ),
                                    ));
                                }
                            }
                            let (gname, gdepth) = match binding {
                                Binding::Let(n) | Binding::Reassign(n) => (Some(n), Some(depth)),
                                Binding::Temp => (None, None),
                            };
                            guards.push(Guard {
                                name: gname,
                                rank: r,
                                line: t.line,
                                depth: gdepth,
                            });
                        }
                        Acq::Transient(r) => {
                            if let Some(h) = max_held {
                                if r <= h {
                                    out.push(violation(
                                        file,
                                        item,
                                        t.line,
                                        format!(
                                            "enters the lock table ({}) while holding {} \
                                             (acquired line {})",
                                            CLASS_NAMES[r as usize],
                                            CLASS_NAMES[h as usize],
                                            held_line(r, &guards)
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                    i += 1;
                    continue;
                }
            }
            if CONSTRUCTORS.contains(&name) {
                if let Some(h) = max_held {
                    // lock_group/lock_all acquire rank 0; holding anything
                    // already breaks the ascending order
                    out.push(violation(
                        file,
                        item,
                        t.line,
                        format!(
                            "constructs a txn-shard group guard while holding {} \
                             (acquired line {})",
                            CLASS_NAMES[h as usize],
                            held_line(0, &guards)
                        ),
                    ));
                }
                let binding = stmt_binding(body, i);
                let (gname, gdepth) = match binding {
                    Binding::Let(n) | Binding::Reassign(n) => (Some(n), Some(depth)),
                    Binding::Temp => (None, None),
                };
                guards.push(Guard {
                    name: gname,
                    rank: 0,
                    line: t.line,
                    depth: gdepth,
                });
                i += 1;
                continue;
            }
            if BLESSED.contains(&name) {
                i += 1;
                continue;
            }
            // `name == item.name` covers both recursion and delegation to a
            // same-named method in another layer (Database::checkpoint →
            // StorageEngine::checkpoint): the name-merged acquisition set
            // would otherwise count the caller's own locks against itself.
            if let Some(h) = max_held {
                if !COMMON_NAMES.contains(&name) && name != item.name {
                    if let Some(set) = ws.acquire.get(name) {
                        if let Some(&r) = set.iter().find(|&&r| r <= h) {
                            out.push(violation(
                                file,
                                item,
                                t.line,
                                format!(
                                    "calls `{}` which acquires {} while holding {} \
                                     (acquired line {})",
                                    name,
                                    CLASS_NAMES[r as usize],
                                    CLASS_NAMES[h as usize],
                                    held_line(r, &guards)
                                ),
                            ));
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

fn violation(
    file: &crate::SrcFile,
    item: &crate::parse::FnItem,
    line: u32,
    msg: String,
) -> Finding {
    Finding {
        rule: "lock_order",
        file: file.path.clone(),
        line,
        func: item.name.clone(),
        msg,
    }
}

//! The rule catalog. Each rule exposes `run(&Workspace, &mut Vec<Finding>)`
//! and pushes raw findings; suppression filtering happens centrally in
//! [`crate::Workspace::analyze`].

pub mod exec_step;
pub mod failpoints;
pub mod lock_order;
pub mod no_panics;
pub mod spec_drift;
pub mod state_machine;
pub mod status_flow;
pub mod wal;

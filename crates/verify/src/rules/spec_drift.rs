//! **R6 `spec_drift`** — the code and the normative DESIGN.md tables
//! must agree, bidirectionally.
//!
//! The spec tables (parsed by [`crate::spec`]) are cross-checked against
//! the code constants and the dispatch/decode/mapping functions that
//! consume them:
//!
//! - §13.3 **opcode table** ↔ `mod opcode` constants in crate `server`:
//!   every spec row needs a constant with the matching value, every
//!   constant a spec row, and the server's opcode dispatcher (the fn
//!   with the most distinct `opcode::*` match references) needs an arm
//!   per opcode.
//! - §13.3 **status table** ↔ `mod status` constants: bidirectional
//!   value check, plus every status must be referenced somewhere in
//!   crate `server` (a status the server can never produce or name is
//!   drift), and the client's commit-fate mapping must distinguish
//!   `OK` / `ERR_COMMIT_ABORTED` / `ERR_COMMIT_AMBIGUOUS` (§13.4).
//! - §14.1 **coordinator message table**: each row's wire opcode must
//!   exist in the opcode table with the same value, and each message
//!   must be matched as `CommitMessage::X` in crate `coord`.
//! - **WAL record inventory** ↔ `KIND_*` tag constants in crate
//!   `storage`, plus the record decoder (the fn with the most distinct
//!   `KIND_*` references) needs an arm per tag.
//!
//! Checks whose spec table or code crate is absent are skipped, so
//! fixture workspaces exercise exactly the surfaces they provide.

use std::collections::BTreeSet;

use crate::lexer::{Kind, Tok};
use crate::{Finding, SrcFile, Workspace};

/// Run R6 over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    check_value_table(
        ws,
        out,
        &ws.spec.opcodes,
        "server",
        Anchor::Mod("opcode"),
        "opcode",
    );
    check_value_table(
        ws,
        out,
        &ws.spec.statuses,
        "server",
        Anchor::Mod("status"),
        "status",
    );
    check_value_table(
        ws,
        out,
        &ws.spec.wal_records,
        "storage",
        Anchor::Prefix("KIND_"),
        "WAL record",
    );
    check_dispatch(ws, out);
    check_status_consumption(ws, out);
    check_client_fate_map(ws, out);
    check_coord_ops(ws, out);
    check_record_decoder(ws, out);
}

/// Where a table's code-side constants live.
enum Anchor {
    /// Constants inside `mod <name> { ... }`.
    Mod(&'static str),
    /// File-level constants named `<prefix>*`.
    Prefix(&'static str),
}

/// Bidirectional row ↔ constant check for one value table.
fn check_value_table(
    ws: &Workspace,
    out: &mut Vec<Finding>,
    rows: &[crate::spec::ValueRow],
    krate: &str,
    anchor: Anchor,
    table: &str,
) {
    if rows.is_empty() || !crate_present(ws, krate) {
        return;
    }
    let mut consts: Vec<(String, u64, u32, String)> = Vec::new();
    for f in ws.files.iter().filter(|f| f.krate == krate) {
        let found = match anchor {
            Anchor::Mod(m) => mod_consts(f, m),
            Anchor::Prefix(p) => prefixed_consts(f, p),
        };
        for (name, value, line) in found {
            consts.push((name, value, line, f.path.clone()));
        }
    }
    let (func, anchor_desc) = match anchor {
        Anchor::Mod(m) => (m, format!("{krate}'s `mod {m}`")),
        Anchor::Prefix(p) => (krate, format!("{krate}'s `{p}*` tag constants")),
    };
    for row in rows {
        match consts.iter().find(|(n, ..)| *n == row.name) {
            None => out.push(Finding {
                rule: "spec_drift",
                file: ws.spec_file.clone(),
                line: row.line,
                func: format!("{table}-table"),
                msg: format!(
                    "spec row `{}` = {} has no matching constant in {anchor_desc}",
                    row.name,
                    fmt_val(table, row.value)
                ),
            }),
            Some((_, v, line, path)) if *v != row.value => out.push(Finding {
                rule: "spec_drift",
                file: path.clone(),
                line: *line,
                func: func.to_string(),
                msg: format!(
                    "constant `{}` = {} disagrees with the DESIGN.md {table} table \
                     row at line {} (spec says {})",
                    row.name,
                    fmt_val(table, *v),
                    row.line,
                    fmt_val(table, row.value)
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, value, line, path) in &consts {
        if !rows.iter().any(|r| r.name == *name) {
            out.push(Finding {
                rule: "spec_drift",
                file: path.clone(),
                line: *line,
                func: func.to_string(),
                msg: format!(
                    "constant `{name}` = {} has no row in the DESIGN.md {table} table",
                    fmt_val(table, *value)
                ),
            });
        }
    }
}

/// The server's opcode dispatcher must have an arm (or explicit reject)
/// per spec opcode.
fn check_dispatch(ws: &Workspace, out: &mut Vec<Finding>) {
    if ws.spec.opcodes.is_empty() || !crate_present(ws, "server") {
        return;
    }
    let Some((file, item, refs)) =
        densest_path_refs(ws, "server", |body| path_refs(body, "opcode"))
    else {
        out.push(Finding {
            rule: "spec_drift",
            file: ws.spec_file.clone(),
            line: ws.spec.opcodes[0].line,
            func: "opcode-table".to_string(),
            msg: "crate server has no opcode dispatch function (a fn matching \
                  on `opcode::*` arms)"
                .to_string(),
        });
        return;
    };
    for row in &ws.spec.opcodes {
        if !refs.contains(&row.name) {
            out.push(Finding {
                rule: "spec_drift",
                file: file.path.clone(),
                line: item.line,
                func: item.name.clone(),
                msg: format!(
                    "dispatch has no arm for spec opcode `{}` ({}); add a match \
                     arm or an explicit reject",
                    row.name,
                    fmt_val("opcode", row.value)
                ),
            });
        }
    }
}

/// Every spec status must be referenced somewhere in crate `server`.
fn check_status_consumption(ws: &Workspace, out: &mut Vec<Finding>) {
    if ws.spec.statuses.is_empty() || !crate_present(ws, "server") {
        return;
    }
    let mut union = BTreeSet::new();
    for (file, item) in ws.runtime_fns() {
        if file.krate == "server" {
            union.extend(path_refs(ws.body(file, item), "status"));
        }
    }
    for row in &ws.spec.statuses {
        if !union.contains(&row.name) {
            out.push(Finding {
                rule: "spec_drift",
                file: ws.spec_file.clone(),
                line: row.line,
                func: "status-table".to_string(),
                msg: format!(
                    "spec status `{}` ({}) is referenced nowhere in crate server \
                     — it can neither be produced nor named",
                    row.name,
                    fmt_val("status", row.value)
                ),
            });
        }
    }
}

/// The client fn mapping commit fates must distinguish the §13.4 trio.
fn check_client_fate_map(ws: &Workspace, out: &mut Vec<Finding>) {
    if ws.spec.statuses.is_empty() || !crate_present(ws, "client") {
        return;
    }
    let mapper = ws.runtime_fns().find(|(file, item)| {
        file.krate == "client" && path_refs(ws.body(file, item), "TxnFate").contains("Ambiguous")
    });
    let Some((file, item)) = mapper else {
        out.push(Finding {
            rule: "spec_drift",
            file: ws.spec_file.clone(),
            line: ws.spec.statuses[0].line,
            func: "status-table".to_string(),
            msg: "crate client never maps `TxnFate::Ambiguous`; the §13.4 \
                  ambiguous outcome would be unrepresentable"
                .to_string(),
        });
        return;
    };
    let refs = path_refs(ws.body(file, item), "status");
    for required in ["OK", "ERR_COMMIT_ABORTED", "ERR_COMMIT_AMBIGUOUS"] {
        if ws.spec.statuses.iter().any(|r| r.name == required) && !refs.contains(required) {
            out.push(Finding {
                rule: "spec_drift",
                file: file.path.clone(),
                line: item.line,
                func: item.name.clone(),
                msg: format!(
                    "commit-fate mapping does not reference `status::{required}`; \
                     §13.4 requires the clean-abort/ambiguous split to be explicit"
                ),
            });
        }
    }
}

/// §14.1 rows: wire opcode consistent with §13.3, message matched in coord.
fn check_coord_ops(ws: &Workspace, out: &mut Vec<Finding>) {
    if ws.spec.coord_ops.is_empty() {
        return;
    }
    for row in &ws.spec.coord_ops {
        if !ws.spec.opcodes.is_empty() {
            match ws.spec.opcodes.iter().find(|o| o.name == row.opcode_name) {
                None => out.push(Finding {
                    rule: "spec_drift",
                    file: ws.spec_file.clone(),
                    line: row.line,
                    func: "coord-op-table".to_string(),
                    msg: format!(
                        "§14.1 wire opcode `{}` is not in the §13.3 opcode table",
                        row.opcode_name
                    ),
                }),
                Some(o) if o.value != row.value => out.push(Finding {
                    rule: "spec_drift",
                    file: ws.spec_file.clone(),
                    line: row.line,
                    func: "coord-op-table".to_string(),
                    msg: format!(
                        "§14.1 says `{}` = {} but the §13.3 opcode table says {}",
                        row.opcode_name,
                        fmt_val("opcode", row.value),
                        fmt_val("opcode", o.value)
                    ),
                }),
                Some(_) => {}
            }
        }
        if crate_present(ws, "coord") {
            let handled = ws.runtime_fns().any(|(file, item)| {
                file.krate == "coord"
                    && path_refs(ws.body(file, item), "CommitMessage").contains(&row.message)
            });
            if !handled {
                out.push(Finding {
                    rule: "spec_drift",
                    file: ws.spec_file.clone(),
                    line: row.line,
                    func: "coord-op-table".to_string(),
                    msg: format!(
                        "coordinator message `{m}` is never matched as \
                         `CommitMessage::{m}` in crate coord",
                        m = row.message
                    ),
                });
            }
        }
    }
}

/// The storage record decoder must have an arm per WAL record tag.
fn check_record_decoder(ws: &Workspace, out: &mut Vec<Finding>) {
    if ws.spec.wal_records.is_empty() || !crate_present(ws, "storage") {
        return;
    }
    let Some((file, item, refs)) =
        densest_path_refs(ws, "storage", |body| idents_with_prefix(body, "KIND_"))
    else {
        out.push(Finding {
            rule: "spec_drift",
            file: ws.spec_file.clone(),
            line: ws.spec.wal_records[0].line,
            func: "WAL record-table".to_string(),
            msg: "crate storage has no log-record decode function (a fn matching \
                  on `KIND_*` tags)"
                .to_string(),
        });
        return;
    };
    for row in &ws.spec.wal_records {
        if !refs.contains(&row.name) {
            out.push(Finding {
                rule: "spec_drift",
                file: file.path.clone(),
                line: item.line,
                func: item.name.clone(),
                msg: format!(
                    "log-record decoder has no arm for spec tag `{}` ({})",
                    row.name, row.value
                ),
            });
        }
    }
}

fn crate_present(ws: &Workspace, krate: &str) -> bool {
    ws.files.iter().any(|f| f.krate == krate)
}

/// Values print as hex for wire tables, decimal for record tags.
fn fmt_val(table: &str, v: u64) -> String {
    if table == "WAL record" {
        format!("{v}")
    } else {
        format!("{v:#04x}")
    }
}

/// Distinct `X` of `head :: X` token sequences in a body.
pub(crate) fn path_refs(body: &[Tok], head: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i + 2 < body.len() {
        if body[i].text == head && body[i + 1].text == "::" && body[i + 2].kind == Kind::Ident {
            out.insert(body[i + 2].text.clone());
        }
        i += 1;
    }
    out
}

/// Distinct identifiers starting with `prefix` in a body.
fn idents_with_prefix(body: &[Tok], prefix: &str) -> BTreeSet<String> {
    body.iter()
        .filter(|t| t.kind == Kind::Ident && t.text.starts_with(prefix))
        .map(|t| t.text.clone())
        .collect()
}

/// The runtime fn of `krate` whose body has the most (≥ 2) distinct
/// references per `refs_of` — the dispatcher/decoder heuristic.
fn densest_path_refs<'a>(
    ws: &'a Workspace,
    krate: &str,
    refs_of: impl Fn(&[Tok]) -> BTreeSet<String>,
) -> Option<(&'a SrcFile, &'a crate::parse::FnItem, BTreeSet<String>)> {
    let mut best: Option<(&SrcFile, &crate::parse::FnItem, BTreeSet<String>)> = None;
    for (file, item) in ws.runtime_fns() {
        if file.krate != krate {
            continue;
        }
        let refs = refs_of(ws.body(file, item));
        if refs.len() >= 2 && best.as_ref().is_none_or(|(.., b)| refs.len() > b.len()) {
            best = Some((file, item, refs));
        }
    }
    best
}

/// Constants declared inside `mod <mod_name> { ... }` of one file:
/// `(name, value, line)`.
fn mod_consts(file: &SrcFile, mod_name: &str) -> Vec<(String, u64, u32)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].text == "mod" && toks[i + 1].text == mod_name && toks[i + 2].text == "{" {
            let close = crate::parse::matching_brace(toks, i + 2, toks.len());
            collect_consts(&toks[i + 2..=close], |_| true, &mut out);
            i = close;
        }
        i += 1;
    }
    out
}

/// File-level constants whose name starts with `prefix`.
fn prefixed_consts(file: &SrcFile, prefix: &str) -> Vec<(String, u64, u32)> {
    let mut out = Vec::new();
    collect_consts(&file.toks, |n| n.starts_with(prefix), &mut out);
    out
}

/// Scan `const NAME: ... = <int literal>;` items in a token slice.
fn collect_consts(toks: &[Tok], keep: impl Fn(&str) -> bool, out: &mut Vec<(String, u64, u32)>) {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].text == "const" && toks[i + 1].kind == Kind::Ident && keep(&toks[i + 1].text) {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "=" && toks[j].text != ";" {
                j += 1;
            }
            if j + 1 < toks.len() && toks[j].text == "=" && toks[j + 1].kind == Kind::Lit {
                if let Some(v) = parse_int(&toks[j + 1].text) {
                    out.push((name, v, line));
                }
            }
            i = j;
        }
        i += 1;
    }
}

/// `0xNN` hex or decimal literal text (tolerating `_` separators).
fn parse_int(s: &str) -> Option<u64> {
    let s = s.replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

//! **R3 `failpoint_coverage`** — every durable write is crash-testable.
//!
//! The deterministic fault-injection harness (PR 3) can only exercise a
//! crash point that is guarded by a `failpoint!` / `failpoint_sync!`
//! evaluation. This rule requires every durable-write call site in
//! `asset-storage` (`write_all`, `write_all_at`, `sync_data`, `sync_all`,
//! `set_len`) to be *dominated* — preceded in the same function body — by
//! a failpoint macro or a call to a failpoint-checker function (detected
//! by `#[failpoint_checker]` or by body inspection: the fn evaluates the
//! macros or consults the fault registry).

use crate::lexer::Kind;
use crate::{Finding, Workspace, DURABLE_WRITES};

/// Run R3 over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for (file, item) in ws.runtime_fns() {
        if file.krate != "storage" {
            continue;
        }
        // Checker fns themselves are the coverage source, not subjects.
        if ws.checkers.contains(&item.name) {
            continue;
        }
        let body = ws.body(file, item);
        let mut covered = false;
        let mut i = 0usize;
        while i < body.len() {
            let t = &body[i];
            if !covered && t.kind == Kind::Ident {
                let name = t.text.as_str();
                let is_macro = name == "failpoint" || name == "failpoint_sync";
                let is_checker_call =
                    i + 1 < body.len() && body[i + 1].text == "(" && ws.checkers.contains(name);
                covered = is_macro || is_checker_call;
            }
            if !covered
                && t.kind == Kind::Ident
                && DURABLE_WRITES.contains(&t.text.as_str())
                && i > 0
                && body[i - 1].text == "."
                && i + 1 < body.len()
                && body[i + 1].text == "("
            {
                out.push(Finding {
                    rule: "failpoint_coverage",
                    file: file.path.clone(),
                    line: t.line,
                    func: item.name.clone(),
                    msg: format!(
                        "durable write `.{}()` is not dominated by a failpoint!/\
                         failpoint_sync! evaluation or a failpoint-checker call",
                        t.text
                    ),
                });
            }
            i += 1;
        }
    }
}

//! **R7 `status_flow`** — the §13.4 ambiguity contract as a checked
//! property: a `CommitAmbiguous` / flush-window-failure outcome must
//! never be silently swallowed on its way to a wire status or
//! `TxnFate`.
//!
//! The pass is interprocedural over the existing name-based call
//! graph. *Mention* functions are those whose bodies touch the
//! ambiguity vocabulary (`CommitAmbiguous`, `commit_ambiguous`,
//! `ERR_COMMIT_AMBIGUOUS`, `TxnFate::Ambiguous`); a *carrier* is any
//! function that reaches a mention function through the call graph
//! (depth-capped, blocked at [`crate::COMMON_NAMES`] so std-colliding
//! methods don't leak). In the boundary crates (`server`, `client`,
//! `coord`) three swallow shapes are flagged when they discard a
//! carrier's result:
//!
//! - `let _ = carrier(...)` (without a `?` propagating the error);
//! - `carrier(...).ok()` — the error path evaporates into an `Option`;
//! - a `match` on a carrier call with an empty `Err(_) => {}` arm.
//!
//! Producers (engine, flusher, coord decision paths) are free to
//! *construct* ambiguity; only the paths that should report it are
//! held to the contract.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Kind, Tok};
use crate::parse::matching_brace;
use crate::{Finding, Workspace, COMMON_NAMES};

/// Identifiers that mark a function as part of the ambiguity flow.
const MENTION_IDENTS: [&str; 4] = [
    "CommitAmbiguous",
    "commit_ambiguous",
    "ERR_COMMIT_AMBIGUOUS",
    "Ambiguous",
];

/// Crates whose code must surface ambiguity rather than swallow it.
const BOUNDARY_CRATES: [&str; 3] = ["server", "client", "coord"];

/// Run R7 over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let mentions: BTreeSet<String> = ws
        .runtime_fns()
        .filter(|(file, item)| {
            ws.body(file, item)
                .iter()
                .any(|t| t.kind == Kind::Ident && MENTION_IDENTS.contains(&t.text.as_str()))
        })
        .map(|(_, item)| item.name.clone())
        .collect();
    if mentions.is_empty() {
        return;
    }
    let mut cache: BTreeMap<String, bool> = BTreeMap::new();
    for (file, item) in ws.runtime_fns() {
        if !BOUNDARY_CRATES.contains(&file.krate.as_str()) {
            continue;
        }
        let body = ws.body(file, item);
        scan_let_discard(ws, &mentions, &mut cache, body, file, item, out);
        scan_ok_swallow(ws, &mentions, &mut cache, body, file, item, out);
        scan_empty_err_arm(ws, &mentions, &mut cache, body, file, item, out);
    }
}

/// `let _ = carrier(...);` without a `?` in the statement.
#[allow(clippy::too_many_arguments)]
fn scan_let_discard(
    ws: &Workspace,
    mentions: &BTreeSet<String>,
    cache: &mut BTreeMap<String, bool>,
    body: &[Tok],
    file: &crate::SrcFile,
    item: &crate::parse::FnItem,
    out: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i + 2 < body.len() {
        if body[i].text == "let" && body[i + 1].text == "_" && body[i + 2].text == "=" {
            let mut j = i + 3;
            let mut depth = 0i64;
            let mut propagated = false;
            let mut callee: Option<&str> = None;
            while j < body.len() {
                match body[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    "?" if depth == 0 => propagated = true,
                    _ => {}
                }
                if callee.is_none()
                    && body[j].kind == Kind::Ident
                    && j + 1 < body.len()
                    && body[j + 1].text == "("
                    && carries(ws, mentions, cache, &body[j].text)
                {
                    callee = Some(&body[j].text);
                }
                j += 1;
            }
            if let (Some(c), false) = (callee, propagated) {
                out.push(Finding {
                    rule: "status_flow",
                    file: file.path.clone(),
                    line: body[i].line,
                    func: item.name.clone(),
                    msg: format!(
                        "`let _ =` discards the result of `{c}`, which can carry a \
                         CommitAmbiguous outcome; consume it and surface the \
                         ambiguity (§13.4)"
                    ),
                });
            }
            i = j;
        }
        i += 1;
    }
}

/// `carrier(...).ok()`.
#[allow(clippy::too_many_arguments)]
fn scan_ok_swallow(
    ws: &Workspace,
    mentions: &BTreeSet<String>,
    cache: &mut BTreeMap<String, bool>,
    body: &[Tok],
    file: &crate::SrcFile,
    item: &crate::parse::FnItem,
    out: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i + 1 < body.len() {
        if body[i].kind == Kind::Ident
            && body[i + 1].text == "("
            && carries(ws, mentions, cache, &body[i].text)
        {
            let mut j = i + 1;
            let mut depth = 0i64;
            while j < body.len() {
                match body[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j + 4 < body.len()
                && body[j + 1].text == "."
                && body[j + 2].text == "ok"
                && body[j + 3].text == "("
                && body[j + 4].text == ")"
            {
                out.push(Finding {
                    rule: "status_flow",
                    file: file.path.clone(),
                    line: body[j + 2].line,
                    func: item.name.clone(),
                    msg: format!(
                        "`.ok()` swallows the error path of `{}`, which can carry \
                         a CommitAmbiguous outcome (§13.4)",
                        body[i].text
                    ),
                });
            }
        }
        i += 1;
    }
}

/// `match carrier(...) { ... Err(_) => {} ... }`.
#[allow(clippy::too_many_arguments)]
fn scan_empty_err_arm(
    ws: &Workspace,
    mentions: &BTreeSet<String>,
    cache: &mut BTreeMap<String, bool>,
    body: &[Tok],
    file: &crate::SrcFile,
    item: &crate::parse::FnItem,
    out: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < body.len() {
        if body[i].text != "match" {
            i += 1;
            continue;
        }
        // scrutinee: tokens to the first `{` at delimiter depth 0
        let mut j = i + 1;
        let mut depth = 0i64;
        let mut callee: Option<String> = None;
        while j < body.len() {
            match body[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
            if callee.is_none()
                && body[j].kind == Kind::Ident
                && j + 1 < body.len()
                && body[j + 1].text == "("
                && carries(ws, mentions, cache, &body[j].text)
            {
                callee = Some(body[j].text.clone());
            }
            j += 1;
        }
        let Some(c) = callee else {
            i = j;
            continue;
        };
        if j >= body.len() {
            break;
        }
        let close = matching_brace(body, j, body.len());
        let mut k = j;
        while k + 6 <= close {
            if body[k].text == "Err"
                && body[k + 1].text == "("
                && body[k + 2].text == "_"
                && body[k + 3].text == ")"
                && body[k + 4].text == "=>"
                && ((body[k + 5].text == "{" && body[k + 6].text == "}")
                    || (body[k + 5].text == "(" && body[k + 6].text == ")"))
            {
                out.push(Finding {
                    rule: "status_flow",
                    file: file.path.clone(),
                    line: body[k].line,
                    func: item.name.clone(),
                    msg: format!(
                        "empty `Err(_)` arm swallows an error from `{c}`, which can \
                         carry a CommitAmbiguous outcome (§13.4)"
                    ),
                });
            }
            k += 1;
        }
        i = close + 1;
    }
}

/// Can a call to `name` carry an ambiguous outcome? True when `name`
/// reaches a mention function through the call graph.
fn carries(
    ws: &Workspace,
    mentions: &BTreeSet<String>,
    cache: &mut BTreeMap<String, bool>,
    name: &str,
) -> bool {
    if let Some(&v) = cache.get(name) {
        return v;
    }
    if COMMON_NAMES.contains(&name) {
        cache.insert(name.to_string(), false);
        return false;
    }
    let mut seen = BTreeSet::new();
    let mut frontier = vec![(name.to_string(), 0usize)];
    let mut hit = false;
    while let Some((n, d)) = frontier.pop() {
        if mentions.contains(&n) {
            hit = true;
            break;
        }
        if d > 12 || !seen.insert(n.clone()) {
            continue;
        }
        if d > 0 && COMMON_NAMES.contains(&n.as_str()) {
            continue;
        }
        if let Some(callees) = ws.graph.get(&n) {
            for c in callees {
                frontier.push((c.clone(), d + 1));
            }
        }
    }
    cache.insert(name.to_string(), hit);
    hit
}

//! **R4 `no_panics`** — no panicking shortcuts in runtime paths.
//!
//! A panic inside the engine poisons locks and skips undo processing; all
//! runtime errors must flow through `AssetError`. This rule flags
//! `.unwrap()`, `.expect()`, `panic!`, `unimplemented!` and `todo!` in
//! non-test code of `asset-core`, `asset-lock` and `asset-storage`.
//! (`unreachable!` and the `assert*`/`debug_assert*` families are
//! permitted: they document impossible states rather than skip error
//! handling.)

use crate::lexer::Kind;
use crate::{Finding, Workspace};

const PANIC_MACROS: [&str; 3] = ["panic", "unimplemented", "todo"];

/// Run R4 over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for (file, item) in ws.runtime_fns() {
        let body = ws.body(file, item);
        let mut i = 0usize;
        while i < body.len() {
            let t = &body[i];
            if t.kind == Kind::Ident {
                let name = t.text.as_str();
                let method_call = i > 0
                    && body[i - 1].text == "."
                    && i + 1 < body.len()
                    && body[i + 1].text == "(";
                if (name == "unwrap" || name == "expect") && method_call {
                    out.push(finding(
                        file,
                        item,
                        t.line,
                        format!(".{name}() in runtime path"),
                    ));
                }
                if PANIC_MACROS.contains(&name) && i + 1 < body.len() && body[i + 1].text == "!" {
                    out.push(finding(
                        file,
                        item,
                        t.line,
                        format!("{name}! in runtime path"),
                    ));
                }
            }
            i += 1;
        }
    }
}

fn finding(file: &crate::SrcFile, item: &crate::parse::FnItem, line: u32, msg: String) -> Finding {
    Finding {
        rule: "no_panics",
        file: file.path.clone(),
        line,
        func: item.name.clone(),
        msg,
    }
}

//! **R5 `exec_step`** — no blocking calls inside executor worker steps.
//!
//! Functions annotated `#[exec_step]` run on worker-pool threads that
//! multiplex many transactions; one blocking call stalls every transaction
//! queued behind it. Suspension must be *returned* (`TxnStep::WaitLock`,
//! `WaitDep`, `WaitFlush`) so the scheduler can park the transaction and a
//! wake hook can requeue it — never awaited in place. This rule flags
//! direct calls to blocking primitives in annotated bodies: condvar waits,
//! event-count waits, sleeps, fsyncs, thread joins/parks, channel
//! receives, and synchronous flusher submissions.
//!
//! Like R4 the check is per-function and syntactic: a helper called from a
//! step is either annotated `#[exec_step]` itself (and checked on its own)
//! or audited at the boundary. Lock *mutex* acquisitions (`.lock()`) are
//! deliberately not flagged — stripe and shard mutexes are short critical
//! sections the whole engine relies on; the rule targets unbounded waits.

use crate::lexer::Kind;
use crate::{Finding, Workspace};

/// Blocking primitives an executor step must never call directly. Matched
/// as `.name(` or `::name(` so field accesses and unrelated identifiers
/// don't trip the rule.
pub const BLOCKING_CALLS: [&str; 14] = [
    "wait",
    "wait_until",
    "wait_while",
    "wait_timeout",
    "wait_event",
    "sleep",
    "sync_data",
    "sync_all",
    "join",
    "recv",
    "recv_timeout",
    "submit_and_wait",
    "park",
    "park_timeout",
];

/// Run R5 over the workspace.
pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for (file, item) in ws.runtime_fns() {
        if !item.attrs.iter().any(|a| a.name == "exec_step") {
            continue;
        }
        let body = ws.body(file, item);
        let mut i = 0usize;
        while i < body.len() {
            let t = &body[i];
            let called = t.kind == Kind::Ident
                && i > 0
                && (body[i - 1].text == "." || body[i - 1].text == "::")
                && i + 1 < body.len()
                && body[i + 1].text == "(";
            if called && BLOCKING_CALLS.contains(&t.text.as_str()) {
                out.push(Finding {
                    rule: "exec_step",
                    file: file.path.clone(),
                    line: t.line,
                    func: item.name.clone(),
                    msg: format!(
                        "blocking call `{}` inside an executor step; \
                         return TxnStep::Wait* and park instead",
                        t.text
                    ),
                });
            }
            i += 1;
        }
    }
}

//! `asset-verify` CLI: run the workspace invariant analyzer and exit
//! non-zero when any rule is violated.
//!
//! ```text
//! cargo run -p asset-verify                # analyze the workspace
//! cargo run -p asset-verify -- --list-allows   # audit suppressions
//! cargo run -p asset-verify -- --root PATH     # explicit workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_allows = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--list-allows" => list_allows = true,
            "--help" | "-h" => {
                println!(
                    "asset-verify — workspace invariant analyzer\n\
                     rules: R1 wal, R2 lock_order, R3 failpoint_coverage, R4 no_panics, \
                     R5 exec_step\n\
                     usage: asset-verify [--root PATH] [--list-allows]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("asset-verify: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates/core/src").exists() {
            cwd
        } else {
            // fall back to the workspace containing this crate
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let analysis = match asset_verify::analyze_root(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "asset-verify: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if list_allows {
        println!("{} suppression(s):", analysis.allows.len());
        for a in &analysis.allows {
            println!(
                "  {} {}: {}:{} in `{}` — allowed: {}",
                asset_verify::rule_id(a.rule),
                a.rule,
                a.file,
                a.line,
                a.func,
                if a.reason.is_empty() {
                    "(no reason)"
                } else {
                    &a.reason
                }
            );
        }
    }

    if analysis.findings.is_empty() {
        println!(
            "asset-verify: OK — 5 rules, 0 findings, {} audited suppression(s)",
            analysis.allows.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
        eprintln!("asset-verify: {} finding(s)", analysis.findings.len());
        ExitCode::FAILURE
    }
}

//! `asset-verify` CLI: run the workspace invariant analyzer and exit
//! non-zero when any rule is violated.
//!
//! ```text
//! cargo run -p asset-verify                      # analyze the workspace
//! cargo run -p asset-verify -- --list-allows     # audit suppressions
//! cargo run -p asset-verify -- --root PATH       # explicit workspace root
//! cargo run -p asset-verify -- --format sarif    # SARIF 2.1.0 log
//! cargo run -p asset-verify -- --format baseline > verify.baseline
//! cargo run -p asset-verify -- --baseline verify.baseline  # gate on NEW findings
//! cargo run -p asset-verify -- --cfg-faults      # analyze the faults-injected cfg
//! ```
//!
//! Exit codes (pinned, tested by `tests/cli_exit_codes.rs`):
//! `0` clean (or no *new* findings under `--baseline`), `1` findings,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use asset_verify::report;

enum Format {
    Text,
    Json,
    Sarif,
    Baseline,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_allows = false;
    let mut format = Format::Text;
    let mut baseline: Option<PathBuf> = None;
    let mut cfg_faults = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--list-allows" => list_allows = true,
            "--cfg-faults" => cfg_faults = true,
            "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("asset-verify: `--baseline` needs a file argument");
                    return ExitCode::from(2);
                };
                baseline = Some(PathBuf::from(p));
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    Some("baseline") => Format::Baseline,
                    other => {
                        eprintln!(
                            "asset-verify: `--format` must be text|json|sarif|baseline, \
                             got {:?}",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "asset-verify — workspace invariant analyzer ({} rules)",
                    asset_verify::RULES.len()
                );
                for (name, id, desc) in asset_verify::RULES {
                    println!("  {id} {name:<20} {desc}");
                }
                println!(
                    "usage: asset-verify [--root PATH] [--list-allows] [--cfg-faults]\n\
                     \x20                   [--format text|json|sarif|baseline] [--baseline FILE]\n\
                     exit codes: 0 clean, 1 findings, 2 usage/load error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("asset-verify: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates/core/src").exists() {
            cwd
        } else {
            // fall back to the workspace containing this crate
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let analysis = match asset_verify::analyze_root_cfg(&root, cfg_faults) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "asset-verify: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    // Subtract the accepted baseline, if any: only NEW findings gate.
    let findings = match &baseline {
        None => analysis.findings.clone(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => report::filter_new(&analysis.findings, &text),
            Err(e) => {
                eprintln!("asset-verify: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };

    if list_allows {
        println!("{} suppression(s):", analysis.allows.len());
        for a in &analysis.allows {
            println!(
                "  {} {}: {}:{} in `{}` — allowed: {}",
                asset_verify::rule_id(a.rule),
                a.rule,
                a.file,
                a.line,
                a.func,
                if a.reason.is_empty() {
                    "(no reason)"
                } else {
                    &a.reason
                }
            );
        }
    }

    let gated = asset_verify::Analysis {
        findings: findings.clone(),
        allows: analysis.allows.clone(),
    };
    match format {
        Format::Json => print!("{}", report::to_json(&gated)),
        Format::Sarif => print!("{}", report::to_sarif(&gated)),
        Format::Baseline => print!("{}", report::to_baseline(&gated)),
        Format::Text => {
            if findings.is_empty() {
                println!(
                    "asset-verify: OK — {} rules, 0 findings{}, {} audited suppression(s)",
                    asset_verify::RULES.len(),
                    if baseline.is_some() { " (new)" } else { "" },
                    analysis.allows.len()
                );
            } else {
                for f in &findings {
                    println!("{f}");
                }
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("asset-verify: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

//! Structural extraction over the token stream: functions (with their
//! attributes and body ranges), module scopes, and `#[cfg(test)]`
//! boundaries. This is not a full parser — it recovers exactly the shape
//! the rules need: *which tokens belong to which function, and is that
//! function test code*.

use crate::lexer::{Kind, Tok};

/// A parsed attribute, e.g. `#[wal(logs = "...", mutates = "...")]`.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Last path segment of the attribute name (`asset_annot::wal` → `wal`).
    pub name: String,
    /// Tokens inside the argument parentheses (empty when none).
    pub args: Vec<Tok>,
}

impl Attr {
    /// The string value of a `key = "value"` argument.
    pub fn str_arg(&self, key: &str) -> Option<String> {
        let mut i = 0;
        while i + 2 < self.args.len() {
            if self.args[i].text == key && self.args[i + 1].text == "=" {
                return Some(self.args[i + 2].raw_str.clone().unwrap_or_default());
            }
            i += 1;
        }
        None
    }

    /// First bare identifier argument (the rule name of `verify_allow`).
    pub fn first_ident(&self) -> Option<&str> {
        self.args
            .first()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
    }

    /// Does the argument list mention `ident` (outside a `not(...)`)?
    fn mentions_outside_not(&self, ident: &str) -> bool {
        let mut depth_not = 0i32;
        let mut paren = 0i32;
        let mut not_at: Vec<i32> = Vec::new();
        for t in &self.args {
            match t.text.as_str() {
                "not" => {
                    depth_not += 1;
                    not_at.push(paren + 1);
                }
                "(" => paren += 1,
                ")" => {
                    if not_at.last() == Some(&paren) {
                        not_at.pop();
                        depth_not -= 1;
                    }
                    paren -= 1;
                }
                s if s == ident && depth_not == 0 => return true,
                _ => {}
            }
        }
        false
    }

    /// Is this `#[cfg(test)]`-like (test mentioned positively)?
    pub fn is_cfg_test(&self) -> bool {
        self.name == "cfg" && self.mentions_outside_not("test")
    }

    /// For `#[cfg(...)]` attributes mentioning the `faults` feature:
    /// `Some(true)` if the item only exists **with** the feature,
    /// `Some(false)` if only **without** it (`not(feature = "faults")`),
    /// `None` when the attribute does not gate on it. The feature name
    /// appears as a string literal, so both token text and string
    /// interiors are checked.
    pub fn cfg_faults_gate(&self) -> Option<bool> {
        if self.name != "cfg" {
            return None;
        }
        let mut paren = 0i32;
        let mut not_at: Vec<i32> = Vec::new();
        for t in &self.args {
            match t.text.as_str() {
                "not" => not_at.push(paren + 1),
                "(" => paren += 1,
                ")" => {
                    if not_at.last() == Some(&paren) {
                        not_at.pop();
                    }
                    paren -= 1;
                }
                _ => {
                    let is_faults = t.text == "faults" || t.raw_str.as_deref() == Some("faults");
                    if is_faults {
                        return Some(not_at.is_empty());
                    }
                }
            }
        }
        None
    }
}

/// One extracted function.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Attributes attached to the item.
    pub attrs: Vec<Attr>,
    /// Token index range of the body, inclusive of its outer braces.
    pub body: (usize, usize),
    /// Is this test code (`#[test]`, or inside a `#[cfg(test)]` scope)?
    pub is_test: bool,
}

/// Result of parsing one file's token stream.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function (including methods and nested fns).
    pub fns: Vec<FnItem>,
    /// Out-of-line `mod x;` declarations carrying `#[cfg(test)]`.
    pub cfg_test_mods: Vec<String>,
}

/// Parse `toks` (the whole file) into functions and test-mod declarations.
pub fn parse_file(toks: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut i = 0usize;
    items(toks, &mut i, toks.len(), false, &mut out);
    out
}

/// Parse items from `*i` up to `end` (exclusive), at one nesting level.
fn items(toks: &[Tok], i: &mut usize, end: usize, in_test: bool, out: &mut ParsedFile) {
    let mut attrs: Vec<Attr> = Vec::new();
    while *i < end {
        let t = &toks[*i];
        match t.text.as_str() {
            "#" => {
                if let Some(a) = parse_attr(toks, i, end) {
                    attrs.push(a);
                } else {
                    *i += 1;
                }
                continue;
            }
            "pub" => {
                *i += 1;
                // pub(crate) / pub(in path)
                if *i < end && toks[*i].text == "(" {
                    skip_balanced(toks, i, end, "(", ")");
                }
                continue; // attrs stay pending
            }
            "const" | "unsafe" | "async" | "default" => {
                // `const fn` / `unsafe fn` / `unsafe impl` keep scanning;
                // `const NAME: ... = ...;` is handled when the next token
                // is not a declarator keyword.
                if *i + 1 < end
                    && matches!(
                        toks[*i + 1].text.as_str(),
                        "fn" | "impl" | "trait" | "extern" | "unsafe" | "async" | "const"
                    )
                {
                    *i += 1;
                    continue;
                }
                // const item / unsafe block etc.: skip one statement
                skip_statement(toks, i, end);
                attrs.clear();
                continue;
            }
            "extern" => {
                *i += 1; // `extern "C" fn` or extern block
                if *i < end && toks[*i].kind == Kind::Lit {
                    *i += 1;
                }
                continue;
            }
            "mod" => {
                *i += 1;
                let name = ident_at(toks, *i, end);
                *i += 1;
                if *i < end && toks[*i].text == ";" {
                    if attrs.iter().any(|a| a.is_cfg_test()) {
                        if let Some(n) = name {
                            out.cfg_test_mods.push(n);
                        }
                    }
                    *i += 1;
                } else if *i < end && toks[*i].text == "{" {
                    let test = in_test || attrs.iter().any(|a| a.is_cfg_test());
                    let close = matching_brace(toks, *i, end);
                    *i += 1;
                    items(toks, i, close, test, out);
                    *i = close + 1;
                }
                attrs.clear();
                continue;
            }
            "fn" => {
                let line = t.line;
                *i += 1;
                let name = match ident_at(toks, *i, end) {
                    Some(n) => n,
                    None => {
                        attrs.clear();
                        continue; // `fn(` pointer type at item level: skip
                    }
                };
                *i += 1;
                // skip to the body `{` (or `;` for a trait signature),
                // angle-aware so `-> Result<Vec<T>>` cannot fool us
                let mut angle = 0i64;
                let mut body_start = None;
                while *i < end {
                    match toks[*i].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "(" | "[" => {
                            let (o, c) = if toks[*i].text == "(" {
                                ("(", ")")
                            } else {
                                ("[", "]")
                            };
                            skip_balanced(toks, i, end, o, c);
                            continue;
                        }
                        "{" if angle <= 0 => {
                            body_start = Some(*i);
                            break;
                        }
                        ";" if angle <= 0 => break,
                        _ => {}
                    }
                    *i += 1;
                }
                let is_test = in_test || attrs.iter().any(|a| a.name == "test" || a.is_cfg_test());
                if let Some(bs) = body_start {
                    let close = matching_brace(toks, bs, end);
                    out.fns.push(FnItem {
                        name,
                        line,
                        attrs: std::mem::take(&mut attrs),
                        body: (bs, close),
                        is_test,
                    });
                    // scan the body for nested fns (same test context)
                    let mut j = bs + 1;
                    items(toks, &mut j, close, is_test, out);
                    *i = close + 1;
                } else {
                    attrs.clear();
                    *i += 1;
                }
                continue;
            }
            "impl" | "trait" => {
                *i += 1;
                let mut angle = 0i64;
                while *i < end {
                    match toks[*i].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "(" => {
                            skip_balanced(toks, i, end, "(", ")");
                            continue;
                        }
                        "{" if angle <= 0 => break,
                        ";" if angle <= 0 => break, // `impl Trait for X;`? defensive
                        _ => {}
                    }
                    *i += 1;
                }
                if *i < end && toks[*i].text == "{" {
                    let test = in_test || attrs.iter().any(|a| a.is_cfg_test());
                    let close = matching_brace(toks, *i, end);
                    *i += 1;
                    items(toks, i, close, test, out);
                    *i = close + 1;
                } else {
                    *i += 1;
                }
                attrs.clear();
                continue;
            }
            "struct" | "enum" | "union" | "macro_rules" => {
                // skip to `;` or skip the braced definition
                *i += 1;
                while *i < end {
                    match toks[*i].text.as_str() {
                        "{" => {
                            skip_balanced(toks, i, end, "{", "}");
                            break;
                        }
                        "(" => {
                            skip_balanced(toks, i, end, "(", ")");
                            continue; // tuple struct: `;` follows
                        }
                        ";" => {
                            *i += 1;
                            break;
                        }
                        _ => *i += 1,
                    }
                }
                attrs.clear();
                continue;
            }
            "{" => {
                // stray block (e.g. statement inside a fn body we are
                // re-scanning): recurse so nested items are still found
                let close = matching_brace(toks, *i, end);
                *i += 1;
                items(toks, i, close, in_test, out);
                *i = close + 1;
                continue;
            }
            _ => {
                attrs.clear();
                *i += 1;
            }
        }
    }
}

fn ident_at(toks: &[Tok], i: usize, end: usize) -> Option<String> {
    if i < end && toks[i].kind == Kind::Ident {
        Some(toks[i].text.clone())
    } else {
        None
    }
}

/// From `*i` at the opening token, skip past the matching closer.
fn skip_balanced(toks: &[Tok], i: &mut usize, end: usize, open: &str, close: &str) {
    debug_assert_eq!(toks[*i].text, open);
    let mut depth = 0i64;
    while *i < end {
        if toks[*i].text == open {
            depth += 1;
        } else if toks[*i].text == close {
            depth -= 1;
            if depth == 0 {
                *i += 1;
                return;
            }
        }
        *i += 1;
    }
}

/// Skip one `;`-terminated statement, balancing braces/parens on the way
/// (`const X: T = { ... };`).
fn skip_statement(toks: &[Tok], i: &mut usize, end: usize) {
    while *i < end {
        match toks[*i].text.as_str() {
            "{" => skip_balanced(toks, i, end, "{", "}"),
            "(" => skip_balanced(toks, i, end, "(", ")"),
            ";" => {
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    debug_assert_eq!(toks[open].text, "{");
    let mut depth = 0i64;
    let mut i = open;
    while i < end {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Parse `#[...]` / `#![...]` starting at `*i` (the `#`). Inner attributes
/// are consumed but return `None` (they attach to the enclosing scope,
/// which the rules don't need).
fn parse_attr(toks: &[Tok], i: &mut usize, end: usize) -> Option<Attr> {
    let start = *i;
    *i += 1;
    let inner = *i < end && toks[*i].text == "!";
    if inner {
        *i += 1;
    }
    if *i >= end || toks[*i].text != "[" {
        *i = start + 1;
        return None;
    }
    let open = *i;
    skip_balanced(toks, i, end, "[", "]");
    let close = *i - 1; // index of `]`
    if inner {
        return None;
    }
    // name: last ident of the leading path
    let mut j = open + 1;
    let mut name = String::new();
    while j < close && (toks[j].kind == Kind::Ident || toks[j].text == "::") {
        if toks[j].kind == Kind::Ident {
            name = toks[j].text.clone();
        }
        j += 1;
    }
    let args = if j < close && toks[j].text == "(" {
        // tokens strictly inside the matching paren pair
        let mut depth = 0i64;
        let mut k = j;
        let mut close_paren = close;
        while k < close {
            match toks[k].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        close_paren = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        toks[j + 1..close_paren].to_vec()
    } else {
        Vec::new()
    };
    Some(Attr { name, args })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> ParsedFile {
        parse_file(&lex(src).0)
    }

    #[test]
    fn finds_methods_in_impls() {
        let p = fns("impl Foo { pub fn a(&self) {} fn b() -> Vec<u8> { vec![] } }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let p = fns("fn live() {} #[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} }");
        assert!(!p.fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(p.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(p.fns.iter().find(|f| f.name == "t").unwrap().is_test);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let p = fns("#[cfg(not(test))] fn live() {}");
        assert!(!p.fns[0].is_test);
    }

    #[test]
    fn out_of_line_test_mod_recorded() {
        let p = fns("#[cfg(test)] mod tests; mod live;");
        assert_eq!(p.cfg_test_mods, ["tests"]);
    }

    #[test]
    fn attributes_attach_through_pub_and_const() {
        let p = fns("#[wal(logs = x)] pub const fn f() {}");
        assert_eq!(p.fns[0].attrs.len(), 1);
        assert_eq!(p.fns[0].attrs[0].name, "wal");
    }

    #[test]
    fn generic_return_types_do_not_eat_the_body() {
        let p = fns("fn f<T: Ord>(x: Vec<HashMap<u8, T>>) -> Result<Vec<T>> { body() }");
        assert_eq!(p.fns.len(), 1);
        let (b0, b1) = p.fns[0].body;
        assert!(b1 > b0);
    }

    #[test]
    fn nested_fns_found() {
        let p = fns("fn outer() { fn inner() {} }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn cfg_faults_gates_resolve_in_both_polarities() {
        let p = fns("#[cfg(feature = \"faults\")] fn with() {}\n\
             #[cfg(not(feature = \"faults\"))] fn without() {}\n\
             #[cfg(all(unix, not(feature = \"faults\")))] fn nested() {}\n\
             #[cfg(feature = \"other\")] fn unrelated() {}\n\
             fn plain() {}");
        let gate = |i: usize| p.fns[i].attrs.iter().find_map(|a| a.cfg_faults_gate());
        assert_eq!(gate(0), Some(true));
        assert_eq!(gate(1), Some(false));
        assert_eq!(gate(2), Some(false));
        assert_eq!(gate(3), None);
        assert_eq!(gate(4), None);
    }
}

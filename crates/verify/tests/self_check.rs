//! The analyzer must pass over the workspace that ships it: zero findings,
//! and every suppression justified. This is the test the CI `verify` job
//! duplicates as a binary run; keeping it as a test too means plain
//! `cargo test` catches invariant regressions without the extra job.

use std::path::Path;

#[test]
fn workspace_is_clean_and_all_suppressions_are_justified() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let a = asset_verify::analyze_root(&root).expect("workspace sources load");
    assert!(
        a.findings.is_empty(),
        "asset-verify findings:\n{}",
        a.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        !a.allows.is_empty(),
        "expected the audited suppressions to load"
    );
    assert!(a.allows.iter().all(|al| !al.reason.is_empty()));
}

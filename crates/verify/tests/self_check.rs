//! The analyzer must pass over the workspace that ships it: zero findings,
//! in both `faults` configurations, and every suppression justified. This
//! is the test the CI `verify` job duplicates as a binary run; keeping it
//! as a test too means plain `cargo test` catches invariant regressions
//! without the extra job.

use std::path::Path;

fn check(cfg_faults: bool) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let a = asset_verify::analyze_root_cfg(&root, cfg_faults).expect("workspace sources load");
    assert!(
        a.findings.is_empty(),
        "asset-verify findings (cfg_faults = {cfg_faults}):\n{}",
        a.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        !a.allows.is_empty(),
        "expected the audited suppressions to load"
    );
    for al in &a.allows {
        assert!(
            !al.reason.is_empty(),
            "reason-less suppression at {}:{} in `{}`",
            al.file,
            al.line,
            al.func
        );
    }
}

#[test]
fn workspace_is_clean_and_all_suppressions_are_justified() {
    check(false);
}

#[test]
fn workspace_is_clean_under_the_faults_cfg_too() {
    check(true);
}

//! R7 fixture: the three swallow shapes applied to a carrier of
//! `CommitAmbiguous` (the exact shape the real `abort_leftovers`
//! drain had before the `session_drain_ambiguous` counter).

/// Commit outcome as the engine reports it.
pub enum TxnOutcome {
    /// Commit record durable.
    Committed,
    /// Rolled back cleanly.
    Aborted,
    /// Fate unknown: the flush window failed (§13.4).
    CommitAmbiguous,
}

/// Producer — constructing ambiguity is allowed.
pub fn outcome_kind(flush_failed: bool) -> Result<TxnOutcome, u8> {
    if flush_failed {
        Ok(TxnOutcome::CommitAmbiguous)
    } else {
        Ok(TxnOutcome::Committed)
    }
}

/// Swallow shape 1: the result is discarded outright.
pub fn drain_session(flush_failed: bool) {
    let _ = outcome_kind(flush_failed);
}

/// Swallow shape 2: the error path evaporates into an `Option`.
pub fn probe(flush_failed: bool) -> Option<TxnOutcome> {
    outcome_kind(flush_failed).ok()
}

/// Swallow shape 3: the error arm is empty.
pub fn report(flush_failed: bool) {
    match outcome_kind(flush_failed) {
        Ok(_) => {}
        Err(_) => {}
    }
}

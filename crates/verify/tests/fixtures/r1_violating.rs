//! R1 fixture (violating) — distilled from the pre-failpoint-era
//! `Database` (commit 2611af2), where `begin` flipped the slot to
//! `Running` and `delegate` spliced undo entries *before* the matching
//! log record was appended. A crash between the two steps leaves
//! recovery with in-memory state the log cannot explain. The analyzer
//! must re-detect both reorders.

use asset_annot::wal;

impl Database {
    #[wal(logs = "log_record", mutates = "slot.status = TxnStatus::Running")]
    pub fn begin(&self, t: Tid) -> Result<()> {
        self.inner.txns.with(t, |slot| {
            slot.status = TxnStatus::Running; // mutate first — the bug
            slot.thread_live = true;
            self.inner.engine.log_record(&LogRecord::Begin { tid: t })?;
            Ok(())
        })
    }

    #[wal(logs = "log_record", mutates = "mem::take(&mut slot.undo)")]
    pub fn delegate(&self, from: Tid, to: Tid) -> Result<()> {
        let mut guard = self.inner.txns.lock_group(&[from, to]);
        if let Some(slot) = guard.get_mut(from) {
            let moved = mem::take(&mut slot.undo); // splice first — the bug
            if let Some(dst) = guard.get_mut(to) {
                dst.undo.extend(moved);
            }
        }
        self.inner
            .engine
            .log_record(&LogRecord::Delegate { from, to })?;
        drop(guard);
        Ok(())
    }
}

impl StorageEngine {
    pub fn log_record(&self, rec: &LogRecord) -> Result<()> {
        self.wal.append(rec)
    }

    fn append(&self, rec: &LogRecord) -> Result<()> {
        let frame = rec.encode();
        self.file.write_all(&frame)?;
        Ok(())
    }
}

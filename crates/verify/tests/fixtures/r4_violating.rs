//! R4 fixture (violating) — panicking shortcuts on runtime paths: a
//! panic inside the engine poisons locks and skips undo processing, so
//! both of these must flow through `AssetError` instead.

impl TxnTable {
    pub fn status_of(&self, t: Tid) -> TxnStatus {
        self.with(t, |slot| slot.unwrap().status)
    }

    pub fn must_get(&self, t: Tid) -> TxnSlot {
        match self.lookup(t) {
            Some(s) => s,
            None => panic!("missing txn"),
        }
    }
}

//! R4 fixture (conforming) — runtime paths return `AssetError`; the one
//! justified `.expect()` carries an audited suppression, and unwraps in
//! `#[cfg(test)]` code are out of scope by design.

impl TxnTable {
    pub fn status_of(&self, t: Tid) -> Result<TxnStatus> {
        self.lookup(t)
            .map(|s| s.status)
            .ok_or(AssetError::TxnNotFound(t))
    }

    pub fn bootstrap(&self) -> TxnSlot {
        // verify: allow(no_panics) — bootstrap runs before any I/O exists
        TxnSlot::template().expect("static template is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        TxnTable::default().lookup(Tid(1)).unwrap();
    }
}

//! R6 fixture: the wire-protocol constants drifted from the spec
//! table — one value disagreement, one constant missing its row, one
//! spec row with no constant, and a dispatcher missing an arm.

pub mod opcode {
    /// Matches the spec.
    pub const PING: u8 = 0x01;
    /// Spec says 0x13: value drift.
    pub const COMMIT: u8 = 0x16;
    /// No spec row at all.
    pub const SHUTDOWN: u8 = 0x7F;
}

/// Frame dispatcher: references two opcodes, never `ABORT`.
pub fn dispatch(op: u8) -> u8 {
    match op {
        opcode::PING => 1,
        opcode::COMMIT => 2,
        _ => 0,
    }
}

//! R8 fixture: an undocumented transition, two unimplemented spec
//! rows, and a `Prepared` entry without its forced record.

/// Transaction status (fixture subset).
#[derive(Clone, Copy)]
pub enum TxnStatus {
    /// Created.
    Initiated,
    /// Executing.
    Running,
    /// Undo walk in progress.
    Aborting,
    /// Terminal.
    Aborted,
    /// Durable but undecided (§14.2).
    Prepared,
}

impl TxnStatus {
    /// The (drifted) transition relation.
    pub fn can_transition_to(self, next: TxnStatus) -> bool {
        use TxnStatus::*;
        match (self, next) {
            (Initiated, Running) => true,
            (Running, Aborted) => true,
            _ => false,
        }
    }
}

/// A transaction slot.
pub struct Slot {
    /// Current status.
    pub status: TxnStatus,
}

/// Enters `Prepared` without forcing the WAL record first.
pub fn mark_prepared(slot: &mut Slot) {
    slot.status = TxnStatus::Prepared;
}

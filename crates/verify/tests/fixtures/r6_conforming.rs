//! R6 fixture: constants, spec rows, and the dispatcher agree with
//! the table in `r6_spec.md`.

pub mod opcode {
    /// Liveness probe.
    pub const PING: u8 = 0x01;
    /// Commit point.
    pub const COMMIT: u8 = 0x13;
    /// Session abort.
    pub const ABORT: u8 = 0x14;
}

/// Dispatcher with one arm per declared opcode.
pub fn dispatch(op: u8) -> u8 {
    match op {
        opcode::PING => 1,
        opcode::COMMIT => 2,
        opcode::ABORT => 3,
        _ => 0,
    }
}

//! R3 fixture (violating) — seeded: the frame lands on disk with no
//! failpoint between the decision to write and the write itself, so the
//! crash-recovery matrix has no way to place a crash at this durable
//! write and the path ships untested.

impl LogFile {
    pub fn append_frame(&self, frame: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.file.write_all(frame)?;
        inner.tail += frame.len() as u64;
        Ok(())
    }
}

//! R5 fixture (violating) — blocking calls inside executor worker steps:
//! a worker-pool thread multiplexes many transactions, so a step that
//! sleeps, waits on the event count, or awaits the flusher synchronously
//! stalls every transaction queued behind it.

impl Database {
    #[exec_step]
    pub(crate) fn exec_commit_blocking(&self, t: Tid) -> Result<()> {
        let epoch = self.txns.epoch();
        self.txns.wait_event(epoch);
        let rec = LogRecord::Commit { tids: vec![t] };
        self.engine.flusher().submit_and_wait(rec)?;
        Ok(())
    }

    #[exec_step]
    fn exec_backoff(&self) {
        std::thread::sleep(Duration::from_millis(1));
    }
}

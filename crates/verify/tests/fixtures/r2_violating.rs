//! R2 fixture (violating) — seeded from the pre-atomic-dirty
//! `ObjectCache`: both functions take an object latch (storage-latch,
//! rank 2) while still holding a cache shard mutex (also rank 2 in the
//! storage crate), so the acquisition order is not strictly ascending
//! and two threads walking different shards can deadlock against a
//! latch holder faulting into the cache.

impl ObjectCache {
    pub fn evict_clean(&self) {
        for shard in &self.shards {
            shard.lock().retain(|_, e| e.take_if_dirty().is_some());
        }
    }

    pub fn write_back(&self, oid: Oid) {
        let shard = self.shards[self.index(oid)].lock();
        if let Some(e) = shard.get(&oid) {
            let _g = e.latch.exclusive();
        }
    }

    fn take_if_dirty(&self) -> Option<Vec<u8>> {
        let _g = self.latch.shared();
        self.snapshot()
    }
}

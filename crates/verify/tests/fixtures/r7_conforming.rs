//! R7 fixture: the same carrier, consumed and surfaced.

/// Commit outcome as the engine reports it.
pub enum TxnOutcome {
    /// Commit record durable.
    Committed,
    /// Rolled back cleanly.
    Aborted,
    /// Fate unknown: the flush window failed (§13.4).
    CommitAmbiguous,
}

/// Producer.
pub fn outcome_kind(flush_failed: bool) -> Result<TxnOutcome, u8> {
    if flush_failed {
        Ok(TxnOutcome::CommitAmbiguous)
    } else {
        Ok(TxnOutcome::Committed)
    }
}

/// The drain consumes the outcome and surfaces ambiguity.
pub fn drain_session(flush_failed: bool) -> bool {
    matches!(outcome_kind(flush_failed), Ok(TxnOutcome::CommitAmbiguous))
}

/// The wire projection names every arm explicitly.
pub fn report(flush_failed: bool) -> u8 {
    match outcome_kind(flush_failed) {
        Ok(TxnOutcome::CommitAmbiguous) => 0x0F,
        Ok(_) => 0x00,
        Err(code) => code,
    }
}

//! R2 fixture (conforming) — the post-refactor shape: the dirty test is
//! a latch-free atomic load, and the write-back path drops the shard
//! guard before latching, so no storage-latch is ever acquired while a
//! cache shard mutex is held.

impl ObjectCache {
    pub fn evict_clean(&self) {
        for shard in &self.shards {
            shard.lock().retain(|_, e| e.is_dirty());
        }
    }

    pub fn write_back(&self, oid: Oid) {
        let entry = {
            let shard = self.shards[self.index(oid)].lock();
            shard.get(&oid).cloned()
        };
        if let Some(e) = entry {
            let _g = e.latch.exclusive();
        }
    }

    fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Relaxed)
    }
}

//! R3 fixture (conforming) — the same durable writes, each dominated by
//! a failpoint evaluation: `append_frame` evaluates the macro inline,
//! `sync` calls a failpoint-checker helper first (recognized by body
//! inspection).

impl LogFile {
    pub fn append_frame(&self, frame: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        asset_faults::failpoint!(&self.faults, LOG_APPEND, |act| {
            return Err(self.faults.realize_plain(LOG_APPEND, act).into());
        });
        inner.file.write_all(frame)?;
        inner.tail += frame.len() as u64;
        Ok(())
    }

    pub fn sync(&self) -> Result<()> {
        self.guard_sync();
        self.file.sync_data()?;
        Ok(())
    }

    fn guard_sync(&self) {
        asset_faults::failpoint_sync!(&self.faults, LOG_SYNC);
    }
}

//! R1 fixture (conforming) — the post-fix shape of the same two
//! operations: the log record lands before the tracked state changes,
//! so a crash at any point leaves recovery a log that explains
//! everything it finds.

use asset_annot::wal;

impl Database {
    #[wal(logs = "log_record", mutates = "slot.status = TxnStatus::Running")]
    pub fn begin(&self, t: Tid) -> Result<()> {
        self.inner.txns.with(t, |slot| {
            self.inner.engine.log_record(&LogRecord::Begin { tid: t })?;
            slot.status = TxnStatus::Running;
            slot.thread_live = true;
            Ok(())
        })
    }

    #[wal(logs = "log_record", mutates = "mem::take(&mut slot.undo)")]
    pub fn delegate(&self, from: Tid, to: Tid) -> Result<()> {
        let mut guard = self.inner.txns.lock_group(&[from, to]);
        self.inner
            .engine
            .log_record(&LogRecord::Delegate { from, to })?;
        if let Some(slot) = guard.get_mut(from) {
            let moved = mem::take(&mut slot.undo);
            if let Some(dst) = guard.get_mut(to) {
                dst.undo.extend(moved);
            }
        }
        drop(guard);
        Ok(())
    }
}

impl StorageEngine {
    pub fn log_record(&self, rec: &LogRecord) -> Result<()> {
        self.wal.append(rec)
    }

    fn append(&self, rec: &LogRecord) -> Result<()> {
        let frame = rec.encode();
        self.file.write_all(&frame)?;
        Ok(())
    }
}

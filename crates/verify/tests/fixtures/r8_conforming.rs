//! R8 fixture: the relation matches the declared table and `Prepared`
//! is entered via the forced record.

/// Transaction status (fixture subset).
#[derive(Clone, Copy)]
pub enum TxnStatus {
    /// Created.
    Initiated,
    /// Executing.
    Running,
    /// Undo walk in progress.
    Aborting,
    /// Terminal.
    Aborted,
    /// Durable but undecided (§14.2).
    Prepared,
}

/// WAL records (fixture subset).
pub enum LogRecord {
    /// The prepared group.
    Prepared {
        /// Members.
        tids: Vec<u64>,
    },
}

impl TxnStatus {
    /// The declared transition relation.
    pub fn can_transition_to(self, next: TxnStatus) -> bool {
        use TxnStatus::*;
        match (self, next) {
            (Initiated, Running) => true,
            (Running, Aborting) => true,
            (Aborting, Aborted) => true,
            _ => false,
        }
    }
}

/// A transaction slot.
pub struct Slot {
    /// Current status.
    pub status: TxnStatus,
}

/// Forces the record, then enters `Prepared` (§14.2).
pub fn mark_prepared(slot: &mut Slot, log: &mut Vec<LogRecord>) {
    log.push(LogRecord::Prepared { tids: Vec::new() });
    slot.status = TxnStatus::Prepared;
}

//! R5 fixture (conforming) — suspension is returned, not awaited: the
//! step hands back a `TxnStep::Wait*` so the scheduler can park the
//! transaction, and the flusher submission takes an acknowledgement
//! callback instead of blocking on the window sync. Blocking is fine on
//! un-annotated paths (the submitting thread may wait on the outcome).

impl Database {
    #[exec_step]
    pub(crate) fn exec_commit_step(&self, t: Tid) -> Result<TxnStep> {
        if !self.gate_open(t) {
            return Ok(TxnStep::WaitDep);
        }
        let rec = LogRecord::Commit { tids: vec![t] };
        self.engine
            .flusher()
            .submit_with_callback(rec, Box::new(|_| {}))?;
        Ok(TxnStep::WaitFlush)
    }

    // not annotated: the submitting thread is allowed to block
    pub fn outcome(&self, t: Tid) -> Result<bool> {
        let epoch = self.txns.epoch();
        self.txns.wait_event(epoch);
        self.status(t)
    }
}

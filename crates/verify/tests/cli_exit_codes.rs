//! The CLI's exit codes are part of its contract (CI gates on them):
//! `0` clean, `1` findings, `2` usage or I/O error. This test runs the
//! real binary against synthetic workspace roots.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asset-verify"))
}

fn mk_root(name: &str, lib_rs: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("asset-verify-exit-{}-{name}", std::process::id()));
    let src = root.join("crates/server/src");
    std::fs::create_dir_all(&src).expect("temp workspace dirs");
    std::fs::write(src.join("lib.rs"), lib_rs).expect("temp lib.rs");
    root
}

#[test]
fn exit_codes_are_pinned() {
    let clean = mk_root("clean", "pub fn status_of(v: u8) -> u8 {\n    v\n}\n");
    let bad = mk_root(
        "bad",
        "pub fn status_of(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    );

    // 0: clean workspace
    let s = bin().arg("--root").arg(&clean).status().expect("run");
    assert_eq!(s.code(), Some(0));

    // 1: findings (an R4 unwrap on a runtime path)
    let out = bin().arg("--root").arg(&bad).output().expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("R4 no_panics"));

    // 0 again: the same findings accepted via a saved baseline
    let base = bin()
        .arg("--root")
        .arg(&bad)
        .args(["--format", "baseline"])
        .output()
        .expect("run");
    assert_eq!(base.status.code(), Some(1), "baseline emit still reports");
    let bl = clean.join("accepted.baseline");
    std::fs::write(&bl, &base.stdout).expect("write baseline");
    let s = bin()
        .arg("--root")
        .arg(&bad)
        .arg("--baseline")
        .arg(&bl)
        .status()
        .expect("run");
    assert_eq!(
        s.code(),
        Some(0),
        "baseline subtraction gates only new findings"
    );

    // 2: usage error
    let s = bin().arg("--nonsense").status().expect("run");
    assert_eq!(s.code(), Some(2));

    // 2: unreadable baseline file
    let s = bin()
        .arg("--root")
        .arg(&clean)
        .args(["--baseline", "/nonexistent/accepted.baseline"])
        .status()
        .expect("run");
    assert_eq!(s.code(), Some(2));

    // the SARIF document carries the finding and the rule catalog
    let sarif = bin()
        .arg("--root")
        .arg(&bad)
        .args(["--format", "sarif"])
        .output()
        .expect("run");
    assert_eq!(sarif.status.code(), Some(1));
    let doc = String::from_utf8_lossy(&sarif.stdout);
    assert!(doc.contains("\"version\": \"2.1.0\""));
    assert!(doc.contains("\"ruleId\": \"R4\""));
    assert!(doc.contains("crates/server/src/lib.rs"));

    std::fs::remove_dir_all(&clean).ok();
    std::fs::remove_dir_all(&bad).ok();
}

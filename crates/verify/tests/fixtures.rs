//! Fixture-driven end-to-end tests.
//!
//! Each rule has one violating and one conforming fixture under
//! `tests/fixtures/`; the violating ones assert the exact rendered
//! diagnostics, so a wording or line-number regression in the analyzer is
//! caught here. The R1 pair reproduces the two real WAL bugs this
//! repository shipped before the fault-injection era (commit 2611af2):
//! `begin` set the slot status and `delegate` spliced undo entries before
//! the matching log record was appended.

use asset_verify::{Analysis, Workspace};

fn analyze(krate: &str, path: &str, src: &str) -> Analysis {
    Workspace::from_sources(vec![(krate.to_string(), path.to_string(), src.to_string())]).analyze()
}

fn rendered(a: &Analysis) -> Vec<String> {
    a.findings.iter().map(|f| f.to_string()).collect()
}

#[test]
fn r1_redetects_the_historical_begin_and_delegate_reorders() {
    let a = analyze(
        "core",
        "tests/fixtures/r1_violating.rs",
        include_str!("fixtures/r1_violating.rs"),
    );
    assert_eq!(
        rendered(&a),
        [
            "R1 wal: tests/fixtures/r1_violating.rs:14 in `begin` — mutates tracked state \
             (`slot.status = TxnStatus::Running`, line 14) before logging via `log_record` \
             (line 16) — the WAL record must land first",
            "R1 wal: tests/fixtures/r1_violating.rs:25 in `delegate` — mutates tracked state \
             (`mem::take(&mut slot.undo)`, line 25) before logging via `log_record` \
             (line 32) — the WAL record must land first",
        ]
    );
}

#[test]
fn r1_accepts_the_log_first_shape() {
    let a = analyze(
        "core",
        "tests/fixtures/r1_conforming.rs",
        include_str!("fixtures/r1_conforming.rs"),
    );
    assert_eq!(rendered(&a), [] as [&str; 0]);
}

#[test]
fn r2_detects_latching_under_a_shard_mutex() {
    let a = analyze(
        "storage",
        "tests/fixtures/r2_violating.rs",
        include_str!("fixtures/r2_violating.rs"),
    );
    assert_eq!(
        rendered(&a),
        [
            "R2 lock_order: tests/fixtures/r2_violating.rs:11 in `evict_clean` — calls \
             `take_if_dirty` which acquires storage-latch while holding storage-latch \
             (acquired line 11)",
            "R2 lock_order: tests/fixtures/r2_violating.rs:18 in `write_back` — acquires \
             storage-latch while already holding storage-latch (acquired line 16)",
        ]
    );
}

#[test]
fn r2_accepts_the_guard_dropping_shape() {
    let a = analyze(
        "storage",
        "tests/fixtures/r2_conforming.rs",
        include_str!("fixtures/r2_conforming.rs"),
    );
    assert_eq!(rendered(&a), [] as [&str; 0]);
}

#[test]
fn r3_detects_an_uncovered_durable_write() {
    let a = analyze(
        "storage",
        "tests/fixtures/r3_violating.rs",
        include_str!("fixtures/r3_violating.rs"),
    );
    assert_eq!(
        rendered(&a),
        [
            "R3 failpoint_coverage: tests/fixtures/r3_violating.rs:9 in `append_frame` — \
          durable write `.write_all()` is not dominated by a failpoint!/failpoint_sync! \
          evaluation or a failpoint-checker call"
        ]
    );
}

#[test]
fn r3_accepts_macro_and_checker_coverage() {
    let a = analyze(
        "storage",
        "tests/fixtures/r3_conforming.rs",
        include_str!("fixtures/r3_conforming.rs"),
    );
    assert_eq!(rendered(&a), [] as [&str; 0]);
}

#[test]
fn r4_detects_unwrap_and_panic_in_runtime_paths() {
    let a = analyze(
        "core",
        "tests/fixtures/r4_violating.rs",
        include_str!("fixtures/r4_violating.rs"),
    );
    assert_eq!(
        rendered(&a),
        [
            "R4 no_panics: tests/fixtures/r4_violating.rs:7 in `status_of` — .unwrap() in \
             runtime path",
            "R4 no_panics: tests/fixtures/r4_violating.rs:13 in `must_get` — panic! in \
             runtime path",
        ]
    );
}

#[test]
fn r4_accepts_test_code_and_audited_suppressions() {
    let a = analyze(
        "core",
        "tests/fixtures/r4_conforming.rs",
        include_str!("fixtures/r4_conforming.rs"),
    );
    assert_eq!(rendered(&a), [] as [&str; 0]);
    // the justified `.expect()` shows up in the audit trail, not as a finding
    assert_eq!(a.allows.len(), 1);
    assert_eq!(a.allows[0].rule, "no_panics");
    assert_eq!(a.allows[0].reason, "bootstrap runs before any I/O exists");
}

#[test]
fn r5_detects_blocking_calls_inside_executor_steps() {
    let a = analyze(
        "core",
        "tests/fixtures/r5_violating.rs",
        include_str!("fixtures/r5_violating.rs"),
    );
    assert_eq!(
        rendered(&a),
        [
            "R5 exec_step: tests/fixtures/r5_violating.rs:10 in `exec_commit_blocking` — \
             blocking call `wait_event` inside an executor step; return TxnStep::Wait* and \
             park instead",
            "R5 exec_step: tests/fixtures/r5_violating.rs:12 in `exec_commit_blocking` — \
             blocking call `submit_and_wait` inside an executor step; return TxnStep::Wait* \
             and park instead",
            "R5 exec_step: tests/fixtures/r5_violating.rs:18 in `exec_backoff` — blocking \
             call `sleep` inside an executor step; return TxnStep::Wait* and park instead",
        ]
    );
}

#[test]
fn r5_accepts_returned_suspension_and_unannotated_blocking_paths() {
    let a = analyze(
        "core",
        "tests/fixtures/r5_conforming.rs",
        include_str!("fixtures/r5_conforming.rs"),
    );
    assert_eq!(rendered(&a), [] as [&str; 0]);
}

fn analyze_with_spec(krate: &str, path: &str, src: &str, spec: &str) -> Analysis {
    Workspace::from_sources_with_spec(
        vec![(krate.to_string(), path.to_string(), src.to_string())],
        "DESIGN.md",
        spec,
    )
    .analyze()
}

#[test]
fn r6_detects_opcode_table_drift_in_all_four_directions() {
    let a = analyze_with_spec(
        "server",
        "tests/fixtures/r6_violating.rs",
        include_str!("fixtures/r6_violating.rs"),
        include_str!("fixtures/r6_spec.md"),
    );
    assert_eq!(
        rendered(&a),
        [
            "R6 spec_drift: DESIGN.md:5 in `opcode-table` — spec row `ABORT` = 0x14 has no \
             matching constant in server's `mod opcode`",
            "R6 spec_drift: tests/fixtures/r6_violating.rs:9 in `opcode` — constant `COMMIT` \
             = 0x16 disagrees with the DESIGN.md opcode table row at line 4 (spec says 0x13)",
            "R6 spec_drift: tests/fixtures/r6_violating.rs:11 in `opcode` — constant \
             `SHUTDOWN` = 0x7f has no row in the DESIGN.md opcode table",
            "R6 spec_drift: tests/fixtures/r6_violating.rs:15 in `dispatch` — dispatch has \
             no arm for spec opcode `ABORT` (0x14); add a match arm or an explicit reject",
        ]
    );
}

#[test]
fn r6_accepts_agreeing_constants_and_dispatch() {
    let a = analyze_with_spec(
        "server",
        "tests/fixtures/r6_conforming.rs",
        include_str!("fixtures/r6_conforming.rs"),
        include_str!("fixtures/r6_spec.md"),
    );
    assert_eq!(rendered(&a), [] as [&str; 0]);
}

#[test]
fn r7_detects_the_three_swallow_shapes() {
    let a = analyze(
        "server",
        "tests/fixtures/r7_violating.rs",
        include_str!("fixtures/r7_violating.rs"),
    );
    assert_eq!(
        rendered(&a),
        [
            "R7 status_flow: tests/fixtures/r7_violating.rs:26 in `drain_session` — \
             `let _ =` discards the result of `outcome_kind`, which can carry a \
             CommitAmbiguous outcome; consume it and surface the ambiguity (§13.4)",
            "R7 status_flow: tests/fixtures/r7_violating.rs:31 in `probe` — `.ok()` \
             swallows the error path of `outcome_kind`, which can carry a CommitAmbiguous \
             outcome (§13.4)",
            "R7 status_flow: tests/fixtures/r7_violating.rs:38 in `report` — empty \
             `Err(_)` arm swallows an error from `outcome_kind`, which can carry a \
             CommitAmbiguous outcome (§13.4)",
        ]
    );
}

#[test]
fn r7_accepts_consumed_and_surfaced_outcomes() {
    let a = analyze(
        "server",
        "tests/fixtures/r7_conforming.rs",
        include_str!("fixtures/r7_conforming.rs"),
    );
    assert_eq!(rendered(&a), [] as [&str; 0]);
}

#[test]
fn r8_detects_relation_drift_and_unforced_prepared_entry() {
    let a = analyze_with_spec(
        "common",
        "tests/fixtures/r8_violating.rs",
        include_str!("fixtures/r8_violating.rs"),
        include_str!("fixtures/r8_spec.md"),
    );
    assert_eq!(
        rendered(&a),
        [
            "R8 state_machine: DESIGN.md:4 in `transition-table` — declared transition \
             Running → Aborting is not allowed by `can_transition_to`",
            "R8 state_machine: DESIGN.md:5 in `transition-table` — declared transition \
             Aborting → Aborted is not allowed by `can_transition_to`",
            "R8 state_machine: tests/fixtures/r8_violating.rs:25 in `can_transition_to` — \
             transition Running → Aborted is allowed in code but absent from the declared \
             table (DESIGN.md §11)",
            "R8 state_machine: tests/fixtures/r8_violating.rs:39 in `mark_prepared` — \
             `status = TxnStatus::Prepared` without a forced `LogRecord::Prepared` earlier \
             in the function — the prepared state must be entered via a forced WAL record \
             (§14.2)",
        ]
    );
}

#[test]
fn r8_accepts_the_declared_relation_and_forced_prepared_entry() {
    let a = analyze_with_spec(
        "common",
        "tests/fixtures/r8_conforming.rs",
        include_str!("fixtures/r8_conforming.rs"),
        include_str!("fixtures/r8_spec.md"),
    );
    assert_eq!(rendered(&a), [] as [&str; 0]);
}

#[test]
fn meta_blessed_helper_must_declare_its_exemption() {
    let src = "impl LockTable {\n    pub fn release_all(&self, tid: Tid) -> Vec<Oid> {\n        Vec::new()\n    }\n}\n";
    let a = analyze("lock", "table.rs", src);
    assert_eq!(
        rendered(&a),
        [
            "R0 meta: table.rs:2 in `release_all` — `release_all` is a blessed multi-lock \
          helper; it must declare #[verify_allow(lock_order, reason = \"...\")]"
        ]
    );
}

#[test]
fn meta_reasonless_suppressions_are_flagged() {
    let src = "impl T {\n    pub fn f(&self) {\n        // verify: allow(no_panics)\n        self.g().unwrap();\n    }\n}\n";
    let a = analyze("core", "t.rs", src);
    assert_eq!(
        rendered(&a),
        [
            "R0 meta: t.rs:4 in `f` — suppression of `no_panics` via line directive has no \
          reason; add one"
        ]
    );
    assert_eq!(a.allows.len(), 1);
    assert!(a.allows[0].reason.is_empty());
}

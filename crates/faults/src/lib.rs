//! Deterministic fault injection for the ASSET workspace.
//!
//! The §4 protocols of the paper (before/after-image logging, undo on
//! abort, group commit under one forced record) are only correct if the
//! commit point is atomic and durable under *arbitrary* failures. Happy-path
//! tests cannot establish that; this crate provides the machinery to crash
//! the system at every interesting instant and let restart recovery prove
//! the invariants.
//!
//! ## Model
//!
//! A **failpoint** is a named site in the storage or transaction layer
//! (e.g. `log.append.write`). A [`FaultRegistry`] maps names to armed
//! policies: a [`Trigger`] deciding *when* the point fires (always, once,
//! on the nth hit, or with a seeded probability — fully deterministic for a
//! given seed) and a [`FaultAction`] deciding *what* happens:
//!
//! * [`FaultAction::Error`] — the operation reports an injected I/O error;
//! * [`FaultAction::Torn`] — a prefix of the bytes reaches the file, then
//!   the process "crashes" (models a torn write);
//! * [`FaultAction::ElideSync`] — the `sync_data` call is skipped while the
//!   caller is told it succeeded (models a device that lies about
//!   durability);
//! * [`FaultAction::Crash`] — process-local crash: the registry enters the
//!   *crashed* state (every later durable write fails, so nothing after
//!   this instant reaches disk) and the site unwinds with a [`CrashPoint`]
//!   panic that the test harness catches.
//!
//! The registry is **instance-scoped** — each `Config`/`Database` carries
//! its own `Arc<FaultRegistry>` — so parallel tests never interfere; there
//! is no process-global state.
//!
//! ## Cost
//!
//! Call sites are wrapped in the [`failpoint!`] / [`failpoint_sync!`]
//! macros, which expand to **nothing** (an empty block) unless the
//! consuming crate enables its `faults` feature: production hot paths carry
//! zero branches. With the feature on, an unarmed registry costs one
//! relaxed atomic load per site.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an armed failpoint does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with an injected I/O error; nothing is written.
    Error,
    /// A prefix of the buffer (`keep_per_mille`/1000 of its bytes) reaches
    /// the file, then the process crashes — a torn write. At sites that do
    /// not write a buffer this degrades to [`FaultAction::Crash`].
    Torn {
        /// How much of the buffer lands, in thousandths (500 = half).
        keep_per_mille: u16,
    },
    /// Skip the `sync_data` call but report success to the caller. At
    /// non-sync sites this degrades to [`FaultAction::Error`].
    ElideSync,
    /// Process-local crash: mark the registry crashed (all later durable
    /// writes fail) and unwind with a [`CrashPoint`] panic.
    Crash,
}

/// When an armed failpoint fires, as a function of its evaluation count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every evaluation.
    Always,
    /// Fire on the first evaluation only.
    Once,
    /// Fire on the `n`th evaluation (1-based) only.
    Nth(u64),
    /// Fire each evaluation with probability `per_mille`/1000, drawn from a
    /// [splitmix64](https://prng.di.unimi.it/splitmix64.c) stream seeded
    /// with `seed` — the same seed always yields the same firing script.
    Prob {
        /// Firing probability in thousandths.
        per_mille: u16,
        /// RNG seed; identical seeds give identical schedules.
        seed: u64,
    },
}

/// The panic payload of a [`FaultAction::Crash`] — the harness catches the
/// unwind and identifies it by downcast.
#[derive(Clone, Copy, Debug)]
pub struct CrashPoint(
    /// The failpoint that crashed.
    pub &'static str,
);

/// Build the injected I/O error reported by [`FaultAction::Error`] sites.
pub fn injected(name: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at failpoint `{name}`"))
}

struct Point {
    trigger: Trigger,
    action: FaultAction,
    hits: u64,
    fired: u64,
    rng: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A registry of named failpoints. One per `Config`/`Database`; cheap to
/// share via `Arc`. A default registry is fully disarmed.
#[derive(Default)]
pub struct FaultRegistry {
    /// Any point armed? One relaxed load gates the whole check.
    active: AtomicBool,
    /// Crashed state: every later [`check`](Self::check) reports
    /// [`FaultAction::Error`], so no durable write can happen between the
    /// crash instant and the harness-driven restart.
    crashed: AtomicBool,
    points: Mutex<HashMap<&'static str, Point>>,
}

impl std::fmt::Debug for FaultRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultRegistry")
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FaultRegistry {
    /// A disarmed registry.
    pub fn new() -> FaultRegistry {
        FaultRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<&'static str, Point>> {
        self.points.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm `name`: when evaluation satisfies `trigger`, the site performs
    /// `action`. Re-arming replaces the previous policy and resets the
    /// point's counters.
    pub fn arm(&self, name: &'static str, trigger: Trigger, action: FaultAction) {
        let rng = match trigger {
            Trigger::Prob { seed, .. } => seed,
            _ => 0,
        };
        self.lock().insert(
            name,
            Point {
                trigger,
                action,
                hits: 0,
                fired: 0,
                rng,
            },
        );
        self.active.store(true, Ordering::Release);
    }

    /// Disarm `name` (hit/fire counts are discarded with it).
    pub fn disarm(&self, name: &str) {
        let mut pts = self.lock();
        pts.remove(name);
        if pts.is_empty() {
            self.active.store(false, Ordering::Release);
        }
    }

    /// Disarm every point and clear the crashed state — the "restart the
    /// process" step of a crash-matrix scenario.
    pub fn reset(&self) {
        self.lock().clear();
        self.active.store(false, Ordering::Release);
        self.crashed.store(false, Ordering::Release);
    }

    /// Evaluate the failpoint `name`. Returns the action to perform, or
    /// `None` to proceed normally. Once the registry is crashed, every
    /// evaluation returns [`FaultAction::Error`] so that no durable write
    /// can slip in after the simulated crash instant.
    pub fn check(&self, name: &'static str) -> Option<FaultAction> {
        if self.crashed.load(Ordering::Acquire) {
            return Some(FaultAction::Error);
        }
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        let mut pts = self.lock();
        let p = pts.get_mut(name)?;
        p.hits += 1;
        let fire = match p.trigger {
            Trigger::Always => true,
            Trigger::Once => p.fired == 0,
            Trigger::Nth(n) => p.hits == n,
            Trigger::Prob { per_mille, .. } => (splitmix64(&mut p.rng) % 1000) < per_mille as u64,
        };
        if fire {
            p.fired += 1;
            Some(p.action)
        } else {
            None
        }
    }

    /// Enter the crashed state and unwind with a [`CrashPoint`] panic. Call
    /// only from a site whose [`check`](Self::check) returned
    /// [`FaultAction::Crash`] or [`FaultAction::Torn`].
    pub fn crash_now(&self, name: &'static str) -> ! {
        self.crashed.store(true, Ordering::Release);
        std::panic::panic_any(CrashPoint(name));
    }

    /// Has a [`FaultAction::Crash`]/[`FaultAction::Torn`] fired since the
    /// last [`reset`](Self::reset)?
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// How many times `name` has been evaluated since it was armed.
    pub fn hits(&self, name: &str) -> u64 {
        self.lock().get(name).map_or(0, |p| p.hits)
    }

    /// How many times `name` has fired since it was armed.
    pub fn fired(&self, name: &str) -> u64 {
        self.lock().get(name).map_or(0, |p| p.fired)
    }

    /// Total fires across all armed points since the last reset/arm.
    pub fn total_fired(&self) -> u64 {
        self.lock().values().map(|p| p.fired).sum()
    }

    /// Realize `action` at a site that writes no byte buffer and performs
    /// no sync: [`FaultAction::Error`] and [`FaultAction::ElideSync`]
    /// degrade to the injected error (returned for the caller to wrap);
    /// [`FaultAction::Crash`] and [`FaultAction::Torn`] crash.
    pub fn realize_plain(&self, name: &'static str, action: FaultAction) -> std::io::Error {
        match action {
            FaultAction::Error | FaultAction::ElideSync => injected(name),
            FaultAction::Crash | FaultAction::Torn { .. } => self.crash_now(name),
        }
    }
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for [`CrashPoint`] unwinds — intentional
/// crashes in a matrix run would otherwise flood test output — while
/// delegating every other panic to the previous hook.
pub fn silence_crash_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashPoint>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Evaluate a failpoint and run `$body` with the fired [`FaultAction`]
/// bound to `$act`. Expands to an **empty block** unless the *consuming*
/// crate enables its `faults` feature — disabled builds carry no branch,
/// no registry field access, nothing.
///
/// `$body` may `return` from the enclosing function (the usual way to
/// realize [`FaultAction::Error`]).
#[macro_export]
macro_rules! failpoint {
    ($reg:expr, $name:expr, |$act:ident| $body:block) => {
        #[cfg(feature = "faults")]
        {
            if let ::core::option::Option::Some($act) = $crate::FaultRegistry::check($reg, $name) {
                $body
            }
        }
    };
}

/// Evaluate a failpoint guarding a `sync_data` call; yields `true` when the
/// sync should be **elided** (the armed action was
/// [`FaultAction::ElideSync`]). [`FaultAction::Error`] makes the enclosing
/// function return the injected error; crash actions crash. Yields `false`
/// — sync normally — when disarmed or when the consuming crate's `faults`
/// feature is off.
#[macro_export]
macro_rules! failpoint_sync {
    ($reg:expr, $name:expr) => {{
        #[cfg(feature = "faults")]
        let __elide = match $crate::FaultRegistry::check($reg, $name) {
            ::core::option::Option::Some($crate::FaultAction::ElideSync) => true,
            ::core::option::Option::Some($crate::FaultAction::Error) => {
                return ::core::result::Result::Err($crate::injected($name).into());
            }
            ::core::option::Option::Some(_) => $crate::FaultRegistry::crash_now($reg, $name),
            ::core::option::Option::None => false,
        };
        #[cfg(not(feature = "faults"))]
        let __elide = false;
        __elide
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: &str = "test.point";

    #[test]
    fn disarmed_registry_never_fires() {
        let r = FaultRegistry::new();
        assert_eq!(r.check(P), None);
        assert_eq!(r.hits(P), 0);
        assert!(!r.is_crashed());
    }

    #[test]
    fn once_fires_exactly_once() {
        let r = FaultRegistry::new();
        r.arm(P, Trigger::Once, FaultAction::Error);
        assert_eq!(r.check(P), Some(FaultAction::Error));
        assert_eq!(r.check(P), None);
        assert_eq!(r.check(P), None);
        assert_eq!(r.hits(P), 3);
        assert_eq!(r.fired(P), 1);
    }

    #[test]
    fn nth_fires_on_exactly_the_nth_hit() {
        let r = FaultRegistry::new();
        r.arm(P, Trigger::Nth(3), FaultAction::Crash);
        assert_eq!(r.check(P), None);
        assert_eq!(r.check(P), None);
        assert_eq!(r.check(P), Some(FaultAction::Crash));
        assert_eq!(r.check(P), None);
    }

    #[test]
    fn always_fires_every_time() {
        let r = FaultRegistry::new();
        r.arm(P, Trigger::Always, FaultAction::ElideSync);
        for _ in 0..5 {
            assert_eq!(r.check(P), Some(FaultAction::ElideSync));
        }
        assert_eq!(r.fired(P), 5);
    }

    #[test]
    fn prob_is_deterministic_for_a_seed() {
        let script = |seed: u64| -> Vec<bool> {
            let r = FaultRegistry::new();
            r.arm(
                P,
                Trigger::Prob {
                    per_mille: 300,
                    seed,
                },
                FaultAction::Error,
            );
            (0..64).map(|_| r.check(P).is_some()).collect()
        };
        assert_eq!(script(42), script(42), "same seed, same schedule");
        assert_ne!(script(42), script(43), "different seed, different schedule");
        let fires = script(42).iter().filter(|b| **b).count();
        assert!((5..35).contains(&fires), "~30% of 64, got {fires}");
    }

    #[test]
    fn crashed_registry_fails_every_site() {
        let r = FaultRegistry::new();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.crash_now(P);
        }));
        let payload = unwound.expect_err("crash_now unwinds");
        assert_eq!(payload.downcast_ref::<CrashPoint>().unwrap().0, P);
        assert!(r.is_crashed());
        assert_eq!(r.check("some.other.point"), Some(FaultAction::Error));
        r.reset();
        assert!(!r.is_crashed());
        assert_eq!(r.check("some.other.point"), None);
    }

    #[test]
    fn disarm_and_reset_clear_state() {
        let r = FaultRegistry::new();
        r.arm(P, Trigger::Always, FaultAction::Error);
        r.disarm(P);
        assert_eq!(r.check(P), None);
        r.arm(P, Trigger::Always, FaultAction::Error);
        r.reset();
        assert_eq!(r.check(P), None);
        assert_eq!(r.total_fired(), 0);
    }

    #[test]
    fn rearming_resets_counters() {
        let r = FaultRegistry::new();
        r.arm(P, Trigger::Once, FaultAction::Error);
        assert!(r.check(P).is_some());
        r.arm(P, Trigger::Once, FaultAction::Crash);
        assert_eq!(r.hits(P), 0);
        assert_eq!(r.check(P), Some(FaultAction::Crash));
    }

    #[test]
    fn injected_error_names_the_point() {
        let e = injected("log.append.write");
        assert!(e.to_string().contains("log.append.write"));
    }
}

//! # asset-trace
//!
//! Causal span tracing and export for ASSET. The `asset-obs` layer
//! captures flat events through a drop-don't-block ring; this crate turns
//! a drained trace into the *causal* picture the paper's extended
//! transaction models imply, and exports it in formats existing tools
//! load:
//!
//! * [`span`] — reconstruct a [`CausalGraph`]: one track per transaction
//!   with lock-wait / commit-gate / rollback / log-flush sub-spans, plus
//!   typed causal edges for `delegate`, `permit` (and the transitive
//!   `permits_across` chains that actually admit a request),
//!   `form_dependency` CD/AD/GC, and group-commit fan-out.
//! * [`chrome`] — Chrome trace-event JSON (Perfetto /
//!   `chrome://tracing`): one named track per transaction, flow arrows
//!   for every causal edge.
//! * [`prom`] — Prometheus text exposition of the full
//!   [`MetricsSnapshot`](asset_obs::MetricsSnapshot) plus per-stripe lock
//!   stats, and a tiny `std`-only HTTP endpoint to scrape it from.
//! * [`dot`] — Graphviz DOT of the waits-for graph and the transaction
//!   dependency graph, as a point-in-time pair from
//!   [`Introspection`](asset_core::Introspection).
//! * [`top`] — frame rendering for the `asset-top` live monitor binary.
//! * [`json`] — a dependency-free JSON parser used to validate exports in
//!   tests and CI smoke jobs.
//!
//! ## Quick start
//!
//! ```
//! use asset_core::Database;
//! use asset_trace::{chrome, span::CausalGraph};
//!
//! let db = Database::in_memory();
//! db.obs().enable_tracing(0); // default ring capacity
//! let account = db.new_oid();
//! db.run(move |ctx| ctx.write(account, vec![42])).unwrap();
//!
//! let graph = CausalGraph::from_events(&db.obs().trace());
//! assert_eq!(graph.tracks.len(), 1);
//! let json = chrome::render(&graph); // load this in ui.perfetto.dev
//! assert!(json.contains("traceEvents"));
//! ```
//!
//! Everything here runs **off** the transaction hot paths: exporters read
//! already-captured snapshots and drained traces; the only live reads are
//! the same lock-free snapshot calls the rest of the system uses (§7 of
//! DESIGN.md).

#![warn(missing_docs)]

pub mod chrome;
pub mod dot;
pub mod json;
pub mod prom;
pub mod span;
pub mod top;

pub use span::{
    CausalEdge, CausalGraph, CommitGroup, EdgeKind, FlushFlow, Outcome, SpanKind, SubSpan, Track,
};

//! A minimal, dependency-free JSON parser.
//!
//! Exists so tests, the CI smoke job and `asset-top --check` can validate
//! that the Chrome trace export is well-formed JSON without pulling a
//! serde stack into the workspace. It is a straightforward
//! recursive-descent parser: strict on structure (trailing garbage is an
//! error), depth-limited, and entirely `Result`-based — no panics.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted before bailing out (guards the parser's
/// recursion against adversarial input).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order normalized).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek_byte(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek_byte() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &'static [u8], v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek_byte() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek_byte() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(key, v);
            self.skip_ws();
            match self.next_byte() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(m)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek_byte() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.next_byte() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(v)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.next_byte() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next_byte() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a leading surrogate must be
                        // followed by \uXXXX with a trailing surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.next_byte() != Some(b'\\') || self.next_byte() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 from the source slice.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        if width == 0 || end > self.bytes.len() {
                            return Err(self.err("invalid UTF-8 in string"));
                        }
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => {
                                out.push_str(s);
                                self.pos = end;
                            }
                            Err(_) => return Err(self.err("invalid UTF-8 in string")),
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.next_byte() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek_byte() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek_byte() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek_byte(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek_byte(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("b").and_then(|b| b.as_str()), Some("x\ny"));
        let a = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_structure() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn resolves_unicode_escapes_and_surrogates() {
        let v = parse(r#""é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é 😀"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn passes_through_utf8() {
        let v = parse(r#""naïve — ütf""#).unwrap();
        assert_eq!(v.as_str(), Some("naïve — ütf"));
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}

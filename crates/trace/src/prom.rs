//! Prometheus text-format exposition, hand-rolled over `std`.
//!
//! [`render`] turns a [`MetricsSnapshot`] (plus optional per-stripe lock
//! stats) into the [text exposition format] Prometheus scrapes; counters
//! become `asset_<name>_total`, histograms become the conventional
//! `_bucket{le=...}` / `_sum` / `_count` triple with **cumulative** bucket
//! counts, and stripe stats become `{stripe="i"}`-labeled series.
//!
//! [`PromServer`] is a deliberately tiny HTTP/1.1 responder on a
//! `std::net::TcpListener`: every request — whatever the path — gets a
//! `200 text/plain` scrape body produced by a caller-supplied closure.
//! It exists so examples, `asset-top --serve` and tests can expose live
//! metrics without an HTTP dependency; it is not a general web server.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/
//!
//! The §7 observability rule applies: nothing here runs on a transaction
//! hot path. Rendering reads an already-captured snapshot; the server
//! thread only ever touches `Obs` through the lock-free snapshot call the
//! closure performs.

use asset_lock::StripeStats;
use asset_obs::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Append one histogram in exposition format (`_bucket{le=...}` /
/// `_sum` / `_count`, cumulative buckets) under `name`. Public so other
/// crates (the server's `--serve-metrics` endpoint, the coordinator)
/// can add their own families next to a [`render`]ed snapshot.
pub fn render_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    // Prometheus buckets are cumulative and each carries its upper bound.
    let mut cum = 0u64;
    for (i, c) in h.buckets.iter().enumerate() {
        cum += c;
        match h.boundaries.get(i) {
            Some(b) => {
                let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cum}");
            }
            None => {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            }
        }
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render a snapshot (and optional per-stripe lock-table stats) in the
/// Prometheus text exposition format.
///
/// Counter totals in the output are exactly the totals in `snap` — the
/// acceptance test for this crate scrapes a live endpoint and diffs it
/// against `metrics_snapshot()`.
pub fn render(snap: &MetricsSnapshot, stripes: &[StripeStats]) -> String {
    let mut out = String::with_capacity(8192);

    snap.counters.for_each(|name, value| {
        let _ = writeln!(
            out,
            "# HELP asset_{name}_total Monotonic ASSET counter `{name}`."
        );
        let _ = writeln!(out, "# TYPE asset_{name}_total counter");
        let _ = writeln!(out, "asset_{name}_total {value}");
    });

    let _ = writeln!(
        out,
        "# HELP asset_events_dropped_total Trace events dropped by the ring recorder."
    );
    let _ = writeln!(out, "# TYPE asset_events_dropped_total counter");
    let _ = writeln!(out, "asset_events_dropped_total {}", snap.events_dropped);

    let _ = writeln!(
        out,
        "# HELP asset_tracing_enabled Whether the event recorder is on (0/1)."
    );
    let _ = writeln!(out, "# TYPE asset_tracing_enabled gauge");
    let _ = writeln!(
        out,
        "asset_tracing_enabled {}",
        u8::from(snap.tracing_enabled)
    );

    for (name, h) in snap.histograms() {
        let full = format!("asset_{name}");
        render_histogram(&mut out, &full, "ASSET latency/size distribution.", h);
    }

    if !stripes.is_empty() {
        for (field, help) in [
            ("grants", "Locks granted on the stripe."),
            ("blocks", "Block attempts on the stripe."),
            (
                "suspensions",
                "Permit-driven lock suspensions on the stripe.",
            ),
            ("deadlocks", "Deadlock victims whose final wait was here."),
            ("timeouts", "Lock-wait timeouts on the stripe."),
            ("waits", "Requests that blocked at least once."),
            ("wait_ns_total", "Total nanoseconds blocked on the stripe."),
            ("wait_ns_max", "Longest single wait on the stripe (ns)."),
            ("queue_peak", "Deepest pending queue seen on the stripe."),
        ] {
            let _ = writeln!(out, "# HELP asset_stripe_{field} {help}");
            let _ = writeln!(out, "# TYPE asset_stripe_{field} gauge");
            for s in stripes {
                let v = match field {
                    "grants" => s.grants,
                    "blocks" => s.blocks,
                    "suspensions" => s.suspensions,
                    "deadlocks" => s.deadlocks,
                    "timeouts" => s.timeouts,
                    "waits" => s.waits,
                    "wait_ns_total" => s.wait_ns_total,
                    "wait_ns_max" => s.wait_ns_max,
                    _ => s.queue_peak,
                };
                let _ = writeln!(out, "asset_stripe_{field}{{stripe=\"{}\"}} {v}", s.stripe);
            }
        }
    }

    out
}

/// [`render`] plus node-attributed fleet series (DESIGN.md §7.2): an
/// `asset_events_dropped{node="..."}` gauge so dropped trace events stay
/// attributable when several exporters are aggregated, and an
/// `asset_node_up{node="..."} 1` liveness marker per scrape.
pub fn render_node(snap: &MetricsSnapshot, stripes: &[StripeStats], node: u32) -> String {
    let mut out = render(snap, stripes);
    let _ = writeln!(
        out,
        "# HELP asset_events_dropped Trace events dropped by this node's ring recorder."
    );
    let _ = writeln!(out, "# TYPE asset_events_dropped gauge");
    let _ = writeln!(
        out,
        "asset_events_dropped{{node=\"{node}\"}} {}",
        snap.events_dropped
    );
    let _ = writeln!(out, "# HELP asset_node_up This node answered the scrape.");
    let _ = writeln!(out, "# TYPE asset_node_up gauge");
    let _ = writeln!(out, "asset_node_up{{node=\"{node}\"}} 1");
    out
}

/// A tiny single-threaded HTTP responder serving Prometheus scrapes.
///
/// Every incoming request receives `200 OK` with the body produced by the
/// source closure at that moment, so each scrape sees fresh totals.
/// Dropping the server (or calling [`PromServer::shutdown`]) stops the
/// accept loop and joins the thread.
pub struct PromServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl PromServer {
    /// Bind `addr` (use port 0 for an ephemeral port — see
    /// [`PromServer::addr`]) and serve scrapes from `source` on a
    /// background thread.
    pub fn spawn<F>(addr: &str, source: F) -> std::io::Result<PromServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("asset-prom".into())
            .spawn(move || serve(listener, &stop2, source))?;
        Ok(PromServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread (idempotent).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // accept() has no timeout; a throwaway connection unblocks it so
        // the thread can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PromServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve<F: Fn() -> String>(listener: TcpListener, stop: &AtomicBool, source: F) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // A failed accept or a misbehaving client never takes the
        // exporter down; just move to the next connection.
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        // Drain (up to one buffer of) the request; we answer every path
        // identically so the content is irrelevant.
        let mut buf = [0u8; 2048];
        let _ = stream.read(&mut buf);
        let body = source();
        let header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let _ = stream.write_all(header.as_bytes());
        let _ = stream.write_all(body.as_bytes());
        let _ = stream.flush();
    }
}

/// Fetch one scrape from a [`PromServer`] (or any HTTP endpoint) and
/// return just the body. Test/tooling helper — a two-line HTTP client.
pub fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

/// Pull a single sample value out of a rendered scrape body by exact
/// series name (e.g. `asset_commits_total`). Test/tooling helper.
pub fn sample(body: &str, series: &str) -> Option<f64> {
    body.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (name, value) = l.split_once(' ')?;
        if name == series {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_obs::{bump, Obs};

    #[test]
    fn render_emits_counters_and_cumulative_buckets() {
        let obs = Obs::new();
        bump(&obs.counters.txn_committed);
        bump(&obs.counters.txn_committed);
        obs.lock_wait_ns.record(500);
        obs.lock_wait_ns.record(2_000);
        let body = render(&obs.snapshot(), &[]);
        assert_eq!(sample(&body, "asset_txn_committed_total"), Some(2.0));
        // Cumulative: the 1000-bound bucket holds the 500ns hit, every
        // later bucket (and +Inf) includes it too.
        let inf = body
            .lines()
            .find(|l| l.starts_with("asset_lock_wait_ns_bucket{le=\"+Inf\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<u64>().ok());
        assert_eq!(inf, Some(2));
        assert!(body.contains("asset_lock_wait_ns_sum 2500"));
        assert!(body.contains("asset_lock_wait_ns_count 2"));
        assert!(body.contains("asset_tracing_enabled 0"));
    }

    #[test]
    fn render_labels_stripe_series() {
        let obs = Obs::new();
        let stripes = vec![StripeStats {
            stripe: 3,
            grants: 7,
            blocks: 1,
            suspensions: 0,
            deadlocks: 0,
            timeouts: 0,
            waits: 1,
            wait_ns_total: 9,
            wait_ns_max: 9,
            queue_peak: 2,
        }];
        let body = render(&obs.snapshot(), &stripes);
        assert_eq!(
            sample(&body, "asset_stripe_grants{stripe=\"3\"}"),
            Some(7.0)
        );
        assert_eq!(
            sample(&body, "asset_stripe_queue_peak{stripe=\"3\"}"),
            Some(2.0)
        );
    }

    #[test]
    fn render_node_labels_dropped_events_by_node() {
        let obs = Obs::new();
        let mut snap = obs.snapshot();
        snap.events_dropped = 5;
        let body = render_node(&snap, &[], 3);
        assert_eq!(sample(&body, "asset_events_dropped{node=\"3\"}"), Some(5.0));
        assert_eq!(sample(&body, "asset_node_up{node=\"3\"}"), Some(1.0));
        // the fleet-agnostic series are still present
        assert_eq!(sample(&body, "asset_events_dropped_total"), Some(5.0));
    }

    #[test]
    fn server_serves_scrapes_until_shutdown() {
        let obs = std::sync::Arc::new(Obs::new());
        bump(&obs.counters.txn_begun);
        let src = std::sync::Arc::clone(&obs);
        let mut server =
            PromServer::spawn("127.0.0.1:0", move || render(&src.snapshot(), &[])).unwrap();
        let addr = server.addr();
        let body = scrape(addr).unwrap();
        assert_eq!(sample(&body, "asset_txn_begun_total"), Some(1.0));
        // Counters move between scrapes — each request renders fresh.
        bump(&obs.counters.txn_begun);
        let body2 = scrape(addr).unwrap();
        assert_eq!(sample(&body2, "asset_txn_begun_total"), Some(2.0));
        server.shutdown();
        server.shutdown(); // idempotent
    }
}

//! `asset-top` — a `top`-style live monitor for an ASSET database.
//!
//! The repository has no long-running server process, so the binary
//! drives a small self-contained contention workload (transfers over a
//! shared pool of objects, with delegation, permits and a saga mixed in)
//! against an in-memory [`Database`] with tracing enabled, and redraws
//! the [`asset_trace::top`] dashboard on an interval.
//!
//! ```text
//! asset-top [--frames N] [--interval-ms MS] [--once] [--serve ADDR]
//!           [--nodes A,B,...]
//! ```
//!
//! * `--frames N` — stop after `N` redraws (default 20).
//! * `--interval-ms MS` — redraw period (default 500).
//! * `--once` — render a single frame without ANSI cursor control and
//!   exit (what the CI smoke job runs). With `--nodes`, a failed
//!   scrape exits non-zero instead of rendering an empty frame.
//! * `--serve ADDR` — additionally expose the Prometheus endpoint on
//!   `ADDR` (e.g. `127.0.0.1:9187`) while running.
//! * `--nodes A,B,...` — fleet mode: instead of driving a local
//!   workload, scrape each listed Prometheus endpoint
//!   (`asset-server --serve-metrics`) every frame and render the
//!   fleet dashboard ([`asset_trace::top::render_fleet_frame`]).

use asset_core::{Database, DepType, ObSet, OpSet};
use asset_trace::{prom, top};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Opts {
    frames: u64,
    interval: Duration,
    once: bool,
    serve: Option<String>,
    nodes: Vec<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        frames: 20,
        interval: Duration::from_millis(500),
        once: false,
        serve: None,
        nodes: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--frames" => {
                let v = args.next().ok_or("--frames needs a value")?;
                opts.frames = v.parse().map_err(|_| "--frames: not a number")?;
            }
            "--interval-ms" => {
                let v = args.next().ok_or("--interval-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| "--interval-ms: not a number")?;
                opts.interval = Duration::from_millis(ms);
            }
            "--once" => opts.once = true,
            "--serve" => {
                opts.serve = Some(args.next().ok_or("--serve needs an address")?);
            }
            "--nodes" => {
                let v = args.next().ok_or("--nodes needs a,b,... addresses")?;
                opts.nodes = v
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if opts.nodes.is_empty() {
                    return Err("--nodes: no addresses given".to_string());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: asset-top [--frames N] [--interval-ms MS] [--once] [--serve ADDR] \
                     [--nodes A,B,...]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(opts)
}

/// Scrape every node once; a failed scrape becomes a `DOWN` row.
fn scrape_fleet(nodes: &[String]) -> (Vec<top::NodeVitals>, usize) {
    let mut rows = Vec::with_capacity(nodes.len());
    let mut failures = 0;
    for addr in nodes {
        let body = addr.parse().ok().and_then(|sock| prom::scrape(sock).ok());
        match body {
            Some(body) => rows.push(top::NodeVitals::from_scrape(addr, &body)),
            None => {
                failures += 1;
                rows.push(top::NodeVitals::down(addr));
            }
        }
    }
    (rows, failures)
}

/// Fleet mode: scrape + render per frame. Returns the process exit
/// code — in `--once` mode a failed scrape is an error, not an empty
/// frame.
fn run_fleet(opts: &Opts) -> i32 {
    if opts.once {
        let (rows, failures) = scrape_fleet(&opts.nodes);
        print!("{}", top::render_fleet_frame(&rows));
        if failures > 0 {
            eprintln!(
                "asset-top: {failures} of {} scrape(s) failed",
                opts.nodes.len()
            );
            return 1;
        }
        return 0;
    }
    for _ in 0..opts.frames {
        std::thread::sleep(opts.interval);
        let (rows, _) = scrape_fleet(&opts.nodes);
        print!("\x1b[2J\x1b[H{}", top::render_fleet_frame(&rows));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    0
}

/// One delegation + permit handoff over `o`: t1 writes, permits t2,
/// delegates its locks and undo to t2, then both commit.
fn handoff(db: &Database, o: asset_core::Oid, seed: u64) -> asset_core::Result<()> {
    let t1 = db.initiate(move |ctx| ctx.write(o, vec![(seed % 251) as u8]))?;
    db.begin(t1)?;
    if !db.wait(t1)? {
        return Ok(()); // t1 aborted; nothing to hand off
    }
    let t2 = db.initiate(|_| Ok(()))?;
    db.begin(t2)?;
    let _ = db.wait(t2)?;
    db.permit(t1, Some(t2), ObSet::one(o), OpSet::ALL)?;
    db.delegate(t1, t2, None)?;
    db.commit(t1)?;
    db.commit(t2)?;
    Ok(())
}

/// A CD-linked step pair (minimal saga shape): s2 may commit only if s1
/// does.
fn cd_pair(db: &Database, a: asset_core::Oid, b: asset_core::Oid) -> asset_core::Result<()> {
    let s1 = db.initiate(move |ctx| ctx.write(a, b"s1".to_vec()))?;
    let s2 = db.initiate(move |ctx| ctx.write(b, b"s2".to_vec()))?;
    db.form_dependency(DepType::CD, s1, s2)?;
    db.begin(s1)?;
    db.begin(s2)?;
    let _ = db.wait(s1)?;
    let _ = db.wait(s2)?;
    db.commit(s1)?;
    db.commit(s2)?;
    Ok(())
}

/// Keep the database busy so the dashboard has something to show:
/// transfer pairs contending over a shared pool, a periodic
/// delegation + permit handoff, and CD-linked step pairs (a minimal
/// saga shape).
fn spawn_workload(db: Database, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let pool: Vec<_> = (0..16).map(|_| db.new_oid()).collect();
        for o in &pool {
            let o = *o;
            let _ = db.run(move |ctx| ctx.write(o, vec![0, 100]));
        }
        let mut round = 0u64;
        while !stop.load(Ordering::Relaxed) {
            round += 1;
            let a = pool[(round as usize) % pool.len()];
            let b = pool[(round as usize * 7 + 3) % pool.len()];
            let _ = db.run(move |ctx| {
                let _ = ctx.read(a)?;
                ctx.write(b, vec![(round % 251) as u8])?;
                Ok(())
            });
            if round.is_multiple_of(8) {
                let o = pool[(round as usize * 3) % pool.len()];
                let _ = handoff(&db, o, round);
            }
            if round.is_multiple_of(13) {
                let _ = cd_pair(&db, a, b);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    })
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    if !opts.nodes.is_empty() {
        std::process::exit(run_fleet(&opts));
    }

    let db = Database::in_memory();
    db.obs().enable_tracing(0);

    let stop = Arc::new(AtomicBool::new(false));
    let worker = spawn_workload(db.clone(), Arc::clone(&stop));

    let mut prom_server = None;
    if let Some(addr) = &opts.serve {
        let src = db.clone();
        match prom::PromServer::spawn(addr, move || {
            prom::render(&src.metrics_snapshot(), &src.locks().stripe_stats())
        }) {
            Ok(server) => {
                eprintln!(
                    "serving Prometheus metrics on http://{}/metrics",
                    server.addr()
                );
                prom_server = Some(server);
            }
            Err(e) => {
                eprintln!("failed to bind {addr}: {e}");
                stop.store(true, Ordering::Relaxed);
                let _ = worker.join();
                std::process::exit(1);
            }
        }
    }

    if opts.once {
        // One warm-up beat so the frame isn't empty.
        std::thread::sleep(Duration::from_millis(100));
        print!(
            "{}",
            top::render_frame(&db.introspect(), &db.metrics_snapshot())
        );
    } else {
        for _ in 0..opts.frames {
            std::thread::sleep(opts.interval);
            // Clear screen + home, then the frame.
            print!(
                "\x1b[2J\x1b[H{}",
                top::render_frame(&db.introspect(), &db.metrics_snapshot())
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
    }

    stop.store(true, Ordering::Relaxed);
    let _ = worker.join();
    drop(prom_server);
}

//! Graphviz DOT export of the two graphs ASSET maintains at runtime:
//! the lock manager's **waits-for graph** (deadlock structure, §4.2) and
//! the **transaction dependency graph** (CD/AD/GC edges from
//! `form_dependency`, §4). Exported together from one
//! [`Introspection`] they give a point-in-time
//! picture of who is stuck behind whom and which commit/abort outcomes
//! are coupled.
//!
//! Render with any Graphviz: `dot -Tsvg waits.dot -o waits.svg`.

use asset_common::{DepType, Tid};
use asset_core::Introspection;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

fn sorted_waits(waits: &HashMap<Tid, HashSet<Tid>>) -> Vec<(Tid, Vec<Tid>)> {
    let mut rows: Vec<(Tid, Vec<Tid>)> = waits
        .iter()
        .map(|(w, hs)| {
            let mut holders: Vec<Tid> = hs.iter().copied().collect();
            holders.sort_unstable();
            (*w, holders)
        })
        .collect();
    rows.sort_unstable_by_key(|(w, _)| *w);
    rows
}

/// The waits-for graph as DOT: an edge `ti -> tj` means `ti` is blocked
/// waiting for a lock `tj` holds. Cycles in this picture are exactly the
/// deadlocks the lock manager's sweep hunts.
pub fn waits_for_dot(waits: &HashMap<Tid, HashSet<Tid>>) -> String {
    let mut out = String::from("digraph waits_for {\n");
    out.push_str("  rankdir=LR;\n");
    out.push_str("  label=\"ASSET waits-for graph (ti -> tj: ti waits on tj)\";\n");
    out.push_str("  node [shape=circle, fontname=\"monospace\"];\n");
    for (waiter, holders) in sorted_waits(waits) {
        for h in holders {
            let _ = writeln!(out, "  t{} -> t{};", waiter.raw(), h.raw());
        }
    }
    out.push_str("}\n");
    out
}

/// The transaction dependency graph as DOT. Edges are the paper's
/// `form_dependency(kind, ti, tj)` triples: CD solid ("tj can commit only
/// if ti does"), AD dashed ("if ti aborts, tj must"), GC bold and
/// undirected ("commit together or not at all").
pub fn dep_graph_dot(edges: &[(DepType, Tid, Tid)]) -> String {
    let mut out = String::from("digraph dependencies {\n");
    out.push_str("  rankdir=LR;\n");
    out.push_str("  label=\"ASSET dependency graph (CD solid, AD dashed, GC bold)\";\n");
    out.push_str("  node [shape=box, style=rounded, fontname=\"monospace\"];\n");
    for (kind, ti, tj) in edges {
        let (a, b) = (ti.raw(), tj.raw());
        match kind {
            DepType::CD => {
                let _ = writeln!(out, "  t{a} -> t{b} [label=\"CD\"];");
            }
            DepType::AD => {
                let _ = writeln!(out, "  t{a} -> t{b} [label=\"AD\", style=dashed];");
            }
            DepType::GC => {
                let _ = writeln!(out, "  t{a} -> t{b} [label=\"GC\", style=bold, dir=none];");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// The point-in-time graph pair from one [`Introspection`]:
/// `(waits_for, dependencies)`, both DOT documents.
pub fn snapshot_pair(intro: &Introspection) -> (String, String) {
    (waits_for_dot(&intro.waits), dep_graph_dot(&intro.dep_edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_for_edges_are_deterministic() {
        let mut waits: HashMap<Tid, HashSet<Tid>> = HashMap::new();
        waits.entry(Tid(2)).or_default().insert(Tid(1));
        waits.entry(Tid(3)).or_default().insert(Tid(1));
        waits.entry(Tid(3)).or_default().insert(Tid(2));
        let doc = waits_for_dot(&waits);
        let i2 = doc.find("t2 -> t1").expect("t2->t1 present");
        let i3 = doc.find("t3 -> t1").expect("t3->t1 present");
        assert!(doc.contains("t3 -> t2"));
        assert!(i2 < i3, "rows sorted by waiter tid");
        assert!(doc.starts_with("digraph waits_for {"));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn dep_kinds_are_styled() {
        let edges = vec![
            (DepType::CD, Tid(1), Tid(2)),
            (DepType::AD, Tid(1), Tid(3)),
            (DepType::GC, Tid(2), Tid(3)),
        ];
        let doc = dep_graph_dot(&edges);
        assert!(doc.contains("t1 -> t2 [label=\"CD\"]"));
        assert!(doc.contains("style=dashed"));
        assert!(doc.contains("dir=none"));
    }
}

//! Frame rendering for `asset-top`, the live terminal monitor.
//!
//! [`render_frame`] turns one [`Introspection`] + [`MetricsSnapshot`]
//! pair into a fixed-width text dashboard: transaction-state counts,
//! per-stripe lock occupancy and contention, the current waits-for
//! edges, dependency-graph totals, permit-chain depth, log watermarks
//! and latency percentiles. The binary redraws it on an interval; tests
//! and `--once` callers just print it.

use asset_core::Introspection;
use asset_obs::MetricsSnapshot;
use std::fmt::Write as _;

fn ns_disp(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Render one dashboard frame (plain text, trailing newline, no ANSI —
/// the binary adds cursor control around it).
pub fn render_frame(intro: &Introspection, snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let s = &intro.stats;

    let _ = writeln!(
        out,
        "asset-top — live: {:>4}  initiated: {:>4}  running: {:>4}  completed: {:>4}  committed: {:>6}  aborted: {:>6}",
        intro.live, s.initiated, s.running, s.completed, s.committed, s.aborted
    );
    let _ = writeln!(
        out,
        "deps — active: {}  doomed: {}  CD: {}  AD: {}  GC: {}   permits live: {}  deepest permit chain: {}",
        intro.deps.active,
        intro.deps.doomed,
        intro.deps.cd_edges,
        intro.deps.ad_edges,
        intro.deps.gc_links,
        s.permits,
        intro.permit_chain_max
    );
    let _ = writeln!(
        out,
        "log — tail lsn: {}  records: {}  pending: {}B  unsynced: {}B   trace: {} ({} dropped)",
        intro.log.tail.0,
        intro.log.records_appended,
        intro.log.pending_bytes,
        intro.log.unsynced_bytes,
        if snap.tracing_enabled { "on" } else { "off" },
        snap.events_dropped
    );

    let (p50, p95, p99) = snap.lock_wait_ns.percentiles();
    let (c50, c95, c99) = snap.commit_ns.percentiles();
    let _ = writeln!(
        out,
        "lock wait — p50 {} / p95 {} / p99 {}   commit — p50 {} / p95 {} / p99 {}",
        ns_disp(p50),
        ns_disp(p95),
        ns_disp(p99),
        ns_disp(c50),
        ns_disp(c95),
        ns_disp(c99)
    );

    out.push('\n');
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>9} {:>8} {:>8} | {:>8} {:>8} {:>9} {:>10}",
        "stripe",
        "objects",
        "granted",
        "suspended",
        "waiting",
        "permits",
        "grants",
        "blocks",
        "deadlocks",
        "wait-max"
    );
    for (occ, st) in intro.stripes.iter().zip(intro.stripe_stats.iter()) {
        // Idle stripes stay out of the table so busy ones are readable;
        // cumulative activity alone (grants with nothing resident) still
        // shows.
        if occ.objects == 0 && st.grants == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>8} {:>9} {:>8} {:>8} | {:>8} {:>8} {:>9} {:>10}",
            occ.stripe,
            occ.objects,
            occ.granted,
            occ.suspended,
            occ.waiting,
            occ.permits,
            st.grants,
            st.blocks,
            st.deadlocks,
            ns_disp(st.wait_ns_max as f64)
        );
    }

    if !intro.waits.is_empty() {
        out.push('\n');
        let mut rows: Vec<_> = intro.waits.iter().collect();
        rows.sort_unstable_by_key(|(w, _)| **w);
        for (waiter, holders) in rows {
            let mut hs: Vec<u64> = holders.iter().map(|h| h.raw()).collect();
            hs.sort_unstable();
            let list = hs
                .iter()
                .map(|h| format!("t{h}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "waiting: t{} -> {}", waiter.raw(), list);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_core::Database;

    #[test]
    fn frame_reflects_database_state() {
        let db = Database::in_memory();
        db.obs().enable_tracing(0);
        let a = db.new_oid();
        let committed = db
            .run(move |ctx| {
                ctx.write(a, vec![1])?;
                Ok(())
            })
            .unwrap();
        assert!(committed);
        let frame = render_frame(&db.introspect(), &db.metrics_snapshot());
        assert!(frame.contains("asset-top"), "header present");
        assert!(frame.contains("committed:"), "txn counts present");
        assert!(frame.contains("trace: on"), "tracing flag shown");
        assert!(frame.contains("stripe"), "stripe table header present");
    }

    #[test]
    fn ns_display_picks_units() {
        assert_eq!(ns_disp(512.0), "512ns");
        assert_eq!(ns_disp(1_500.0), "1.5µs");
        assert_eq!(ns_disp(2_500_000.0), "2.50ms");
    }
}

//! Frame rendering for `asset-top`, the live terminal monitor.
//!
//! [`render_frame`] turns one [`Introspection`] + [`MetricsSnapshot`]
//! pair into a fixed-width text dashboard: transaction-state counts,
//! per-stripe lock occupancy and contention, the current waits-for
//! edges, dependency-graph totals, permit-chain depth, log watermarks
//! and latency percentiles. The binary redraws it on an interval; tests
//! and `--once` callers just print it.

use asset_core::Introspection;
use asset_obs::MetricsSnapshot;
use std::fmt::Write as _;

fn ns_disp(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Render one dashboard frame (plain text, trailing newline, no ANSI —
/// the binary adds cursor control around it).
pub fn render_frame(intro: &Introspection, snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let s = &intro.stats;

    let _ = writeln!(
        out,
        "asset-top — live: {:>4}  initiated: {:>4}  running: {:>4}  completed: {:>4}  committed: {:>6}  aborted: {:>6}",
        intro.live, s.initiated, s.running, s.completed, s.committed, s.aborted
    );
    let _ = writeln!(
        out,
        "deps — active: {}  doomed: {}  CD: {}  AD: {}  GC: {}   permits live: {}  deepest permit chain: {}",
        intro.deps.active,
        intro.deps.doomed,
        intro.deps.cd_edges,
        intro.deps.ad_edges,
        intro.deps.gc_links,
        s.permits,
        intro.permit_chain_max
    );
    let _ = writeln!(
        out,
        "log — tail lsn: {}  records: {}  pending: {}B  unsynced: {}B   trace: {} ({} dropped)",
        intro.log.tail.0,
        intro.log.records_appended,
        intro.log.pending_bytes,
        intro.log.unsynced_bytes,
        if snap.tracing_enabled { "on" } else { "off" },
        snap.events_dropped
    );

    let (p50, p95, p99) = snap.lock_wait_ns.percentiles();
    let (c50, c95, c99) = snap.commit_ns.percentiles();
    let _ = writeln!(
        out,
        "lock wait — p50 {} / p95 {} / p99 {}   commit — p50 {} / p95 {} / p99 {}",
        ns_disp(p50),
        ns_disp(p95),
        ns_disp(p99),
        ns_disp(c50),
        ns_disp(c95),
        ns_disp(c99)
    );

    out.push('\n');
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>9} {:>8} {:>8} | {:>8} {:>8} {:>9} {:>10}",
        "stripe",
        "objects",
        "granted",
        "suspended",
        "waiting",
        "permits",
        "grants",
        "blocks",
        "deadlocks",
        "wait-max"
    );
    for (occ, st) in intro.stripes.iter().zip(intro.stripe_stats.iter()) {
        // Idle stripes stay out of the table so busy ones are readable;
        // cumulative activity alone (grants with nothing resident) still
        // shows.
        if occ.objects == 0 && st.grants == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>8} {:>9} {:>8} {:>8} | {:>8} {:>8} {:>9} {:>10}",
            occ.stripe,
            occ.objects,
            occ.granted,
            occ.suspended,
            occ.waiting,
            occ.permits,
            st.grants,
            st.blocks,
            st.deadlocks,
            ns_disp(st.wait_ns_max as f64)
        );
    }

    if !intro.waits.is_empty() {
        out.push('\n');
        let mut rows: Vec<_> = intro.waits.iter().collect();
        rows.sort_unstable_by_key(|(w, _)| **w);
        for (waiter, holders) in rows {
            let mut hs: Vec<u64> = holders.iter().map(|h| h.raw()).collect();
            hs.sort_unstable();
            let list = hs
                .iter()
                .map(|h| format!("t{h}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "waiting: t{} -> {}", waiter.raw(), list);
        }
    }

    out
}

/// One node's vitals for the fleet dashboard, pulled out of a
/// Prometheus scrape body (`asset-top --nodes a,b,c` mode).
#[derive(Debug, Clone)]
pub struct NodeVitals {
    /// The node's metrics endpoint address (row label).
    pub addr: String,
    /// Did the scrape succeed? A down node renders as a dashed row.
    pub up: bool,
    /// `asset_txn_committed_total`.
    pub committed: f64,
    /// `asset_txn_aborted_total`.
    pub aborted: f64,
    /// `asset_server_requests_total`.
    pub requests: f64,
    /// `asset_server_live_connections` gauge.
    pub live_connections: f64,
    /// `asset_server_live_sessions` gauge.
    pub live_sessions: f64,
    /// `asset_server_live_transactions` gauge.
    pub live_transactions: f64,
    /// `asset_server_in_doubt` gauge — prepared, undecided groups.
    pub in_doubt: f64,
    /// `asset_events_dropped` gauge — ring-buffer drops.
    pub events_dropped: f64,
}

/// Sample a series by bare name, tolerating a `{label}` set — the
/// per-node exporter tags its gauges with `{node="N"}`, which
/// [`crate::prom::sample`]'s exact match would miss.
pub fn fleet_sample(body: &str, series: &str) -> Option<f64> {
    body.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (name, value) = l.split_once(' ')?;
        let bare = name.split('{').next()?;
        if bare == series {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

impl NodeVitals {
    /// Vitals parsed out of a successful scrape of `addr`.
    pub fn from_scrape(addr: &str, body: &str) -> NodeVitals {
        let get = |series: &str| fleet_sample(body, series).unwrap_or(0.0);
        NodeVitals {
            addr: addr.to_string(),
            up: true,
            committed: get("asset_txn_committed_total"),
            aborted: get("asset_txn_aborted_total"),
            requests: get("asset_server_requests_total"),
            live_connections: get("asset_server_live_connections"),
            live_sessions: get("asset_server_live_sessions"),
            live_transactions: get("asset_server_live_transactions"),
            in_doubt: get("asset_server_in_doubt"),
            events_dropped: get("asset_events_dropped"),
        }
    }

    /// The row for a node whose scrape failed.
    pub fn down(addr: &str) -> NodeVitals {
        NodeVitals {
            addr: addr.to_string(),
            up: false,
            committed: 0.0,
            aborted: 0.0,
            requests: 0.0,
            live_connections: 0.0,
            live_sessions: 0.0,
            live_transactions: 0.0,
            in_doubt: 0.0,
            events_dropped: 0.0,
        }
    }
}

/// Render the fleet dashboard: one row per scraped node, plus a totals
/// row. Plain text, same contract as [`render_frame`].
pub fn render_fleet_frame(nodes: &[NodeVitals]) -> String {
    let mut out = String::with_capacity(1024);
    let up = nodes.iter().filter(|n| n.up).count();
    let _ = writeln!(
        out,
        "asset-top — fleet: {} node(s), {} up, {} down",
        nodes.len(),
        up,
        nodes.len() - up
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<22} {:>4} {:>10} {:>8} {:>10} {:>6} {:>9} {:>6} {:>8} {:>8}",
        "node",
        "up",
        "committed",
        "aborted",
        "requests",
        "conns",
        "sessions",
        "txns",
        "in-doubt",
        "dropped"
    );
    for n in nodes {
        if !n.up {
            let _ = writeln!(
                out,
                "{:<22} {:>4} {:>10} {:>8} {:>10} {:>6} {:>9} {:>6} {:>8} {:>8}",
                n.addr, "DOWN", "-", "-", "-", "-", "-", "-", "-", "-"
            );
            continue;
        }
        let _ = writeln!(
            out,
            "{:<22} {:>4} {:>10} {:>8} {:>10} {:>6} {:>9} {:>6} {:>8} {:>8}",
            n.addr,
            "ok",
            n.committed,
            n.aborted,
            n.requests,
            n.live_connections,
            n.live_sessions,
            n.live_transactions,
            n.in_doubt,
            n.events_dropped
        );
    }
    let live: Vec<&NodeVitals> = nodes.iter().filter(|n| n.up).collect();
    let sum = |f: fn(&NodeVitals) -> f64| live.iter().map(|n| f(n)).sum::<f64>();
    let _ = writeln!(
        out,
        "{:<22} {:>4} {:>10} {:>8} {:>10} {:>6} {:>9} {:>6} {:>8} {:>8}",
        "total",
        "",
        sum(|n| n.committed),
        sum(|n| n.aborted),
        sum(|n| n.requests),
        sum(|n| n.live_connections),
        sum(|n| n.live_sessions),
        sum(|n| n.live_transactions),
        sum(|n| n.in_doubt),
        sum(|n| n.events_dropped)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_core::Database;

    #[test]
    fn frame_reflects_database_state() {
        let db = Database::in_memory();
        db.obs().enable_tracing(0);
        let a = db.new_oid();
        let committed = db
            .run(move |ctx| {
                ctx.write(a, vec![1])?;
                Ok(())
            })
            .unwrap();
        assert!(committed);
        let frame = render_frame(&db.introspect(), &db.metrics_snapshot());
        assert!(frame.contains("asset-top"), "header present");
        assert!(frame.contains("committed:"), "txn counts present");
        assert!(frame.contains("trace: on"), "tracing flag shown");
        assert!(frame.contains("stripe"), "stripe table header present");
    }

    #[test]
    fn ns_display_picks_units() {
        assert_eq!(ns_disp(512.0), "512ns");
        assert_eq!(ns_disp(1_500.0), "1.5µs");
        assert_eq!(ns_disp(2_500_000.0), "2.50ms");
    }

    #[test]
    fn fleet_sample_ignores_label_sets() {
        let body =
            "# HELP x y\nasset_server_in_doubt{node=\"3\"} 2\nasset_txn_committed_total 41\n";
        assert_eq!(fleet_sample(body, "asset_server_in_doubt"), Some(2.0));
        assert_eq!(fleet_sample(body, "asset_txn_committed_total"), Some(41.0));
        assert_eq!(fleet_sample(body, "asset_missing"), None);
    }

    #[test]
    fn fleet_frame_has_a_row_per_node_and_totals() {
        let a = NodeVitals {
            committed: 10.0,
            in_doubt: 1.0,
            ..NodeVitals::from_scrape("127.0.0.1:9001", "")
        };
        let b = NodeVitals::down("127.0.0.1:9002");
        let frame = render_fleet_frame(&[a, b]);
        assert!(frame.contains("2 node(s), 1 up, 1 down"));
        assert!(frame.contains("127.0.0.1:9001"));
        assert!(frame.contains("DOWN"));
        assert!(frame.contains("total"));
    }
}

//! Causal-graph reconstruction from the flat event ring.
//!
//! `asset-obs` records flat, `Copy` [`Event`]s through the drop-don't-block
//! ring; this module folds a drained trace back into the *causal* shape
//! the paper's §3 constructions have: one [`Track`] per transaction
//! (begin → commit/abort), sub-spans for the waits inside it (lock waits,
//! the commit gate, rollback), and typed [`CausalEdge`]s for the ASSET
//! primitives that connect transactions — `delegate`, `permit` (including
//! the transitive chains `permits_across` walks), and `form_dependency`
//! CD/AD/GC edges. GC components are re-derived from the GC edges so a
//! group commit shows up as one commit flow fanning out to every member.

use asset_common::{DepType, Oid, Tid};
use asset_obs::{Event, EventKind, ModelKind, SpanName};
use std::collections::{BTreeMap, HashMap, HashSet};

/// What a [`SubSpan`] measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A lock request blocked on `ob` (stripe + queue depth at first block).
    LockWait {
        /// The contended object.
        ob: Oid,
        /// Lock-table stripe the object hashed to.
        stripe: u32,
        /// Pending-queue depth when the request first blocked.
        queue_depth: u32,
    },
    /// A cache-latch acquisition spun (storage track).
    LatchSpin {
        /// Backoff rounds before the latch was acquired.
        spins: u32,
    },
    /// The log drained to the OS / stable storage (storage track).
    LogFlush {
        /// Bytes drained from the user-space buffer.
        bytes: u64,
    },
    /// A group-commit flush window became durable (storage track): one
    /// shared write+sync covering `records` commit records. The
    /// [`CausalGraph::flush_flows`] edges from each committer terminate on
    /// this span.
    FlushWindow {
        /// Monotonic window number (per flusher).
        window: u64,
        /// Commit records coalesced into the window.
        records: u32,
        /// Log bytes accepted while the window was assembled.
        bytes: u64,
    },
    /// A named open/close span ([`SpanName`]: commit gate, rollback).
    Named(SpanName),
}

impl SpanKind {
    /// Stable lowercase label for exporters.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::LockWait { .. } => "lock-wait",
            SpanKind::LatchSpin { .. } => "latch-spin",
            SpanKind::LogFlush { .. } => "log-flush",
            SpanKind::FlushWindow { .. } => "flush-window",
            SpanKind::Named(n) => n.label(),
        }
    }
}

/// One timed interval on a track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubSpan {
    /// What was measured.
    pub kind: SpanKind,
    /// Start, in nanoseconds since the `Obs` epoch.
    pub start_ns: u64,
    /// End (`>= start_ns`).
    pub end_ns: u64,
}

/// Terminal outcome of a track.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Outcome {
    /// No terminal event in the trace (still running, or it fell off the
    /// ring).
    #[default]
    Open,
    /// Committed (possibly as a GC group member).
    Committed,
    /// Aborted.
    Aborted,
}

impl Outcome {
    /// Stable lowercase label for exporters.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Open => "open",
            Outcome::Committed => "committed",
            Outcome::Aborted => "aborted",
        }
    }
}

/// One transaction's timeline: lifecycle bounds, sub-spans, milestones.
#[derive(Clone, Debug)]
pub struct Track {
    /// The transaction.
    pub tid: Tid,
    /// Its initiator (`Tid::NULL` for top-level or unknown).
    pub parent: Tid,
    /// The §3 model that tagged this transaction, if any.
    pub model: Option<ModelKind>,
    /// `begin` time (ns since epoch), if seen.
    pub begin_ns: Option<u64>,
    /// Terminal time (commit/abort), if seen.
    pub end_ns: Option<u64>,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Timed sub-spans (lock waits, commit gate, rollback).
    pub spans: Vec<SubSpan>,
    /// Point milestones: `(at_ns, label)` — model milestones, completion,
    /// deadlock victimhood, ambiguous commits.
    pub milestones: Vec<(u64, &'static str)>,
}

impl Track {
    fn new(tid: Tid) -> Track {
        Track {
            tid,
            parent: Tid::NULL,
            model: None,
            begin_ns: None,
            end_ns: None,
            outcome: Outcome::Open,
            spans: Vec::new(),
            milestones: Vec::new(),
        }
    }

    /// First known timestamp on this track (begin, else earliest span or
    /// milestone, else 0).
    pub fn first_ns(&self) -> u64 {
        let mut t = self.begin_ns.or(self.end_ns).unwrap_or(u64::MAX);
        for s in &self.spans {
            t = t.min(s.start_ns);
        }
        for (at, _) in &self.milestones {
            t = t.min(*at);
        }
        if t == u64::MAX {
            0
        } else {
            t
        }
    }

    /// Last known timestamp on this track.
    pub fn last_ns(&self) -> u64 {
        let mut t = self.end_ns.or(self.begin_ns).unwrap_or(0);
        for s in &self.spans {
            t = t.max(s.end_ns);
        }
        for (at, _) in &self.milestones {
            t = t.max(*at);
        }
        t
    }
}

/// The type of a causal edge between two tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// `delegate(from, to)` moved lock responsibility over `objects`.
    Delegate {
        /// Objects whose responsibility moved.
        objects: u32,
    },
    /// `permit` registered a descriptor from grantor to grantee.
    PermitGrant {
        /// Objects in scope (0 = all).
        objects: u32,
    },
    /// A permit actually admitted a conflicting request (`chain` hops —
    /// `> 1` means a transitive `permits_across` chain took effect).
    PermitUsed {
        /// Permit-chain hops the check walked (1 = direct).
        chain: u32,
    },
    /// `form_dependency(kind, ti, tj)`.
    Dep(DepType),
    /// A group commit flow from the committing transaction to a member.
    CommitGroup,
}

impl EdgeKind {
    /// Stable lowercase label for exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EdgeKind::Delegate { .. } => "delegate",
            EdgeKind::PermitGrant { .. } => "permit",
            EdgeKind::PermitUsed { .. } => "permit-through",
            EdgeKind::Dep(DepType::CD) => "dep-cd",
            EdgeKind::Dep(DepType::AD) => "dep-ad",
            EdgeKind::Dep(DepType::GC) => "dep-gc",
            EdgeKind::CommitGroup => "group-commit",
        }
    }
}

/// A typed, timestamped edge between two tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CausalEdge {
    /// Edge type (and payload).
    pub kind: EdgeKind,
    /// Source transaction.
    pub from: Tid,
    /// Destination transaction.
    pub to: Tid,
    /// When the edge was recorded (ns since epoch).
    pub at_ns: u64,
    /// Ring sequence number of the underlying event (unique per edge).
    pub seq: u64,
}

/// Direction of a cross-node message hop on one node's timeline (§7.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgDir {
    /// This node sent a request to `peer`.
    Send,
    /// The reply from `peer` arrived back here.
    Ack,
    /// A request from `peer` arrived here.
    Recv,
    /// This node answered a request from `peer`.
    Reply,
}

/// One cross-node message hop. The k-th `Send` on the origin for a given
/// `(root, opcode, peer)` pairs with the k-th `Recv` on the destination
/// (and `Reply` with `Ack` on the way back) — that pairing is both the
/// cross-node flow edge and the clock-alignment handshake
/// [`CausalGraph::merge`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgHop {
    /// Which leg of the exchange this is.
    pub dir: MsgDir,
    /// The other node (destination for `Send`/`Ack`, origin for
    /// `Recv`/`Reply`).
    pub peer: u32,
    /// Wire opcode of the request (§13.3).
    pub opcode: u8,
    /// Root span id from the trace context (the gid for coordinator
    /// opcodes).
    pub root: u64,
    /// Reply status byte (`Reply` hops only).
    pub status: Option<u8>,
    /// When the hop was recorded (ns since this node's epoch).
    pub at_ns: u64,
    /// Ring sequence number on this node.
    pub seq: u64,
}

/// One participant-side in-doubt window (§14.2): opens when the
/// `Prepared` record is forced, closes when the coordinator's decision
/// is applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InDoubtWindow {
    /// Lowest member tid of the prepared group.
    pub tid: Tid,
    /// Size of the prepared group.
    pub group: u32,
    /// Prepare-force time (ns since epoch).
    pub start_ns: u64,
    /// Decision-applied time; `None` if the trace ends in doubt.
    pub end_ns: Option<u64>,
    /// The decision (`true` = commit); `None` while open.
    pub commit: Option<bool>,
}

/// A commit flow terminating on a shared flush window: `tid`'s commit
/// record became durable as part of window `window` on the storage lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushFlow {
    /// The committed transaction.
    pub tid: Tid,
    /// The flush window that carried its commit record (matches a
    /// [`SpanKind::FlushWindow`] span in [`CausalGraph::storage`]).
    pub window: u64,
    /// When the acknowledgement was recorded (ns since epoch).
    pub at_ns: u64,
    /// Ring sequence number of the underlying event (unique per flow).
    pub seq: u64,
}

/// One group commit: the transaction whose `commit` call carried the
/// group, and every member (committer included).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitGroup {
    /// The transaction whose commit call succeeded.
    pub committer: Tid,
    /// All members committed together (sorted; includes the committer).
    pub members: Vec<Tid>,
    /// Commit-point timestamp.
    pub at_ns: u64,
}

/// The reconstructed causal graph of one trace.
#[derive(Clone, Debug, Default)]
pub struct CausalGraph {
    /// One track per transaction, keyed by tid.
    pub tracks: BTreeMap<Tid, Track>,
    /// Sub-spans with no owning transaction (log flushes, latch spins).
    pub storage: Vec<SubSpan>,
    /// All causal edges, in ring order.
    pub edges: Vec<CausalEdge>,
    /// Group commits observed (GC components at their commit points).
    pub commit_groups: Vec<CommitGroup>,
    /// Commit flows onto shared flush windows: many transactions' commits
    /// terminating on one `flush-window` span is the group-commit flusher
    /// working as intended.
    pub flush_flows: Vec<FlushFlow>,
    /// This node's fleet id (0 for single-node traces; set by
    /// [`CausalGraph::from_node_events`]).
    pub node: u32,
    /// Cross-node message hops recorded on this node, in ring order.
    pub msgs: Vec<MsgHop>,
    /// Participant in-doubt windows (prepare-force → decision).
    pub in_doubt: Vec<InDoubtWindow>,
}

impl CausalGraph {
    /// Fold a drained trace (as returned by `Obs::trace()`, oldest first)
    /// into tracks, edges and commit groups. Tolerant of partial traces:
    /// events that fell off the ring simply leave spans unopened or tracks
    /// unterminated.
    pub fn from_events(events: &[Event]) -> CausalGraph {
        let mut g = CausalGraph::default();
        // (tid, span) → open timestamp; closes pop the matching open.
        let mut open: HashMap<(Tid, SpanName), u64> = HashMap::new();
        // GC adjacency accumulated from DepFormed edges, for component
        // discovery at commit points.
        let mut gc: HashMap<Tid, HashSet<Tid>> = HashMap::new();
        for e in events {
            let at = e.at_ns;
            match e.kind {
                EventKind::TxnInitiate { tid, parent } => {
                    let t = g.track(tid);
                    t.parent = parent;
                    t.milestones.push((at, "initiate"));
                }
                EventKind::TxnBegin { tid } => {
                    let t = g.track(tid);
                    if t.begin_ns.is_none() {
                        t.begin_ns = Some(at);
                    }
                }
                EventKind::TxnCommit { tid, group: _ } => {
                    let members = component(&gc, tid);
                    for m in &members {
                        let t = g.track(*m);
                        t.outcome = Outcome::Committed;
                        if t.end_ns.is_none() {
                            t.end_ns = Some(at);
                        }
                    }
                    for m in &members {
                        if *m != tid {
                            g.edges.push(CausalEdge {
                                kind: EdgeKind::CommitGroup,
                                from: tid,
                                to: *m,
                                at_ns: at,
                                seq: e.seq,
                            });
                        }
                    }
                    g.commit_groups.push(CommitGroup {
                        committer: tid,
                        members,
                        at_ns: at,
                    });
                }
                EventKind::TxnAbort { tid, undo_records } => {
                    let t = g.track(tid);
                    t.outcome = Outcome::Aborted;
                    if t.end_ns.is_none() {
                        t.end_ns = Some(at);
                    }
                    if undo_records > 0 {
                        t.milestones.push((at, "undone"));
                    }
                }
                EventKind::CommitAmbiguous { tid, .. } => {
                    g.track(tid).milestones.push((at, "commit-ambiguous"));
                }
                EventKind::TxnComplete { tid, ok } => {
                    let label = if ok { "complete" } else { "failed" };
                    g.track(tid).milestones.push((at, label));
                }
                EventKind::LockWait {
                    tid,
                    ob,
                    stripe,
                    wait_ns,
                    queue_depth,
                } => {
                    g.track(tid).spans.push(SubSpan {
                        kind: SpanKind::LockWait {
                            ob,
                            stripe,
                            queue_depth,
                        },
                        start_ns: at.saturating_sub(wait_ns),
                        end_ns: at,
                    });
                }
                EventKind::SpanOpen { tid, span } => {
                    open.insert((tid, span), at);
                }
                EventKind::SpanClose { tid, span } => {
                    let start = open.remove(&(tid, span)).unwrap_or(at);
                    g.track(tid).spans.push(SubSpan {
                        kind: SpanKind::Named(span),
                        start_ns: start,
                        end_ns: at.max(start),
                    });
                }
                EventKind::LogFlush { bytes, dur_ns } => {
                    g.storage.push(SubSpan {
                        kind: SpanKind::LogFlush { bytes },
                        start_ns: at.saturating_sub(dur_ns),
                        end_ns: at,
                    });
                }
                EventKind::FlushWindow {
                    window,
                    records,
                    bytes,
                    dur_ns,
                } => {
                    g.storage.push(SubSpan {
                        kind: SpanKind::FlushWindow {
                            window,
                            records,
                            bytes,
                        },
                        start_ns: at.saturating_sub(dur_ns),
                        end_ns: at,
                    });
                }
                EventKind::CommitFlushed { tid, window } => {
                    g.track(tid);
                    g.flush_flows.push(FlushFlow {
                        tid,
                        window,
                        at_ns: at,
                        seq: e.seq,
                    });
                }
                EventKind::ExecPark { tid, reason } => {
                    let label = match reason {
                        "lock" => "park-lock",
                        "dep" => "park-dep",
                        "flush" => "park-flush",
                        _ => "park",
                    };
                    g.track(tid).milestones.push((at, label));
                }
                EventKind::LatchSpin { spins } => {
                    g.storage.push(SubSpan {
                        kind: SpanKind::LatchSpin { spins },
                        start_ns: at,
                        end_ns: at,
                    });
                }
                EventKind::Delegate { from, to, objects } => {
                    g.track(from);
                    g.track(to);
                    g.edges.push(CausalEdge {
                        kind: EdgeKind::Delegate { objects },
                        from,
                        to,
                        at_ns: at,
                        seq: e.seq,
                    });
                }
                EventKind::PermitGrant {
                    grantor,
                    grantee,
                    objects,
                } => {
                    g.track(grantor);
                    if grantee.is_null() {
                        // wildcard permit: no destination track to flow to
                        g.track(grantor).milestones.push((at, "permit-any"));
                    } else {
                        g.track(grantee);
                        g.edges.push(CausalEdge {
                            kind: EdgeKind::PermitGrant { objects },
                            from: grantor,
                            to: grantee,
                            at_ns: at,
                            seq: e.seq,
                        });
                    }
                }
                EventKind::PermitThrough {
                    holder,
                    requester,
                    chain,
                    ..
                } => {
                    g.track(holder);
                    g.track(requester);
                    g.edges.push(CausalEdge {
                        kind: EdgeKind::PermitUsed { chain },
                        from: holder,
                        to: requester,
                        at_ns: at,
                        seq: e.seq,
                    });
                }
                EventKind::DepFormed { kind, ti, tj } => {
                    g.track(ti);
                    g.track(tj);
                    if kind == DepType::GC {
                        gc.entry(ti).or_default().insert(tj);
                        gc.entry(tj).or_default().insert(ti);
                    }
                    g.edges.push(CausalEdge {
                        kind: EdgeKind::Dep(kind),
                        from: ti,
                        to: tj,
                        at_ns: at,
                        seq: e.seq,
                    });
                }
                EventKind::DeadlockSweep { tid, cycle } => {
                    if cycle {
                        g.track(tid).milestones.push((at, "deadlock-victim"));
                    }
                }
                EventKind::Model { model, tid, label } => {
                    if !tid.is_null() {
                        let t = g.track(tid);
                        if t.model.is_none() {
                            t.model = Some(model);
                        }
                        t.milestones.push((at, label));
                    }
                }
                EventKind::MsgSend { node, opcode, root } => {
                    g.msgs.push(MsgHop {
                        dir: MsgDir::Send,
                        peer: node,
                        opcode,
                        root,
                        status: None,
                        at_ns: at,
                        seq: e.seq,
                    });
                }
                EventKind::MsgAck { node, opcode, root } => {
                    g.msgs.push(MsgHop {
                        dir: MsgDir::Ack,
                        peer: node,
                        opcode,
                        root,
                        status: None,
                        at_ns: at,
                        seq: e.seq,
                    });
                }
                EventKind::MsgRecv {
                    opcode,
                    origin,
                    root,
                } => {
                    g.msgs.push(MsgHop {
                        dir: MsgDir::Recv,
                        peer: origin,
                        opcode,
                        root,
                        status: None,
                        at_ns: at,
                        seq: e.seq,
                    });
                }
                EventKind::MsgReply {
                    opcode,
                    origin,
                    root,
                    status,
                } => {
                    g.msgs.push(MsgHop {
                        dir: MsgDir::Reply,
                        peer: origin,
                        opcode,
                        root,
                        status: Some(status),
                        at_ns: at,
                        seq: e.seq,
                    });
                }
                EventKind::PrepareForced { tid, group } => {
                    g.track(tid).milestones.push((at, "prepare-forced"));
                    g.in_doubt.push(InDoubtWindow {
                        tid,
                        group,
                        start_ns: at,
                        end_ns: None,
                        commit: None,
                    });
                }
                EventKind::DecideApplied { tid, commit, group } => {
                    let label = if commit {
                        "decide-commit"
                    } else {
                        "decide-abort"
                    };
                    g.track(tid).milestones.push((at, label));
                    match g
                        .in_doubt
                        .iter_mut()
                        .find(|w| w.tid == tid && w.end_ns.is_none())
                    {
                        Some(w) => {
                            w.end_ns = Some(at);
                            w.commit = Some(commit);
                        }
                        None => {
                            // the prepare fell off the ring: synthesize a
                            // zero-length window so the decision survives
                            g.in_doubt.push(InDoubtWindow {
                                tid,
                                group,
                                start_ns: at,
                                end_ns: Some(at),
                                commit: Some(commit),
                            });
                        }
                    }
                }
            }
        }
        g
    }

    /// [`from_events`](Self::from_events) with the fleet node id the
    /// events came from — the per-node export half of a multi-node merge
    /// (drain each node's ring, tag it, then [`merge`](Self::merge)).
    pub fn from_node_events(node: u32, events: &[Event]) -> CausalGraph {
        let mut g = Self::from_events(events);
        g.node = node;
        g
    }

    fn track(&mut self, tid: Tid) -> &mut Track {
        self.tracks.entry(tid).or_insert_with(|| Track::new(tid))
    }

    /// Edges of one kind-class, by label (e.g. `"delegate"`).
    pub fn edges_labeled(&self, label: &str) -> Vec<&CausalEdge> {
        self.edges
            .iter()
            .filter(|e| e.kind.label() == label)
            .collect()
    }

    /// Deepest permit chain that actually admitted a request (0 when no
    /// permit was used).
    pub fn permit_chain_max(&self) -> u32 {
        self.edges
            .iter()
            .filter_map(|e| match e.kind {
                EdgeKind::PermitUsed { chain } => Some(chain),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Timestamp bounds of the whole trace `(first, last)`; `(0, 0)` when
    /// empty.
    pub fn bounds_ns(&self) -> (u64, u64) {
        let mut first = u64::MAX;
        let mut last = 0u64;
        for t in self.tracks.values() {
            first = first.min(t.first_ns());
            last = last.max(t.last_ns());
        }
        for s in &self.storage {
            first = first.min(s.start_ns);
            last = last.max(s.end_ns);
        }
        if first == u64::MAX {
            (0, 0)
        } else {
            (first, last)
        }
    }

    /// Merge per-node graphs onto one fleet timeline (§7.2).
    ///
    /// Per-node timestamps count from each process's own `Obs` epoch, so
    /// they are mutually meaningless until aligned. For every pair of
    /// nodes that exchanged traced messages, each complete request/ack
    /// handshake gives the NTP midpoint estimate of the peer clock
    /// offset — `((recv - send) + (reply - ack)) / 2` cancels the
    /// symmetric part of the network delay. Offsets are averaged over
    /// all handshakes of a pair, chained breadth-first from the first
    /// graph's node (the reference clock), and every node's timestamps
    /// are shifted onto the reference. Nodes with no traced path to the
    /// reference keep their own epoch (offset 0) — their lanes still
    /// render, just not meaningfully aligned.
    pub fn merge(graphs: Vec<CausalGraph>) -> FleetGraph {
        let mut graphs = graphs;
        let mut offsets: HashMap<u32, i64> = HashMap::new();
        if let Some(first) = graphs.first() {
            offsets.insert(first.node, 0);
        }
        // Breadth-first alignment: pick any unaligned node with
        // handshakes against an aligned one, fix its offset, repeat.
        loop {
            let mut progressed = false;
            for i in 0..graphs.len() {
                if offsets.contains_key(&graphs[i].node) {
                    continue;
                }
                for j in 0..graphs.len() {
                    let Some(&base) = offsets.get(&graphs[j].node) else {
                        continue;
                    };
                    // offset of node i relative to node j, if they talked
                    let theta = pair_offset(&graphs[j], &graphs[i])
                        .or_else(|| pair_offset(&graphs[i], &graphs[j]).map(|t| -t));
                    if let Some(theta) = theta {
                        offsets.insert(graphs[i].node, base + theta);
                        progressed = true;
                        break;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let mut applied: Vec<(u32, i64)> = Vec::new();
        for g in &mut graphs {
            let off = offsets.get(&g.node).copied().unwrap_or(0);
            g.shift_ns(-off);
            applied.push((g.node, -off));
        }
        let mut flows = Vec::new();
        for a in &graphs {
            for b in &graphs {
                if a.node != b.node {
                    match_flows(a, b, &mut flows);
                }
            }
        }
        flows.sort_by_key(|f| (f.from_ns, f.root, f.opcode));
        FleetGraph {
            nodes: graphs,
            offsets: applied,
            flows,
        }
    }

    /// Shift every timestamp in the graph by `delta` ns (negative deltas
    /// clamp at 0 rather than wrap).
    fn shift_ns(&mut self, delta: i64) {
        if delta == 0 {
            return;
        }
        let sh = |t: u64| -> u64 {
            if delta >= 0 {
                t.saturating_add(delta as u64)
            } else {
                t.saturating_sub(delta.unsigned_abs())
            }
        };
        for t in self.tracks.values_mut() {
            t.begin_ns = t.begin_ns.map(sh);
            t.end_ns = t.end_ns.map(sh);
            for s in &mut t.spans {
                s.start_ns = sh(s.start_ns);
                s.end_ns = sh(s.end_ns);
            }
            for m in &mut t.milestones {
                m.0 = sh(m.0);
            }
        }
        for s in &mut self.storage {
            s.start_ns = sh(s.start_ns);
            s.end_ns = sh(s.end_ns);
        }
        for e in &mut self.edges {
            e.at_ns = sh(e.at_ns);
        }
        for c in &mut self.commit_groups {
            c.at_ns = sh(c.at_ns);
        }
        for f in &mut self.flush_flows {
            f.at_ns = sh(f.at_ns);
        }
        for m in &mut self.msgs {
            m.at_ns = sh(m.at_ns);
        }
        for w in &mut self.in_doubt {
            w.start_ns = sh(w.start_ns);
            w.end_ns = w.end_ns.map(sh);
        }
    }

    /// This node's hops of one direction toward `peer`, grouped by
    /// `(root, opcode)` in ring order — the k-th entry of a group is the
    /// k-th exchange of that root/opcode between the two nodes.
    fn hops_toward(&self, peer: u32, dir: MsgDir) -> HashMap<(u64, u8), Vec<&MsgHop>> {
        let mut out: HashMap<(u64, u8), Vec<&MsgHop>> = HashMap::new();
        for m in &self.msgs {
            if m.peer == peer && m.dir == dir {
                out.entry((m.root, m.opcode)).or_default().push(m);
            }
        }
        out
    }
}

/// Mean NTP-midpoint offset of node `b`'s clock relative to node `a`'s,
/// over every complete `Send→Recv→Reply→Ack` handshake `a` originated
/// toward `b`. `None` if no complete handshake exists.
fn pair_offset(a: &CausalGraph, b: &CausalGraph) -> Option<i64> {
    let sends = a.hops_toward(b.node, MsgDir::Send);
    let acks = a.hops_toward(b.node, MsgDir::Ack);
    let recvs = b.hops_toward(a.node, MsgDir::Recv);
    let replies = b.hops_toward(a.node, MsgDir::Reply);
    let mut sum: i128 = 0;
    let mut n: i128 = 0;
    for (key, s_list) in &sends {
        let (Some(r_list), Some(p_list), Some(k_list)) =
            (recvs.get(key), replies.get(key), acks.get(key))
        else {
            continue;
        };
        let complete = s_list
            .len()
            .min(r_list.len())
            .min(p_list.len())
            .min(k_list.len());
        for k in 0..complete {
            let (t1, t2) = (s_list[k].at_ns as i128, r_list[k].at_ns as i128);
            let (t3, t4) = (p_list[k].at_ns as i128, k_list[k].at_ns as i128);
            sum += (t2 - t1 + (t3 - t4)) / 2;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        i64::try_from(sum / n).ok()
    }
}

/// Match `a`'s sends/acks toward `b` against `b`'s recvs/replies from
/// `a` (k-th with k-th per `(root, opcode)`), appending the resulting
/// request and response flow edges. Call after both graphs are shifted
/// onto the fleet clock.
fn match_flows(a: &CausalGraph, b: &CausalGraph, out: &mut Vec<CrossFlow>) {
    let sends = a.hops_toward(b.node, MsgDir::Send);
    let acks = a.hops_toward(b.node, MsgDir::Ack);
    let recvs = b.hops_toward(a.node, MsgDir::Recv);
    let replies = b.hops_toward(a.node, MsgDir::Reply);
    for (key, s_list) in &sends {
        if let Some(r_list) = recvs.get(key) {
            for k in 0..s_list.len().min(r_list.len()) {
                out.push(CrossFlow {
                    kind: FlowKind::Request,
                    opcode: key.1,
                    root: key.0,
                    from_node: a.node,
                    to_node: b.node,
                    from_ns: s_list[k].at_ns,
                    to_ns: r_list[k].at_ns,
                });
            }
        }
    }
    for (key, p_list) in &replies {
        if let Some(k_list) = acks.get(key) {
            for k in 0..p_list.len().min(k_list.len()) {
                out.push(CrossFlow {
                    kind: FlowKind::Response,
                    opcode: key.1,
                    root: key.0,
                    from_node: b.node,
                    to_node: a.node,
                    from_ns: p_list[k].at_ns,
                    to_ns: k_list[k].at_ns,
                });
            }
        }
    }
}

/// Which leg of a cross-node exchange a [`CrossFlow`] draws.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowKind {
    /// Origin's `Send` → destination's `Recv`.
    Request,
    /// Destination's `Reply` → origin's `Ack`.
    Response,
}

/// One matched cross-node flow edge on the fleet-aligned timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossFlow {
    /// Request or response leg.
    pub kind: FlowKind,
    /// Wire opcode of the exchange.
    pub opcode: u8,
    /// Root span id tying the exchange to its distributed operation.
    pub root: u64,
    /// Node the arrow leaves.
    pub from_node: u32,
    /// Node the arrow lands on.
    pub to_node: u32,
    /// Departure time on the fleet clock.
    pub from_ns: u64,
    /// Arrival time on the fleet clock.
    pub to_ns: u64,
}

/// Per-node graphs merged onto one timeline by [`CausalGraph::merge`]:
/// the shifted node graphs, the clock shift applied to each, and the
/// matched cross-node flow edges.
#[derive(Clone, Debug, Default)]
pub struct FleetGraph {
    /// The input graphs, timestamps shifted onto the reference clock.
    pub nodes: Vec<CausalGraph>,
    /// `(node, shift_ns)` actually applied to each node's timestamps.
    pub offsets: Vec<(u32, i64)>,
    /// Matched cross-node message flows, ordered by departure time.
    pub flows: Vec<CrossFlow>,
}

/// Connected GC component of `t` (always contains `t`), sorted.
fn component(gc: &HashMap<Tid, HashSet<Tid>>, t: Tid) -> Vec<Tid> {
    let mut seen: HashSet<Tid> = HashSet::new();
    let mut stack = vec![t];
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        if let Some(peers) = gc.get(&x) {
            stack.extend(peers.iter().copied());
        }
    }
    let mut out: Vec<Tid> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at_ns: u64, kind: EventKind) -> Event {
        Event { seq, at_ns, kind }
    }

    #[test]
    fn lifecycle_builds_a_closed_track() {
        let t1 = Tid(1);
        let trace = vec![
            ev(0, 10, EventKind::TxnBegin { tid: t1 }),
            ev(1, 90, EventKind::TxnCommit { tid: t1, group: 1 }),
        ];
        let g = CausalGraph::from_events(&trace);
        let tr = g.tracks.get(&t1).unwrap();
        assert_eq!(tr.begin_ns, Some(10));
        assert_eq!(tr.end_ns, Some(90));
        assert_eq!(tr.outcome, Outcome::Committed);
        assert_eq!(g.commit_groups.len(), 1);
        assert_eq!(g.commit_groups[0].members, vec![t1]);
    }

    #[test]
    fn gc_edges_group_the_commit() {
        let (t1, t2, t3) = (Tid(1), Tid(2), Tid(3));
        let trace = vec![
            ev(0, 1, EventKind::TxnBegin { tid: t1 }),
            ev(1, 2, EventKind::TxnBegin { tid: t2 }),
            ev(2, 3, EventKind::TxnBegin { tid: t3 }),
            ev(
                3,
                4,
                EventKind::DepFormed {
                    kind: DepType::GC,
                    ti: t1,
                    tj: t2,
                },
            ),
            ev(4, 9, EventKind::TxnCommit { tid: t1, group: 2 }),
        ];
        let g = CausalGraph::from_events(&trace);
        assert_eq!(g.commit_groups.len(), 1);
        assert_eq!(g.commit_groups[0].members, vec![t1, t2]);
        assert_eq!(g.tracks[&t2].outcome, Outcome::Committed);
        assert_eq!(g.tracks[&t3].outcome, Outcome::Open);
        // one group-commit flow edge from committer to the other member
        let flows = g.edges_labeled("group-commit");
        assert_eq!(flows.len(), 1);
        assert_eq!((flows[0].from, flows[0].to), (t1, t2));
    }

    #[test]
    fn lock_wait_becomes_a_backdated_subspan() {
        let t1 = Tid(1);
        let trace = vec![ev(
            0,
            100,
            EventKind::LockWait {
                tid: t1,
                ob: Oid(7),
                stripe: 3,
                wait_ns: 40,
                queue_depth: 2,
            },
        )];
        let g = CausalGraph::from_events(&trace);
        let s = g.tracks[&t1].spans[0];
        assert_eq!((s.start_ns, s.end_ns), (60, 100));
        assert_eq!(s.kind.label(), "lock-wait");
    }

    #[test]
    fn named_spans_pair_open_and_close() {
        let t1 = Tid(1);
        let trace = vec![
            ev(
                0,
                5,
                EventKind::SpanOpen {
                    tid: t1,
                    span: SpanName::CommitGate,
                },
            ),
            ev(
                1,
                25,
                EventKind::SpanClose {
                    tid: t1,
                    span: SpanName::CommitGate,
                },
            ),
        ];
        let g = CausalGraph::from_events(&trace);
        let s = g.tracks[&t1].spans[0];
        assert_eq!((s.start_ns, s.end_ns), (5, 25));
        assert_eq!(s.kind.label(), "commit-gate");
    }

    #[test]
    fn permit_and_delegate_edges_carry_payloads() {
        let (t1, t2) = (Tid(1), Tid(2));
        let trace = vec![
            ev(
                0,
                1,
                EventKind::PermitGrant {
                    grantor: t1,
                    grantee: t2,
                    objects: 3,
                },
            ),
            ev(
                1,
                2,
                EventKind::PermitThrough {
                    holder: t1,
                    requester: t2,
                    ob: Oid(9),
                    chain: 2,
                },
            ),
            ev(
                2,
                3,
                EventKind::Delegate {
                    from: t1,
                    to: t2,
                    objects: 5,
                },
            ),
        ];
        let g = CausalGraph::from_events(&trace);
        assert_eq!(g.edges.len(), 3);
        assert_eq!(g.permit_chain_max(), 2);
        assert_eq!(g.edges_labeled("delegate").len(), 1);
        assert_eq!(g.edges_labeled("permit").len(), 1);
    }

    #[test]
    fn prepare_and_decide_bound_the_in_doubt_window() {
        let t5 = Tid(5);
        let trace = vec![
            ev(0, 10, EventKind::PrepareForced { tid: t5, group: 2 }),
            ev(
                1,
                90,
                EventKind::DecideApplied {
                    tid: t5,
                    commit: true,
                    group: 2,
                },
            ),
        ];
        let g = CausalGraph::from_events(&trace);
        assert_eq!(g.in_doubt.len(), 1);
        let w = g.in_doubt[0];
        assert_eq!((w.start_ns, w.end_ns), (10, Some(90)));
        assert_eq!(w.commit, Some(true));
        assert_eq!(w.group, 2);
        let labels: Vec<&str> = g.tracks[&t5].milestones.iter().map(|m| m.1).collect();
        assert_eq!(labels, vec!["prepare-forced", "decide-commit"]);
    }

    #[test]
    fn merge_aligns_peer_clocks_from_handshake_pairs() {
        // Node 0 is the reference. Node 1's epoch is 100_000ns behind in
        // wall terms — its raw timestamps read 100_000ns higher. The
        // handshake: send@1000 → recv@103_000, reply@103_500 → ack@5000.
        // NTP midpoint: ((103000-1000)+(103500-5000))/2 = 100_250.
        let coord = CausalGraph::from_node_events(
            0,
            &[
                ev(
                    0,
                    1_000,
                    EventKind::MsgSend {
                        node: 1,
                        opcode: 0x40,
                        root: 9,
                    },
                ),
                ev(
                    1,
                    5_000,
                    EventKind::MsgAck {
                        node: 1,
                        opcode: 0x40,
                        root: 9,
                    },
                ),
            ],
        );
        let part = CausalGraph::from_node_events(
            1,
            &[
                ev(
                    0,
                    103_000,
                    EventKind::MsgRecv {
                        opcode: 0x40,
                        origin: 0,
                        root: 9,
                    },
                ),
                ev(
                    1,
                    103_500,
                    EventKind::MsgReply {
                        opcode: 0x40,
                        origin: 0,
                        root: 9,
                        status: 0,
                    },
                ),
            ],
        );
        let fleet = CausalGraph::merge(vec![coord, part]);
        assert_eq!(fleet.offsets, vec![(0, 0), (1, -100_250)]);
        // After alignment the participant's hops land inside the
        // coordinator's send→ack interval.
        let p = fleet.nodes.iter().find(|g| g.node == 1).unwrap();
        assert_eq!(p.msgs[0].at_ns, 2_750);
        assert_eq!(p.msgs[1].at_ns, 3_250);
        // Both flow legs matched, with causally-ordered endpoints.
        assert_eq!(fleet.flows.len(), 2);
        let req = fleet
            .flows
            .iter()
            .find(|f| f.kind == FlowKind::Request)
            .unwrap();
        assert_eq!((req.from_node, req.to_node), (0, 1));
        assert!(req.from_ns < req.to_ns);
        let resp = fleet
            .flows
            .iter()
            .find(|f| f.kind == FlowKind::Response)
            .unwrap();
        assert_eq!((resp.from_node, resp.to_node), (1, 0));
        assert!(resp.from_ns < resp.to_ns);
    }

    #[test]
    fn merge_without_handshakes_keeps_each_nodes_epoch() {
        let a = CausalGraph::from_node_events(0, &[ev(0, 10, EventKind::TxnBegin { tid: Tid(1) })]);
        let b = CausalGraph::from_node_events(3, &[ev(0, 20, EventKind::TxnBegin { tid: Tid(2) })]);
        let fleet = CausalGraph::merge(vec![a, b]);
        assert_eq!(fleet.offsets, vec![(0, 0), (3, 0)]);
        assert!(fleet.flows.is_empty());
        assert_eq!(fleet.nodes[1].tracks[&Tid(2)].begin_ns, Some(20));
    }

    #[test]
    fn storage_events_go_to_the_storage_lane() {
        let trace = vec![
            ev(
                0,
                50,
                EventKind::LogFlush {
                    bytes: 128,
                    dur_ns: 20,
                },
            ),
            ev(1, 60, EventKind::LatchSpin { spins: 4 }),
        ];
        let g = CausalGraph::from_events(&trace);
        assert!(g.tracks.is_empty());
        assert_eq!(g.storage.len(), 2);
        assert_eq!(g.storage[0].start_ns, 30);
    }
}

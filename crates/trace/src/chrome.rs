//! Chrome trace-event JSON export (Perfetto / `chrome://tracing` loadable).
//!
//! The layout maps the causal graph onto the trace-event model:
//!
//! * one **track** per transaction (`pid` 1, `tid` = the raw ASSET tid),
//!   named by an `"M"` (metadata) `thread_name` record — `t<id> [model]`;
//! * the transaction lifetime and each sub-span become `"X"` (complete)
//!   events with microsecond `ts`/`dur`;
//! * every causal edge (delegate, permit, permit-through, CD/AD/GC
//!   dependency, group-commit fan-out) becomes an `"s"`/`"f"` **flow
//!   event** pair, so Perfetto draws an arrow from the source track to the
//!   destination track;
//! * milestones (model tags, deadlock victimhood, ambiguous commits)
//!   become `"i"` instant events;
//! * storage activity (log flushes, latch spins) lands on a dedicated
//!   track with `tid` 0.
//!
//! All timestamps are nanoseconds-since-`Obs`-epoch converted to
//! fractional microseconds (`ns / 1000.0`, three decimals), which keeps
//! sub-microsecond spans visible.

use crate::span::{CausalGraph, EdgeKind, Outcome, SpanKind, Track};
use asset_common::Tid;
use std::fmt::Write as _;

/// Emulated process id for all ASSET tracks.
const PID: u64 = 1;
/// Track id for storage-lane events (no real transaction owns them).
const STORAGE_TID: u64 = 0;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Minimal JSON string escaping for the labels we generate (labels are
/// ASCII identifiers plus `[`/`]`/`-`; this covers the general case
/// anyway).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn track_name(t: &Track) -> String {
    match t.model {
        Some(m) => format!("t{} [{:?}]", t.tid.raw(), m),
        None => format!("t{}", t.tid.raw()),
    }
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str("  ");
    out.push_str(body);
}

fn meta_thread(out: &mut String, first: &mut bool, tid: u64, name: &str, sort: u64) {
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"M","pid":{PID},"tid":{tid},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            esc(name)
        ),
    );
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"M","pid":{PID},"tid":{tid},"name":"thread_sort_index","args":{{"sort_index":{sort}}}}}"#
        ),
    );
}

fn complete(
    out: &mut String,
    first: &mut bool,
    tid: u64,
    name: &str,
    ts_ns: u64,
    dur_ns: u64,
    args: &str,
) {
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"X","pid":{PID},"tid":{tid},"name":"{}","cat":"asset","ts":{:.3},"dur":{:.3},"args":{{{args}}}}}"#,
            esc(name),
            us(ts_ns),
            us(dur_ns),
        ),
    );
}

fn instant(out: &mut String, first: &mut bool, tid: u64, name: &str, ts_ns: u64) {
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"i","pid":{PID},"tid":{tid},"name":"{}","cat":"asset","ts":{:.3},"s":"t"}}"#,
            esc(name),
            us(ts_ns),
        ),
    );
}

fn flow(out: &mut String, first: &mut bool, id: u64, name: &str, from: Tid, to: Tid, at_ns: u64) {
    // The flow-start sits on the source track at the edge timestamp; the
    // flow-finish lands on the destination track 1ns later so viewers have
    // a strictly positive arrow length.
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"s","pid":{PID},"tid":{},"id":{id},"name":"{}","cat":"asset-edge","ts":{:.3}}}"#,
            from.raw(),
            esc(name),
            us(at_ns),
        ),
    );
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"f","pid":{PID},"tid":{},"id":{id},"name":"{}","cat":"asset-edge","ts":{:.3},"bp":"e"}}"#,
            to.raw(),
            esc(name),
            us(at_ns) + 0.001,
        ),
    );
}

fn edge_args(kind: &EdgeKind) -> String {
    match kind {
        EdgeKind::Delegate { objects } => format!("delegate ({objects} objects)"),
        EdgeKind::PermitGrant { objects } => {
            if *objects == 0 {
                "permit (all objects)".to_string()
            } else {
                format!("permit ({objects} objects)")
            }
        }
        EdgeKind::PermitUsed { chain } => format!("permit-through (chain {chain})"),
        EdgeKind::Dep(d) => format!("form_dependency {d:?}"),
        EdgeKind::CommitGroup => "group-commit".to_string(),
    }
}

fn span_args(kind: &SpanKind) -> String {
    match kind {
        SpanKind::LockWait {
            ob,
            stripe,
            queue_depth,
        } => format!(
            r#""ob":{},"stripe":{stripe},"queue_depth":{queue_depth}"#,
            ob.raw()
        ),
        SpanKind::LatchSpin { spins } => format!(r#""spins":{spins}"#),
        SpanKind::LogFlush { bytes } => format!(r#""bytes":{bytes}"#),
        SpanKind::FlushWindow {
            window,
            records,
            bytes,
        } => format!(r#""window":{window},"records":{records},"bytes":{bytes}"#),
        SpanKind::Named(_) => String::new(),
    }
}

/// Render a [`CausalGraph`] as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form).
///
/// Load the result in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`: each transaction is a named track, causal edges are
/// flow arrows between tracks.
pub fn render(g: &CausalGraph) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;

    // Track metadata: storage lane first, then one thread per transaction.
    if !g.storage.is_empty() {
        meta_thread(&mut out, &mut first, STORAGE_TID, "storage", 0);
    }
    for (i, t) in g.tracks.values().enumerate() {
        meta_thread(
            &mut out,
            &mut first,
            t.tid.raw(),
            &track_name(t),
            i as u64 + 1,
        );
    }

    // Transaction lifetime + sub-spans + milestones.
    for t in g.tracks.values() {
        let start = t.first_ns();
        let end = t.last_ns().max(start);
        let name = format!("txn {} ({})", t.tid.raw(), t.outcome.label());
        let args = format!(
            r#""tid":{},"parent":{},"outcome":"{}""#,
            t.tid.raw(),
            t.parent.raw(),
            t.outcome.label()
        );
        if t.outcome != Outcome::Open || t.begin_ns.is_some() {
            complete(
                &mut out,
                &mut first,
                t.tid.raw(),
                &name,
                start,
                end - start,
                &args,
            );
        }
        for s in &t.spans {
            complete(
                &mut out,
                &mut first,
                t.tid.raw(),
                s.kind.label(),
                s.start_ns,
                s.end_ns.saturating_sub(s.start_ns),
                &span_args(&s.kind),
            );
        }
        for (at, label) in &t.milestones {
            instant(&mut out, &mut first, t.tid.raw(), label, *at);
        }
    }

    // Storage lane.
    for s in &g.storage {
        complete(
            &mut out,
            &mut first,
            STORAGE_TID,
            s.kind.label(),
            s.start_ns,
            s.end_ns.saturating_sub(s.start_ns),
            &span_args(&s.kind),
        );
    }

    // Causal edges as flow pairs. Flow ids must be unique per arrow; the
    // ring sequence number of the underlying event is exactly that.
    for e in &g.edges {
        flow(
            &mut out,
            &mut first,
            e.seq,
            &edge_args(&e.kind),
            e.from,
            e.to,
            e.at_ns,
        );
    }

    // Commit flows onto shared flush windows: the arrow leaves the
    // committer's track and lands on the storage lane, so several
    // transactions' commits visibly terminate on one flush-window span.
    for f in &g.flush_flows {
        flow(
            &mut out,
            &mut first,
            f.seq,
            &format!("commit-flush (window {})", f.window),
            f.tid,
            Tid(STORAGE_TID),
            f.at_ns,
        );
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use asset_common::DepType;
    use asset_obs::{Event, EventKind};

    fn ev(seq: u64, at_ns: u64, kind: EventKind) -> Event {
        Event { seq, at_ns, kind }
    }

    #[test]
    fn render_produces_valid_json_with_flows_and_tracks() {
        let (t1, t2) = (Tid(1), Tid(2));
        let trace = vec![
            ev(0, 1_000, EventKind::TxnBegin { tid: t1 }),
            ev(1, 2_000, EventKind::TxnBegin { tid: t2 }),
            ev(
                2,
                3_000,
                EventKind::Delegate {
                    from: t1,
                    to: t2,
                    objects: 2,
                },
            ),
            ev(
                3,
                4_000,
                EventKind::DepFormed {
                    kind: DepType::CD,
                    ti: t1,
                    tj: t2,
                },
            ),
            ev(4, 5_000, EventKind::TxnCommit { tid: t1, group: 1 }),
            ev(5, 6_000, EventKind::TxnCommit { tid: t2, group: 1 }),
            ev(
                6,
                7_000,
                EventKind::LogFlush {
                    bytes: 64,
                    dur_ns: 500,
                },
            ),
        ];
        let g = CausalGraph::from_events(&trace);
        let doc = render(&g);
        let v = json::parse(&doc).expect("chrome trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // Two tracks + storage lane named.
        let thread_names: Vec<&json::Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .collect();
        assert_eq!(thread_names.len(), 3);
        // Each causal edge is an s/f pair.
        let s_count = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
            .count();
        let f_count = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .count();
        assert_eq!(s_count, g.edges.len() + g.flush_flows.len());
        assert_eq!(f_count, g.edges.len() + g.flush_flows.len());
        assert!(s_count >= 2, "delegate + CD dep expected");
    }

    #[test]
    fn commit_flows_terminate_on_the_shared_flush_window() {
        let (t1, t2, t3) = (Tid(1), Tid(2), Tid(3));
        let mut trace = vec![
            ev(0, 1_000, EventKind::TxnBegin { tid: t1 }),
            ev(1, 1_100, EventKind::TxnBegin { tid: t2 }),
            ev(2, 1_200, EventKind::TxnBegin { tid: t3 }),
            ev(
                3,
                5_000,
                EventKind::FlushWindow {
                    window: 1,
                    records: 3,
                    bytes: 96,
                    dur_ns: 700,
                },
            ),
        ];
        for (seq, t) in [(4, t1), (5, t2), (6, t3)] {
            trace.push(ev(
                seq,
                5_000 + seq,
                EventKind::CommitFlushed { tid: t, window: 1 },
            ));
        }
        let g = CausalGraph::from_events(&trace);
        assert_eq!(g.flush_flows.len(), 3);
        assert!(g.flush_flows.iter().all(|f| f.window == 1));
        let doc = render(&g);
        let v = json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // One flush-window span on the storage lane (tid 0)...
        let windows: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("flush-window")
                    && e.get("ph").and_then(|p| p.as_str()) == Some("X")
            })
            .collect();
        assert_eq!(windows.len(), 1);
        // ...and three commit flows finishing on it.
        let finishes = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("f")
                    && e.get("name")
                        .and_then(|n| n.as_str())
                        .is_some_and(|n| n.starts_with("commit-flush"))
            })
            .count();
        assert_eq!(finishes, 3);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}

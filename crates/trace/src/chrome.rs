//! Chrome trace-event JSON export (Perfetto / `chrome://tracing` loadable).
//!
//! The layout maps the causal graph onto the trace-event model:
//!
//! * one **track** per transaction (`tid` = the raw ASSET tid), named by
//!   an `"M"` (metadata) `thread_name` record — `t<id> [model]`;
//! * the transaction lifetime and each sub-span become `"X"` (complete)
//!   events with microsecond `ts`/`dur`;
//! * every causal edge (delegate, permit, permit-through, CD/AD/GC
//!   dependency, group-commit fan-out) becomes an `"s"`/`"f"` **flow
//!   event** pair, so Perfetto draws an arrow from the source track to the
//!   destination track;
//! * milestones (model tags, deadlock victimhood, ambiguous commits)
//!   become `"i"` instant events;
//! * storage activity (log flushes, latch spins) lands on a dedicated
//!   track with `tid` 0, cross-node message hops on a `wire` track;
//! * participant in-doubt windows (§14.2) become `in-doubt` spans on the
//!   prepared transaction's track.
//!
//! [`render`] emits one graph as a single process (`pid` 1).
//! [`render_fleet`] emits a merged [`FleetGraph`] with **one process
//! lane per node** (`pid` = node id + 1, named by `process_name`
//! metadata) and the matched cross-node request/response flows as
//! `"s"`/`"f"` arrows between the nodes' wire tracks.
//!
//! All timestamps are nanoseconds-since-`Obs`-epoch converted to
//! fractional microseconds (`ns / 1000.0`, three decimals), which keeps
//! sub-microsecond spans visible.

use crate::span::{CausalGraph, EdgeKind, FleetGraph, FlowKind, MsgDir, Outcome, SpanKind, Track};
use std::fmt::Write as _;

/// Emulated process id for single-graph renders.
const PID: u64 = 1;
/// Track id for storage-lane events (no real transaction owns them).
const STORAGE_TID: u64 = 0;
/// Track id for the cross-node message lane of each node.
const WIRE_TID: u64 = u64::MAX;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Minimal JSON string escaping for the labels we generate (labels are
/// ASCII identifiers plus `[`/`]`/`-`; this covers the general case
/// anyway).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Human name of a §13.3 wire opcode for trace labels (kept in sync with
/// the server's `opcode` module by the trace-smoke CI check).
fn opname(op: u8) -> &'static str {
    match op {
        0x01 => "PING",
        0x02 => "HELLO",
        0x10 => "BEGIN",
        0x11 => "READ",
        0x12 => "WRITE",
        0x13 => "COMMIT",
        0x14 => "ABORT",
        0x20 => "DELEGATE",
        0x21 => "PERMIT",
        0x22 => "FORM_DEP",
        0x30 => "NEW_OID",
        0x31 => "MINT",
        0x32 => "SUM",
        0x33 => "STATS",
        0x40 => "PREPARE",
        0x41 => "PREPARED",
        0x42 => "COMMIT_DECIDE",
        0x43 => "ABORT_DECIDE",
        0x7F => "SHUTDOWN",
        _ => "OP",
    }
}

fn track_name(t: &Track) -> String {
    match t.model {
        Some(m) => format!("t{} [{:?}]", t.tid.raw(), m),
        None => format!("t{}", t.tid.raw()),
    }
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str("  ");
    out.push_str(body);
}

fn meta_thread(out: &mut String, first: &mut bool, pid: u64, tid: u64, name: &str, sort: u64) {
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            esc(name)
        ),
    );
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"thread_sort_index","args":{{"sort_index":{sort}}}}}"#
        ),
    );
}

fn meta_process(out: &mut String, first: &mut bool, pid: u64, name: &str) {
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_name","args":{{"name":"{}"}}}}"#,
            esc(name)
        ),
    );
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_sort_index","args":{{"sort_index":{pid}}}}}"#
        ),
    );
}

#[allow(clippy::too_many_arguments)]
fn complete(
    out: &mut String,
    first: &mut bool,
    pid: u64,
    tid: u64,
    name: &str,
    ts_ns: u64,
    dur_ns: u64,
    args: &str,
) {
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"X","pid":{pid},"tid":{tid},"name":"{}","cat":"asset","ts":{:.3},"dur":{:.3},"args":{{{args}}}}}"#,
            esc(name),
            us(ts_ns),
            us(dur_ns),
        ),
    );
}

fn instant(out: &mut String, first: &mut bool, pid: u64, tid: u64, name: &str, ts_ns: u64) {
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"i","pid":{pid},"tid":{tid},"name":"{}","cat":"asset","ts":{:.3},"s":"t"}}"#,
            esc(name),
            us(ts_ns),
        ),
    );
}

/// One flow arrow: `"s"` on `(from_pid, from_tid)` at `start_ns`, `"f"`
/// on `(to_pid, to_tid)` at `end_ns` (floored 1ns later so viewers have
/// a strictly positive arrow length). `cat` distinguishes intra-node
/// causal edges (`asset-edge`) from cross-node flows (`asset-flow`).
#[allow(clippy::too_many_arguments)]
fn flow(
    out: &mut String,
    first: &mut bool,
    id: u64,
    cat: &str,
    name: &str,
    from: (u64, u64),
    to: (u64, u64),
    start_ns: u64,
    end_ns: u64,
) {
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"s","pid":{},"tid":{},"id":{id},"name":"{}","cat":"{cat}","ts":{:.3}}}"#,
            from.0,
            from.1,
            esc(name),
            us(start_ns),
        ),
    );
    let end = (us(end_ns)).max(us(start_ns) + 0.001);
    push_event(
        out,
        first,
        &format!(
            r#"{{"ph":"f","pid":{},"tid":{},"id":{id},"name":"{}","cat":"{cat}","ts":{end:.3},"bp":"e"}}"#,
            to.0,
            to.1,
            esc(name),
        ),
    );
}

fn edge_args(kind: &EdgeKind) -> String {
    match kind {
        EdgeKind::Delegate { objects } => format!("delegate ({objects} objects)"),
        EdgeKind::PermitGrant { objects } => {
            if *objects == 0 {
                "permit (all objects)".to_string()
            } else {
                format!("permit ({objects} objects)")
            }
        }
        EdgeKind::PermitUsed { chain } => format!("permit-through (chain {chain})"),
        EdgeKind::Dep(d) => format!("form_dependency {d:?}"),
        EdgeKind::CommitGroup => "group-commit".to_string(),
    }
}

fn span_args(kind: &SpanKind) -> String {
    match kind {
        SpanKind::LockWait {
            ob,
            stripe,
            queue_depth,
        } => format!(
            r#""ob":{},"stripe":{stripe},"queue_depth":{queue_depth}"#,
            ob.raw()
        ),
        SpanKind::LatchSpin { spins } => format!(r#""spins":{spins}"#),
        SpanKind::LogFlush { bytes } => format!(r#""bytes":{bytes}"#),
        SpanKind::FlushWindow {
            window,
            records,
            bytes,
        } => format!(r#""window":{window},"records":{records},"bytes":{bytes}"#),
        SpanKind::Named(_) => String::new(),
    }
}

/// Render one graph's events into `out` under process `pid`, allocating
/// flow ids from `next_id` (flow ids bind `"s"` to `"f"` per category
/// document-wide, so they must be unique across every node of a fleet
/// render).
fn render_graph(out: &mut String, first: &mut bool, pid: u64, g: &CausalGraph, next_id: &mut u64) {
    // Track metadata: storage lane first, then one thread per
    // transaction, then the wire lane (if the node exchanged messages).
    if !g.storage.is_empty() {
        meta_thread(out, first, pid, STORAGE_TID, "storage", 0);
    }
    for (i, t) in g.tracks.values().enumerate() {
        meta_thread(out, first, pid, t.tid.raw(), &track_name(t), i as u64 + 1);
    }
    if !g.msgs.is_empty() {
        meta_thread(out, first, pid, WIRE_TID, "wire", g.tracks.len() as u64 + 1);
    }

    // Transaction lifetime + sub-spans + milestones.
    for t in g.tracks.values() {
        let start = t.first_ns();
        let end = t.last_ns().max(start);
        let name = format!("txn {} ({})", t.tid.raw(), t.outcome.label());
        let args = format!(
            r#""tid":{},"parent":{},"outcome":"{}""#,
            t.tid.raw(),
            t.parent.raw(),
            t.outcome.label()
        );
        if t.outcome != Outcome::Open || t.begin_ns.is_some() {
            complete(
                out,
                first,
                pid,
                t.tid.raw(),
                &name,
                start,
                end - start,
                &args,
            );
        }
        for s in &t.spans {
            complete(
                out,
                first,
                pid,
                t.tid.raw(),
                s.kind.label(),
                s.start_ns,
                s.end_ns.saturating_sub(s.start_ns),
                &span_args(&s.kind),
            );
        }
        for (at, label) in &t.milestones {
            instant(out, first, pid, t.tid.raw(), label, *at);
        }
    }

    // Participant in-doubt windows (§14.2) on the prepared txn's track.
    for w in &g.in_doubt {
        let end = w.end_ns.unwrap_or(w.start_ns);
        let args = format!(
            r#""group":{},"decision":"{}""#,
            w.group,
            match w.commit {
                Some(true) => "commit",
                Some(false) => "abort",
                None => "open",
            }
        );
        complete(
            out,
            first,
            pid,
            w.tid.raw(),
            "in-doubt",
            w.start_ns,
            end.saturating_sub(w.start_ns),
            &args,
        );
    }

    // Storage lane.
    for s in &g.storage {
        complete(
            out,
            first,
            pid,
            STORAGE_TID,
            s.kind.label(),
            s.start_ns,
            s.end_ns.saturating_sub(s.start_ns),
            &span_args(&s.kind),
        );
    }

    // Wire lane: every cross-node hop this node recorded.
    for m in &g.msgs {
        let dir = match m.dir {
            MsgDir::Send => "send",
            MsgDir::Ack => "ack",
            MsgDir::Recv => "recv",
            MsgDir::Reply => "reply",
        };
        let name = format!("{dir} {} root={} peer={}", opname(m.opcode), m.root, m.peer);
        instant(out, first, pid, WIRE_TID, &name, m.at_ns);
    }

    // Causal edges as flow pairs.
    for e in &g.edges {
        let id = *next_id;
        *next_id += 1;
        flow(
            out,
            first,
            id,
            "asset-edge",
            &edge_args(&e.kind),
            (pid, e.from.raw()),
            (pid, e.to.raw()),
            e.at_ns,
            e.at_ns,
        );
    }

    // Commit flows onto shared flush windows: the arrow leaves the
    // committer's track and lands on the storage lane, so several
    // transactions' commits visibly terminate on one flush-window span.
    for f in &g.flush_flows {
        let id = *next_id;
        *next_id += 1;
        flow(
            out,
            first,
            id,
            "asset-edge",
            &format!("commit-flush (window {})", f.window),
            (pid, f.tid.raw()),
            (pid, STORAGE_TID),
            f.at_ns,
            f.at_ns,
        );
    }
}

/// Render a [`CausalGraph`] as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form).
///
/// Load the result in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`: each transaction is a named track, causal edges are
/// flow arrows between tracks.
pub fn render(g: &CausalGraph) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    let mut next_id = 1u64;
    render_graph(&mut out, &mut first, PID, g, &mut next_id);
    out.push_str("\n]}\n");
    out
}

/// Render a merged [`FleetGraph`] as one Chrome trace-event document:
/// one process lane per node (named `node <id>`), each holding that
/// node's transaction/storage/wire tracks, plus `"s"`/`"f"` flow arrows
/// for every matched cross-node request and response
/// (`cat: "asset-flow"`) between the nodes' wire lanes.
pub fn render_fleet(f: &FleetGraph) -> String {
    let mut out = String::with_capacity(16384);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    let mut next_id = 1u64;
    for g in &f.nodes {
        let pid = node_pid(g.node);
        meta_process(&mut out, &mut first, pid, &format!("node {}", g.node));
        render_graph(&mut out, &mut first, pid, g, &mut next_id);
    }
    for fl in &f.flows {
        let leg = match fl.kind {
            FlowKind::Request => "request",
            FlowKind::Response => "response",
        };
        let id = next_id;
        next_id += 1;
        flow(
            &mut out,
            &mut first,
            id,
            "asset-flow",
            &format!("{} {leg} root={}", opname(fl.opcode), fl.root),
            (node_pid(fl.from_node), WIRE_TID),
            (node_pid(fl.to_node), WIRE_TID),
            fl.from_ns,
            fl.to_ns,
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Chrome `pid` of a fleet node (node ids start at 0; pid 0 renders
/// poorly in viewers, so lanes are numbered from 1).
fn node_pid(node: u32) -> u64 {
    node as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use asset_common::{DepType, Tid};
    use asset_obs::{Event, EventKind};

    fn ev(seq: u64, at_ns: u64, kind: EventKind) -> Event {
        Event { seq, at_ns, kind }
    }

    #[test]
    fn render_produces_valid_json_with_flows_and_tracks() {
        let (t1, t2) = (Tid(1), Tid(2));
        let trace = vec![
            ev(0, 1_000, EventKind::TxnBegin { tid: t1 }),
            ev(1, 2_000, EventKind::TxnBegin { tid: t2 }),
            ev(
                2,
                3_000,
                EventKind::Delegate {
                    from: t1,
                    to: t2,
                    objects: 2,
                },
            ),
            ev(
                3,
                4_000,
                EventKind::DepFormed {
                    kind: DepType::CD,
                    ti: t1,
                    tj: t2,
                },
            ),
            ev(4, 5_000, EventKind::TxnCommit { tid: t1, group: 1 }),
            ev(5, 6_000, EventKind::TxnCommit { tid: t2, group: 1 }),
            ev(
                6,
                7_000,
                EventKind::LogFlush {
                    bytes: 64,
                    dur_ns: 500,
                },
            ),
        ];
        let g = CausalGraph::from_events(&trace);
        let doc = render(&g);
        let v = json::parse(&doc).expect("chrome trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // Two tracks + storage lane named.
        let thread_names: Vec<&json::Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .collect();
        assert_eq!(thread_names.len(), 3);
        // Each causal edge is an s/f pair.
        let s_count = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
            .count();
        let f_count = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .count();
        assert_eq!(s_count, g.edges.len() + g.flush_flows.len());
        assert_eq!(f_count, g.edges.len() + g.flush_flows.len());
        assert!(s_count >= 2, "delegate + CD dep expected");
    }

    #[test]
    fn commit_flows_terminate_on_the_shared_flush_window() {
        let (t1, t2, t3) = (Tid(1), Tid(2), Tid(3));
        let mut trace = vec![
            ev(0, 1_000, EventKind::TxnBegin { tid: t1 }),
            ev(1, 1_100, EventKind::TxnBegin { tid: t2 }),
            ev(2, 1_200, EventKind::TxnBegin { tid: t3 }),
            ev(
                3,
                5_000,
                EventKind::FlushWindow {
                    window: 1,
                    records: 3,
                    bytes: 96,
                    dur_ns: 700,
                },
            ),
        ];
        for (seq, t) in [(4, t1), (5, t2), (6, t3)] {
            trace.push(ev(
                seq,
                5_000 + seq,
                EventKind::CommitFlushed { tid: t, window: 1 },
            ));
        }
        let g = CausalGraph::from_events(&trace);
        assert_eq!(g.flush_flows.len(), 3);
        assert!(g.flush_flows.iter().all(|f| f.window == 1));
        let doc = render(&g);
        let v = json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // One flush-window span on the storage lane (tid 0)...
        let windows: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("flush-window")
                    && e.get("ph").and_then(|p| p.as_str()) == Some("X")
            })
            .collect();
        assert_eq!(windows.len(), 1);
        // ...and three commit flows finishing on it.
        let finishes = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("f")
                    && e.get("name")
                        .and_then(|n| n.as_str())
                        .is_some_and(|n| n.starts_with("commit-flush"))
            })
            .count();
        assert_eq!(finishes, 3);
    }

    #[test]
    fn fleet_render_has_a_process_lane_per_node_and_cross_node_flows() {
        let coord = CausalGraph::from_node_events(
            0,
            &[
                ev(
                    0,
                    1_000,
                    EventKind::MsgSend {
                        node: 1,
                        opcode: 0x40,
                        root: 7,
                    },
                ),
                ev(
                    1,
                    5_000,
                    EventKind::MsgAck {
                        node: 1,
                        opcode: 0x40,
                        root: 7,
                    },
                ),
            ],
        );
        let part = CausalGraph::from_node_events(
            1,
            &[
                ev(
                    0,
                    2_000,
                    EventKind::MsgRecv {
                        opcode: 0x40,
                        origin: 0,
                        root: 7,
                    },
                ),
                ev(
                    1,
                    3_000,
                    EventKind::MsgReply {
                        opcode: 0x40,
                        origin: 0,
                        root: 7,
                        status: 0,
                    },
                ),
            ],
        );
        let fleet = CausalGraph::merge(vec![coord, part]);
        assert_eq!(fleet.flows.len(), 2, "request + response flow");
        let doc = render_fleet(&fleet);
        let v = json::parse(&doc).expect("fleet trace must be valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let process_names: Vec<String> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
            .collect();
        assert_eq!(process_names, vec!["node 0", "node 1"]);
        // One s/f pair per cross-node flow, in the asset-flow category,
        // and the PREPARE request goes node 0 → node 1.
        let flows: Vec<&json::Value> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("asset-flow"))
            .collect();
        assert_eq!(flows.len(), 4);
        let req_start = flows
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("s")
                    && e.get("name")
                        .and_then(|n| n.as_str())
                        .is_some_and(|n| n.starts_with("PREPARE request"))
            })
            .expect("request flow start");
        assert_eq!(req_start.get("pid").and_then(|p| p.as_f64()), Some(1.0));
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}

#![cfg(loom)]
//! Loom model checks for the sharded lock table — the real
//! [`asset_lock::LockTable`] with two stripes, not a mirror. These
//! exercise the grant/wait/notify protocol (`table.rs`) on loom-tracked
//! mutexes and condvars, so a lost wakeup in `release_all`'s handover
//! shows up as a model deadlock in every CI run, not a flaky hang.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p asset-lock --test
//! loom_stripes --release`.

use asset_common::{Oid, Operation, Tid};
use asset_lock::LockTable;
use loom::sync::Arc;
use loom::thread;

#[test]
fn release_hands_the_lock_to_a_blocked_waiter() {
    loom::model(|| {
        let table = Arc::new(LockTable::with_shards(2));
        table
            .lock(Tid(1), Oid(1), Operation::Write, None)
            .expect("uncontended grant");
        let waiter = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                // Blocks until Tid(1) releases; a lost notify deadlocks
                // the model and fails the test.
                table
                    .lock(Tid(2), Oid(1), Operation::Write, None)
                    .expect("granted after release");
                table.release_all(Tid(2));
            })
        };
        table.release_all(Tid(1));
        waiter.join().unwrap();
    });
}

#[test]
fn distinct_objects_on_two_stripes_do_not_interfere() {
    loom::model(|| {
        let table = Arc::new(LockTable::with_shards(2));
        let handles: Vec<_> = [Tid(1), Tid(2)]
            .into_iter()
            .map(|tid| {
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let ob = Oid(tid.raw());
                    table
                        .lock(tid, ob, Operation::Write, None)
                        .expect("uncontended grant on own object");
                    assert_eq!(table.locked_objects(tid), vec![ob]);
                    table.release_all(tid);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn readers_share_while_a_writer_waits() {
    loom::model(|| {
        let table = Arc::new(LockTable::with_shards(2));
        table
            .lock(Tid(1), Oid(1), Operation::Read, None)
            .expect("first reader");
        let writer = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                table
                    .lock(Tid(3), Oid(1), Operation::Write, None)
                    .expect("writer granted once readers drain");
                table.release_all(Tid(3));
            })
        };
        table
            .lock(Tid(2), Oid(1), Operation::Read, None)
            .expect("second reader shares");
        table.release_all(Tid(2));
        table.release_all(Tid(1));
        writer.join().unwrap();
    });
}

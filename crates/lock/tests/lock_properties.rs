//! Property and stress tests for the lock manager.
//!
//! The central invariant of §4.2: at no time may two *unsuspended* granted
//! locks on the same object conflict. Permits relax blocking, but the
//! suspension machinery must preserve that invariant.

use asset_common::{AssetError, ObSet, Oid, OpSet, Operation, Tid};
use asset_lock::LockTable;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// After any sequence of operations, no two unsuspended granted locks on
/// one object conflict.
fn check_invariant(table: &LockTable, oids: &[Oid]) -> Result<(), String> {
    for &ob in oids {
        let holders = table.holders(ob);
        for (i, a) in holders.iter().enumerate() {
            for b in holders.iter().skip(i + 1) {
                if !a.suspended && !b.suspended && a.mode.conflicts(b.mode) {
                    return Err(format!(
                        "conflicting unsuspended locks on {ob}: {a:?} vs {b:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[derive(Clone, Debug)]
enum LockOp {
    Lock(u64, u64, bool), // tid, oid, write?
    Release(u64),
    Permit(u64, u64, u64), // grantor, grantee, oid
    Delegate(u64, u64),    // from, to (all objects)
}

fn arb_lock_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (1u64..6, 1u64..8, any::<bool>()).prop_map(|(t, o, w)| LockOp::Lock(t, o, w)),
        (1u64..6).prop_map(LockOp::Release),
        (1u64..6, 1u64..6, 1u64..8).prop_map(|(a, b, o)| LockOp::Permit(a, b, o)),
        (1u64..6, 1u64..6).prop_map(|(a, b)| LockOp::Delegate(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random single-threaded op sequences never violate the granted-lock
    /// invariant (failed/blocked acquisitions simply error with the tiny
    /// timeout — that is fine; the invariant is about what is *granted*).
    #[test]
    fn no_conflicting_unsuspended_grants(ops in proptest::collection::vec(arb_lock_op(), 0..60)) {
        let table = LockTable::new();
        let oids: Vec<Oid> = (1..8).map(Oid).collect();
        for op in ops {
            match op {
                LockOp::Lock(t, o, w) => {
                    let op_kind = if w { Operation::Write } else { Operation::Read };
                    let _ = table.lock(Tid(t), Oid(o), op_kind, Some(Duration::from_millis(1)));
                }
                LockOp::Release(t) => {
                    table.release_all(Tid(t));
                }
                LockOp::Permit(a, b, o) => {
                    if a != b {
                        table.permit(Tid(a), Some(Tid(b)), ObSet::one(Oid(o)), OpSet::ALL);
                    }
                }
                LockOp::Delegate(a, b) => {
                    if a != b {
                        table.delegate(Tid(a), Tid(b), None);
                    }
                }
            }
            if let Err(msg) = check_invariant(&table, &oids) {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    /// Delegation preserves the total set of (object, mode) grants —
    /// nothing is lost or duplicated, only re-owned (modes may merge).
    #[test]
    fn delegation_conserves_objects(
        locks in proptest::collection::vec((1u64..5, 1u64..10), 0..20),
        from in 1u64..5,
        to in 1u64..5,
    ) {
        prop_assume!(from != to);
        let table = LockTable::new();
        for (t, o) in &locks {
            let _ = table.lock(Tid(*t), Oid(*o), Operation::Write, Some(Duration::from_millis(1)));
        }
        let before: usize = (1..10)
            .map(|o| table.holders(Oid(o)).iter().filter(|l| !l.suspended).count())
            .sum();
        let from_objects = table.locked_objects(Tid(from)).len();
        let to_objects_before = table.locked_objects(Tid(to)).len();
        table.delegate(Tid(from), Tid(to), None);
        prop_assert!(table.locked_objects(Tid(from)).is_empty());
        let to_objects_after = table.locked_objects(Tid(to)).len();
        // objects may merge when both held a lock on the same oid
        prop_assert!(to_objects_after <= from_objects + to_objects_before);
        prop_assert!(to_objects_after >= from_objects.max(to_objects_before));
        let after: usize = (1..10)
            .map(|o| table.holders(Oid(o)).iter().filter(|l| !l.suspended).count())
            .sum();
        prop_assert!(after <= before);
    }
}

#[test]
fn poison_wakes_a_blocked_waiter() {
    let table = Arc::new(LockTable::new());
    table.lock(Tid(1), Oid(1), Operation::Write, None).unwrap();
    let t2 = Arc::clone(&table);
    let h = std::thread::spawn(move || {
        t2.lock(
            Tid(2),
            Oid(1),
            Operation::Write,
            Some(Duration::from_secs(10)),
        )
    });
    std::thread::sleep(Duration::from_millis(30));
    let start = std::time::Instant::now();
    table.poison(Tid(2));
    let err = h.join().unwrap().unwrap_err();
    assert!(matches!(err, AssetError::TxnAborted(Tid(2))));
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "woke promptly, not by timeout"
    );
    // release_all clears the poison: tid 2 can lock again afterwards
    table.release_all(Tid(1));
    table.release_all(Tid(2));
    table
        .lock(
            Tid(2),
            Oid(1),
            Operation::Write,
            Some(Duration::from_millis(100)),
        )
        .unwrap();
}

#[test]
fn three_way_deadlock_detected() {
    let table = Arc::new(LockTable::new());
    table.lock(Tid(1), Oid(1), Operation::Write, None).unwrap();
    table.lock(Tid(2), Oid(2), Operation::Write, None).unwrap();
    table.lock(Tid(3), Oid(3), Operation::Write, None).unwrap();
    let t_a = Arc::clone(&table);
    let h1 = std::thread::spawn(move || {
        t_a.lock(
            Tid(1),
            Oid(2),
            Operation::Write,
            Some(Duration::from_secs(5)),
        )
    });
    std::thread::sleep(Duration::from_millis(20));
    let t_b = Arc::clone(&table);
    let h2 = std::thread::spawn(move || {
        t_b.lock(
            Tid(2),
            Oid(3),
            Operation::Write,
            Some(Duration::from_secs(5)),
        )
    });
    std::thread::sleep(Duration::from_millis(20));
    // closing the cycle: t3 → ob1 held by t1 (t1 → t2 → t3 → t1)
    let err = table
        .lock(
            Tid(3),
            Oid(1),
            Operation::Write,
            Some(Duration::from_secs(5)),
        )
        .unwrap_err();
    assert!(matches!(err, AssetError::Deadlock(Tid(3))));
    // aborting the victim (releasing its locks) lets the others finish
    table.release_all(Tid(3));
    h2.join().unwrap().unwrap();
    table.release_all(Tid(2));
    h1.join().unwrap().unwrap();
}

#[test]
fn readers_stream_past_each_other_under_load() {
    let table = Arc::new(LockTable::new());
    let mut handles = vec![];
    for t in 1..=8u64 {
        let table = Arc::clone(&table);
        handles.push(std::thread::spawn(move || {
            for o in 1..=50u64 {
                table.lock(Tid(t), Oid(o), Operation::Read, None).unwrap();
            }
            table.release_all(Tid(t));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(table.stats().deadlocks, 0);
    assert_eq!(table.stats().timeouts, 0);
}

#[test]
fn suspended_lock_regrant_cycles_under_stress() {
    // two holders ping-pong a write lock via mutual permits, thousands of
    // times, from two real threads; the invariant holds throughout and
    // both make progress
    let table = Arc::new(LockTable::new());
    table.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
    table.permit(Tid(2), Some(Tid(1)), ObSet::one(Oid(1)), OpSet::ALL);
    let mut handles = vec![];
    for t in [1u64, 2] {
        let table = Arc::clone(&table);
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                table.lock(Tid(t), Oid(1), Operation::Write, None).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let holders = table.holders(Oid(1));
    let unsuspended = holders.iter().filter(|l| !l.suspended).count();
    assert!(
        unsuspended <= 1,
        "at most one unsuspended writer at the end"
    );
    assert!(table.stats().suspensions > 0);
}

//! Sharding must be invisible: a `LockTable` with 1, 2 or 64 shards has to
//! produce identical grant/block/suspension/deadlock behaviour — the stripe
//! count is a performance knob, never a semantics knob.
//!
//! A deterministic scripted workload (seeded LCG, no external crates) is
//! replayed against each shard count and the full observable trace is
//! compared byte-for-byte; threaded stress tests then check mutual
//! exclusion and deadlock detection at every shard count.

use asset_common::{AssetError, LockMode, ObSet, Oid, OpSet, Operation, Tid};
use asset_lock::LockTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARD_COUNTS: [usize; 3] = [1, 2, 64];

/// Minimal deterministic RNG (SplitMix-style) — no dependency on `rand`.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Replay a seeded single-threaded script of lock-manager operations and
/// record every observable outcome. Sorted where the API's ordering is
/// explicitly unspecified (released-object lists, blocker lists).
fn run_script(shards: usize, seed: u64, steps: usize) -> Vec<String> {
    const TIDS: u64 = 6;
    const OIDS: u64 = 12;
    let t = LockTable::with_shards(shards);
    let mut rng = Lcg(seed);
    let mut trace = Vec::new();
    for step in 0..steps {
        let tid = Tid(1 + rng.next() % TIDS);
        let oid = Oid(1 + rng.next() % OIDS);
        match rng.next() % 10 {
            0..=3 => {
                let op = if rng.next().is_multiple_of(2) {
                    Operation::Read
                } else {
                    Operation::Write
                };
                match t.try_lock(tid, oid, op) {
                    Ok(()) => trace.push(format!("{step}: grant {tid} {oid} {op:?}")),
                    Err(mut blockers) => {
                        blockers.sort_by_key(|b| b.raw());
                        trace.push(format!("{step}: block {tid} {oid} {op:?} by {blockers:?}"));
                    }
                }
            }
            4 => {
                let grantee = Tid(1 + rng.next() % TIDS);
                t.permit(tid, Some(grantee), ObSet::one(oid), OpSet::ALL);
                trace.push(format!("{step}: permit -> {}", t.permit_count()));
            }
            5 => {
                // wildcard-object permit: exercises the global table on
                // multi-shard configurations
                t.permit(tid, None, ObSet::All, OpSet::READ);
                trace.push(format!("{step}: wildcard-permit -> {}", t.permit_count()));
            }
            6 => {
                // cross-shard scope: two objects that land in different
                // shards whenever shards > 1
                let other = Oid(1 + rng.next() % OIDS);
                let grantee = Tid(1 + rng.next() % TIDS);
                t.permit(
                    tid,
                    Some(grantee),
                    ObSet::from_slice(&[oid, other]),
                    OpSet::WRITE,
                );
                trace.push(format!("{step}: span-permit -> {}", t.permit_count()));
            }
            7 => {
                let to = Tid(1 + rng.next() % TIDS);
                t.delegate(tid, to, None);
                trace.push(format!("{step}: delegate {tid} -> {to}"));
            }
            8 => {
                let mut released = t.release_all(tid);
                released.sort_by_key(|o| o.raw());
                trace.push(format!("{step}: release {tid} {released:?}"));
            }
            _ => {
                trace.push(format!(
                    "{step}: holds {tid} {oid} = {}",
                    t.holds(tid, oid, LockMode::Write)
                ));
            }
        }
    }
    // final-state digest: per-object holder lists and counters
    for o in 1..=OIDS {
        let mut h: Vec<(u64, LockMode, bool)> = t
            .holders(Oid(o))
            .into_iter()
            .map(|l| (l.tid.raw(), l.mode, l.suspended))
            .collect();
        h.sort_by_key(|(tid, ..)| *tid);
        trace.push(format!("holders {o}: {h:?}"));
    }
    trace.push(format!("permits: {}", t.permit_count()));
    let s = t.stats();
    trace.push(format!(
        "grants: {} suspensions: {}",
        s.grants, s.suspensions
    ));
    trace
}

#[test]
fn scripted_traces_identical_across_shard_counts() {
    for seed in [1u64, 7, 42, 1337, 99999] {
        let reference = run_script(1, seed, 400);
        for shards in [2usize, 64] {
            let trace = run_script(shards, seed, 400);
            assert_eq!(
                trace, reference,
                "seed {seed}: shards={shards} diverged from shards=1"
            );
        }
    }
}

#[test]
fn suspension_semantics_identical_at_every_shard_count() {
    for shards in SHARD_COUNTS {
        let t = LockTable::with_shards(shards);
        t.lock(Tid(1), Oid(1), Operation::Write, None).unwrap();
        // wildcard permit goes through the global table when sharded
        t.permit(Tid(1), Some(Tid(2)), ObSet::All, OpSet::ALL);
        t.lock(
            Tid(2),
            Oid(1),
            Operation::Write,
            Some(Duration::from_millis(200)),
        )
        .unwrap();
        let holders = t.holders(Oid(1));
        assert!(
            holders.iter().any(|l| l.tid == Tid(1) && l.suspended),
            "shards={shards}: permitting holder suspended"
        );
        assert!(
            t.holds(Tid(2), Oid(1), LockMode::Write),
            "shards={shards}: permitted requester holds"
        );
        // unpermitted third party still blocks
        let err = t
            .lock(
                Tid(3),
                Oid(1),
                Operation::Write,
                Some(Duration::from_millis(50)),
            )
            .unwrap_err();
        assert!(
            matches!(err, AssetError::LockTimeout { .. }),
            "shards={shards}: unpermitted writer must time out"
        );
    }
}

#[test]
fn deadlock_detected_at_every_shard_count() {
    for shards in SHARD_COUNTS {
        let t = Arc::new(LockTable::with_shards(shards));
        t.lock(Tid(1), Oid(1), Operation::Write, None).unwrap();
        t.lock(Tid(2), Oid(2), Operation::Write, None).unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.lock(
                Tid(1),
                Oid(2),
                Operation::Write,
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(30));
        let err = t
            .lock(
                Tid(2),
                Oid(1),
                Operation::Write,
                Some(Duration::from_secs(5)),
            )
            .unwrap_err();
        assert!(
            matches!(err, AssetError::Deadlock(Tid(2))),
            "shards={shards}: second requester is the deadlock victim"
        );
        t.release_all(Tid(2));
        h.join().unwrap().unwrap();
        assert_eq!(t.stats().deadlocks, 1, "shards={shards}");
    }
}

#[test]
fn stress_disjoint_objects_never_block() {
    // 16 threads on disjoint key ranges: with per-object striping there is
    // nothing to contend on — every acquisition must be an immediate grant.
    const THREADS: u64 = 16;
    const ITERS: u64 = 300;
    const OBJS: u64 = 8;
    for shards in SHARD_COUNTS {
        let t = Arc::new(LockTable::with_shards(shards));
        let mut handles = Vec::new();
        for i in 0..THREADS {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let tid = Tid(i + 1);
                for round in 0..ITERS {
                    for k in 0..OBJS {
                        let ob = Oid(1_000 * (i + 1) + k);
                        t.lock(tid, ob, Operation::Write, None).unwrap();
                        let _ = round;
                    }
                    t.release_all(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = t.stats();
        assert_eq!(s.grants, THREADS * ITERS * OBJS, "shards={shards}");
        assert_eq!(s.blocks, 0, "shards={shards}: disjoint keys never block");
        assert_eq!(s.deadlocks, 0, "shards={shards}");
    }
}

#[test]
fn stress_overlapping_objects_stay_mutually_exclusive() {
    // 16 threads hammer 4 shared objects. Mutual exclusion is proven with
    // a CAS-claimed owner word per object: if two unsuspended write locks
    // ever coexisted, a claim would observe a non-zero owner.
    const THREADS: u64 = 16;
    const TARGET: u64 = 60;
    const OBJS: usize = 4;
    for shards in SHARD_COUNTS {
        let t = Arc::new(LockTable::with_shards(shards));
        let owners: Arc<Vec<AtomicU64>> = Arc::new((0..OBJS).map(|_| AtomicU64::new(0)).collect());
        let done = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for i in 0..THREADS {
            let t = Arc::clone(&t);
            let owners = Arc::clone(&owners);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let tid = Tid(i + 1);
                let mut rng = Lcg(i + 1);
                let mut completed = 0u64;
                while completed < TARGET {
                    let k = (rng.next() as usize) % OBJS;
                    let ob = Oid(k as u64 + 1);
                    match t.lock(tid, ob, Operation::Write, Some(Duration::from_secs(10))) {
                        Ok(()) => {
                            let claimed = owners[k]
                                .compare_exchange(0, tid.raw(), Ordering::AcqRel, Ordering::Acquire)
                                .is_ok();
                            assert!(claimed, "two write locks coexisted on {ob}");
                            owners[k].store(0, Ordering::Release);
                            t.release_all(tid);
                            completed += 1;
                        }
                        Err(AssetError::Deadlock(_)) | Err(AssetError::LockTimeout { .. }) => {
                            // victim backs off, drops everything, retries
                            t.release_all(tid);
                        }
                        Err(e) => panic!("unexpected lock error: {e:?}"),
                    }
                }
                done.fetch_add(completed, Ordering::Relaxed);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            done.load(Ordering::Relaxed),
            THREADS * TARGET,
            "shards={shards}: every thread completed its quota"
        );
        // quiesced: no locks left behind
        for k in 0..OBJS {
            assert!(t.holders(Oid(k as u64 + 1)).is_empty(), "shards={shards}");
        }
    }
}

#[test]
fn release_all_spans_shards() {
    for shards in SHARD_COUNTS {
        let t = LockTable::with_shards(shards);
        let obs: Vec<Oid> = (1..=200).map(Oid).collect();
        for ob in &obs {
            t.lock(Tid(1), *ob, Operation::Write, None).unwrap();
        }
        assert_eq!(t.locked_objects(Tid(1)).len(), obs.len(), "shards={shards}");
        let mut released = t.release_all(Tid(1));
        released.sort_by_key(|o| o.raw());
        assert_eq!(released, obs, "shards={shards}: everything released");
        for ob in &obs {
            assert!(t.holders(*ob).is_empty(), "shards={shards}");
        }
    }
}

#[test]
fn cross_shard_permit_chain_grants() {
    // t1 -> t2 permit lives in one shard, t2 -> t3 spans two shards (global
    // table); the transitive closure must stitch them at any shard count.
    for shards in SHARD_COUNTS {
        let t = LockTable::with_shards(shards);
        t.lock(Tid(1), Oid(17), Operation::Write, None).unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(17)), OpSet::ALL);
        t.permit(
            Tid(2),
            Some(Tid(3)),
            ObSet::from_slice(&[Oid(17), Oid(18)]),
            OpSet::ALL,
        );
        t.lock(
            Tid(3),
            Oid(17),
            Operation::Write,
            Some(Duration::from_millis(200)),
        )
        .unwrap();
        assert!(t.holds(Tid(3), Oid(17), LockMode::Write), "shards={shards}");
    }
}

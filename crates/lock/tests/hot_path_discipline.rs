//! Regression guard for the stripe-mutex hot-path discipline (DESIGN.md
//! §7): no clock read and no histogram update may happen while a stripe
//! mutex is held on the lock/requeue path.
//!
//! The discipline is structural, so the guard is structural too: the test
//! scans `src/table.rs` (compiled into the test binary via `include_str!`,
//! so it always sees the sources it was built from) and asserts the two
//! regressions this PR removed cannot silently come back:
//!
//! 1. `attempt()` — the shard-local grant attempt, always called with the
//!    stripe mutex held — must not touch `Instant::now` or record into any
//!    histogram; it hands chain depths out through the `chains` out-param.
//! 2. In `lock()`'s retry loop, the wait-start `Instant::now()` must only
//!    run after `drop(inner)` releases the stripe guard.
//!
//! A behavioral companion checks the wait metrics still arrive.

use asset_common::{AssetError, Oid, Operation, Tid};
use asset_lock::LockTable;
use std::time::Duration;

const TABLE_SRC: &str = include_str!("../src/table.rs");

/// The body of one `fn name(` item, up to the next top-level method of the
/// impl block (crude but stable: methods in table.rs are separated by
/// `\n    /// ` doc comments or `\n    pub fn ` / `\n    fn ` at 4-space
/// indent).
fn fn_body<'a>(src: &'a str, header: &str) -> &'a str {
    let start = src
        .find(header)
        .unwrap_or_else(|| panic!("{header} not found in table.rs"));
    let rest = &src[start + header.len()..];
    // End of the item: the next fn definition at impl-block indentation.
    let end = ["\n    pub fn ", "\n    fn ", "\n    pub const ", "\n}"]
        .iter()
        .filter_map(|pat| rest.find(pat))
        .min()
        .unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn attempt_never_reads_the_clock_or_records_histograms_under_the_guard() {
    let body = fn_body(TABLE_SRC, "fn attempt(");
    assert!(
        !body.contains("Instant::now"),
        "attempt() runs under the stripe mutex: clock reads moved out in \
         the executor PR must not come back"
    );
    assert!(
        !body.contains(".record("),
        "attempt() runs under the stripe mutex: histogram updates must go \
         through the `chains`/`through` out-params and be recorded by the \
         caller after the guard drops"
    );
}

#[test]
fn wait_start_clock_read_happens_with_the_stripe_guard_dropped() {
    let body = fn_body(TABLE_SRC, "pub fn lock(");
    // Every Instant::now() inside lock()'s locked region must be preceded
    // (nearby) by dropping the stripe guard. The deadline computation at
    // the top runs before the stripe mutex is first taken.
    let locked_region_start = body
        .find("shard.inner.lock()")
        .expect("lock() takes the stripe mutex");
    let locked = &body[locked_region_start..];
    for (pos, _) in locked.match_indices("Instant::now()") {
        let window = &locked[pos.saturating_sub(600)..pos];
        assert!(
            window.contains("drop(inner)"),
            "Instant::now() inside lock()'s retry loop must follow \
             drop(inner); found one without a preceding guard drop"
        );
    }
}

#[test]
fn blocked_waits_still_record_wait_metrics() {
    // Behavioral companion: moving the clock read off the mutex must not
    // lose the wait accounting itself.
    let t = LockTable::with_shards(4);
    t.lock(Tid(1), Oid(9), Operation::Write, None).unwrap();
    let err = t
        .lock(
            Tid(2),
            Oid(9),
            Operation::Write,
            Some(Duration::from_millis(30)),
        )
        .unwrap_err();
    assert!(matches!(err, AssetError::LockTimeout { .. }));
    let stats = t
        .stripe_stats()
        .into_iter()
        .find(|s| s.waits > 0)
        .expect("the blocked request registered a distinct wait");
    assert!(stats.blocks >= 1);
    assert!(
        stats.wait_ns_total > 0,
        "wait duration still measured (outside the guard)"
    );
    assert_eq!(stats.timeouts, 1);
}

//! # asset-lock
//!
//! The ASSET lock manager (paper §4): transaction-duration read/write locks
//! organized as object descriptors (OD) with lists of lock-request
//! descriptors (LRD), a doubly-hashed permit-descriptor (PD) table with
//! **transitive** permission semantics, permit-driven lock *suspension*,
//! delegation of locks between transactions, and a waits-for-graph deadlock
//! detector (our addition; the paper is silent on data deadlocks).
//!
//! Layered *above* the storage crate's latches: a latch protects one
//! physical access, a lock protects a transaction's claim until commit,
//! abort or delegation.

#![warn(missing_docs)]

pub mod permit;
pub mod table;
pub mod waits;

pub use permit::{permits_across, permits_across_depth, Permit, PermitTable};
pub use table::{
    LockSnapshot, LockStats, LockTable, Lrd, PendingReq, StripeOccupancy, StripeStats,
};
pub use waits::WaitGraph;

//! The lock table: object descriptors (OD), lock-request descriptors (LRD),
//! and the paper's `read-lock`/`write-lock` algorithm with permit-driven
//! *suspension* (§4.2).
//!
//! Transaction-duration locks live here; they are only released by the
//! commit/abort protocols (or moved by delegation). Blocking requests wait
//! on a condition variable and retry "starting at step 1", exactly as the
//! paper phrases it; a waits-for graph detects data deadlocks (the paper is
//! silent on these — see DESIGN.md §6) and a configurable timeout backstops
//! everything.
//!
//! ## Sharding (§4.1 double hashing realized)
//!
//! The paper hashes the descriptor tables by object id and by transaction
//! id precisely so that concurrent transactions touching disjoint objects
//! never serialize on shared bookkeeping. Here that is realized as N
//! oid-hashed **shards**, each with its own mutex + condvar over the OD
//! map, the shard's slice of the TD-side object lists, and a shard-local
//! permit table; a tid-keyed shard-set index (the second hash) lets
//! `release_all`/`delegate` visit only the shards a transaction actually
//! touched. Permits whose object scope is `ObSet::All` (or spans shards)
//! live in a small read-mostly global table consulted after the per-shard
//! miss. Multi-shard operations take shard locks one at a time in
//! ascending index order, so the manager is internally deadlock-free.
//! Wait-for edges go to a dedicated [`WaitGraph`] collector and counters
//! are per-shard relaxed atomics, so deadlock checks and statistics reads
//! never stall grants.

use asset_annot::verify_allow;

use crate::permit::{permits_across_depth, Permit, PermitTable};
use crate::waits::WaitGraph;
use asset_common::config::resolve_shards;
use asset_common::sync::{Condvar, Mutex, RwLock};
use asset_common::{AssetError, LockMode, ObSet, Oid, OpSet, Operation, Result, Tid};
use asset_obs::{add, bump, EventKind, Obs};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A lock-request descriptor: one transaction's granted lock on one object.
#[derive(Clone, Debug)]
pub struct Lrd {
    /// The holding transaction.
    pub tid: Tid,
    /// Granted mode.
    pub mode: LockMode,
    /// A suspended lock no longer blocks others; set when a conflicting
    /// request was let through by a permit.
    pub suspended: bool,
}

/// A pending request (diagnostic view of the paper's pending list).
#[derive(Clone, Debug)]
pub struct PendingReq {
    /// The waiting transaction.
    pub tid: Tid,
    /// Requested mode.
    pub mode: LockMode,
    /// Is this an upgrade of an existing lock (paper status `upgrading`)?
    pub upgrading: bool,
}

#[derive(Default)]
struct ObjectDesc {
    granted: Vec<Lrd>,
    pending: Vec<PendingReq>,
}

/// Counters exposed for benchmarks and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Locks granted (including upgrades and re-grants).
    pub grants: u64,
    /// Times a request had to wait.
    pub blocks: u64,
    /// Locks suspended due to permits.
    pub suspensions: u64,
    /// Deadlock victims.
    pub deadlocks: u64,
    /// Lock-wait timeouts.
    pub timeouts: u64,
}

/// A cheap point-in-time view of the lock manager, assembled entirely from
/// relaxed atomics — reading it never touches a shard mutex.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockSnapshot {
    /// Aggregated counters.
    pub stats: LockStats,
    /// Live permit descriptors (shard-local + global).
    pub permits: usize,
    /// Currently blocked lock requests.
    pub waiters: usize,
    /// Number of shards the table was built with.
    pub shards: usize,
}

/// Per-shard counters; aggregated lock-free by [`LockTable::stats`].
#[derive(Default)]
struct ShardStats {
    grants: AtomicU64,
    blocks: AtomicU64,
    suspensions: AtomicU64,
    deadlocks: AtomicU64,
    timeouts: AtomicU64,
    /// Distinct waits (a request that blocked, however many retries).
    waits: AtomicU64,
    /// Total nanoseconds blocked requests spent waiting on this stripe.
    wait_ns_total: AtomicU64,
    /// Longest single wait on this stripe, in nanoseconds.
    wait_ns_max: AtomicU64,
    /// Deepest pending queue observed on any object of this stripe.
    queue_peak: AtomicU64,
}

/// Per-stripe contention counters, read lock-free by
/// [`LockTable::stripe_stats`] — the evidence table behind experiment E9b
/// (where does lock-manager time go under skewed load?).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StripeStats {
    /// Stripe (shard) index.
    pub stripe: usize,
    /// Locks granted on this stripe.
    pub grants: u64,
    /// Times a request on this stripe had to wait (block attempts).
    pub blocks: u64,
    /// Locks suspended due to permits.
    pub suspensions: u64,
    /// Deadlock victims whose final wait was on this stripe.
    pub deadlocks: u64,
    /// Lock-wait timeouts on this stripe.
    pub timeouts: u64,
    /// Distinct waits: requests that blocked at least once (a single wait
    /// may retry — and re-count in `blocks` — many times).
    pub waits: u64,
    /// Total nanoseconds spent blocked on this stripe.
    pub wait_ns_total: u64,
    /// Longest single wait, in nanoseconds.
    pub wait_ns_max: u64,
    /// Deepest pending queue observed on any object of this stripe.
    pub queue_peak: u64,
}

impl StripeStats {
    /// Mean nanoseconds per distinct wait (0 when nothing waited).
    pub fn wait_ns_mean(&self) -> u64 {
        self.wait_ns_total.checked_div(self.waits).unwrap_or(0)
    }
}

/// Point-in-time occupancy of one stripe, read under that stripe's mutex
/// by [`LockTable::stripe_occupancy`] (the live companion to the
/// cumulative [`StripeStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StripeOccupancy {
    /// Stripe (shard) index.
    pub stripe: usize,
    /// Object descriptors resident on this stripe.
    pub objects: usize,
    /// Granted lock-request descriptors (LRDs) across those objects.
    pub granted: usize,
    /// Of the granted LRDs, how many are currently suspended by a permit.
    pub suspended: usize,
    /// Pending (blocked) requests across those objects.
    pub waiting: usize,
    /// Shard-local permit descriptors.
    pub permits: usize,
}

/// One stripe of the doubly-hashed descriptor tables.
struct ShardInner {
    objects: HashMap<Oid, ObjectDesc>,
    /// TD-side lists, restricted to this shard's objects: objects on which
    /// a transaction holds an LRD.
    txn_objects: HashMap<Tid, HashSet<Oid>>,
    /// Permits whose object scope falls entirely within this shard.
    permits: PermitTable,
}

struct Shard {
    inner: Mutex<ShardInner>,
    cv: Condvar,
    stats: ShardStats,
    /// Permits stored in this shard (relaxed; summed by `permit_count`).
    permit_count: AtomicUsize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            inner: Mutex::new(ShardInner {
                objects: HashMap::new(),
                txn_objects: HashMap::new(),
                permits: PermitTable::new(),
            }),
            cv: Condvar::new(),
            stats: ShardStats::default(),
            permit_count: AtomicUsize::new(0),
        }
    }
}

/// An installed executor wake hook: `hook(stripe)` requeues transactions
/// parked on that stripe (see [`LockTable::set_wake_hook`]).
type WakeHook = Arc<dyn Fn(usize) + Send + Sync>;

/// The lock manager.
pub struct LockTable {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the count is always a power of two.
    shard_mask: u64,
    /// The second hash of the paper's double hashing: tid → shards where
    /// the transaction holds LRDs or shard-local permits, so release and
    /// delegation visit only those stripes.
    tid_shards: Mutex<HashMap<Tid, BTreeSet<usize>>>,
    /// Wildcard-object and cross-shard permits (read-mostly).
    global_permits: RwLock<PermitTable>,
    /// Fast-path skip: live permits in `global_permits`.
    global_permit_count: AtomicUsize,
    /// Wait-for edges of blocked requests (deadlock detection).
    waits: WaitGraph,
    /// Transactions whose lock waits must fail immediately (their abort is
    /// in progress; the aborter cannot wait for a lock timeout).
    poisoned: Mutex<HashSet<Tid>>,
    /// Fast-path skip for the poison check.
    poison_count: AtomicUsize,
    /// Observability hub: lock-wait histograms, permit-chain lengths,
    /// delegation counts, and lifecycle events.
    obs: Arc<Obs>,
    /// Executor wake hook: called with a stripe index (or
    /// [`ALL_STRIPES`](Self::ALL_STRIPES)) after any grant-relevant state
    /// change has been published and the condvar notified, so a worker-pool
    /// scheduler can requeue transactions parked on that stripe. Installed
    /// once at executor start; never invoked with a shard mutex held.
    wake_hook: RwLock<Option<WakeHook>>,
    /// Fast-path skip for the hook check on notify sites.
    wake_hook_set: std::sync::atomic::AtomicBool,
}

enum Attempt {
    Granted,
    Blocked(Vec<Tid>),
}

enum PermitRoute {
    Shard(usize),
    Global,
}

impl LockTable {
    /// An empty lock table with the default shard count
    /// (`next_power_of_two(4 × cores)`).
    pub fn new() -> LockTable {
        LockTable::with_shards(0)
    }

    /// An empty lock table with `n` shards (`0` = auto; rounded up to a
    /// power of two). `with_shards(1)` reproduces the single-mutex manager
    /// exactly. The table gets its own observability hub; use
    /// [`with_shards_obs`](Self::with_shards_obs) to share one.
    pub fn with_shards(n: usize) -> LockTable {
        LockTable::with_shards_obs(n, Obs::shared())
    }

    /// [`with_shards`](Self::with_shards), reporting lock waits, permit
    /// chains, delegations and deadlock sweeps into the shared `obs`.
    pub fn with_shards_obs(n: usize, obs: Arc<Obs>) -> LockTable {
        let n = resolve_shards(n);
        LockTable {
            shards: (0..n).map(|_| Shard::new()).collect(),
            shard_mask: (n - 1) as u64,
            tid_shards: Mutex::new(HashMap::new()),
            global_permits: RwLock::new(PermitTable::new()),
            global_permit_count: AtomicUsize::new(0),
            waits: WaitGraph::new(),
            poisoned: Mutex::new(HashSet::new()),
            poison_count: AtomicUsize::new(0),
            obs,
            wake_hook: RwLock::new(None),
            wake_hook_set: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The stripe-index argument [`set_wake_hook`](Self::set_wake_hook)
    /// receives when a notification concerns every stripe (global permit,
    /// poison, cross-shard release).
    pub const ALL_STRIPES: usize = usize::MAX;

    /// Install the executor wake hook (see the `wake_hook` field). The hook
    /// runs on the notifying thread with no table locks held; it must not
    /// call back into the lock table.
    pub fn set_wake_hook(&self, hook: Arc<dyn Fn(usize) + Send + Sync>) {
        *self.wake_hook.write() = Some(hook);
        self.wake_hook_set
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// The stripe `ob` hashes to — lets a scheduler register a waiter on
    /// the same stripe whose condvar a blocking request would park on.
    pub fn stripe_of(&self, ob: Oid) -> usize {
        self.shard_index(ob)
    }

    fn fire_wake_hook(&self, stripe: usize) {
        if self
            .wake_hook_set
            .load(std::sync::atomic::Ordering::Acquire)
        {
            if let Some(hook) = self.wake_hook.read().as_ref() {
                hook(stripe);
            }
        }
    }

    /// The observability hub this table reports into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Number of shards the table was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, ob: Oid) -> usize {
        // Avalanche the oid so sequential ids spread across shards.
        let mut h = ob.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        (h & self.shard_mask) as usize
    }

    /// Ascending shard indices `tid` has touched (locks or permits).
    fn shards_of(&self, tid: Tid) -> Vec<usize> {
        self.tid_shards
            .lock()
            .get(&tid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Take and release every shard mutex before notifying its condvar.
    /// The lock bump is what makes notification safe for state that is not
    /// protected by the shard mutex (global permits, the poison set): a
    /// waiter holds its shard mutex from predicate check to sleep, so
    /// acquiring the mutex after the state change guarantees the waiter is
    /// either asleep (and gets the notify) or will re-check and observe it.
    #[verify_allow(
        lock_order,
        reason = "blessed: each shard mutex is acquired and dropped before the next — never two at once"
    )]
    fn notify_all_shards(&self) {
        for shard in self.shards.iter() {
            drop(shard.inner.lock());
            shard.cv.notify_all();
        }
        self.fire_wake_hook(Self::ALL_STRIPES);
    }

    /// Acquire a lock for `tid` on `ob` in the mode required by `op`,
    /// blocking until granted, deadlocked, or timed out.
    pub fn lock(&self, tid: Tid, ob: Oid, op: Operation, timeout: Option<Duration>) -> Result<()> {
        let mode = op.required_mode();
        let deadline = timeout.map(|d| Instant::now() + d);
        let sidx = self.shard_index(ob);
        let shard = &self.shards[sidx];
        // Wait accounting: inside the stripe critical section only relaxed
        // atomics are touched (DESIGN.md §7 — recording is wait-free on the
        // lock hot path); the clock reads and the trace event happen after
        // the mutex is released.
        let mut wait_started: Option<Instant> = None;
        let mut queue_depth: u32 = 0;
        let mut through: Vec<(Tid, u32)> = Vec::new();
        let mut chains: Vec<u32> = Vec::new();
        let result = (|| {
            let mut inner = shard.inner.lock();
            loop {
                if self.poison_count.load(Ordering::Relaxed) > 0
                    && self.poisoned.lock().contains(&tid)
                {
                    Self::clear_pending(&mut inner, tid, ob);
                    self.waits.clear(tid);
                    return Err(AssetError::TxnAborted(tid));
                }
                match self.attempt(
                    sidx,
                    &mut inner,
                    tid,
                    ob,
                    mode,
                    op,
                    &mut through,
                    &mut chains,
                ) {
                    Attempt::Granted => {
                        Self::clear_pending(&mut inner, tid, ob);
                        self.waits.clear(tid);
                        return Ok(());
                    }
                    Attempt::Blocked(holders) => {
                        shard.stats.blocks.fetch_add(1, Ordering::Relaxed);
                        Self::note_pending(&mut inner, tid, ob, mode);
                        let depth = inner.objects.get(&ob).map_or(0, |od| od.pending.len()) as u64;
                        shard.stats.queue_peak.fetch_max(depth, Ordering::Relaxed);
                        if wait_started.is_none() {
                            queue_depth = depth as u32;
                            shard.stats.waits.fetch_add(1, Ordering::Relaxed);
                            bump(&self.obs.counters.lock_waits);
                            // The wait-start clock read happens with the
                            // stripe mutex released (DESIGN.md §7: no clock
                            // reads inside the stripe critical section);
                            // the pending entry is already published, and
                            // the loop retries from step 1 after
                            // re-locking, so no grant can be missed.
                            drop(inner);
                            wait_started = Some(Instant::now());
                            inner = shard.inner.lock();
                            continue;
                        }
                        self.waits.publish(tid, &holders);
                        bump(&self.obs.counters.deadlock_sweeps);
                        if self.waits.cycle_through(tid) {
                            Self::clear_pending(&mut inner, tid, ob);
                            self.waits.clear(tid);
                            shard.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                            bump(&self.obs.counters.deadlocks);
                            return Err(AssetError::Deadlock(tid));
                        }
                        let timed_out = match deadline {
                            None => {
                                shard.cv.wait(&mut inner);
                                false
                            }
                            Some(d) => shard.cv.wait_until(&mut inner, d).timed_out(),
                        };
                        if timed_out {
                            Self::clear_pending(&mut inner, tid, ob);
                            self.waits.clear(tid);
                            shard.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                            return Err(AssetError::LockTimeout { tid, ob });
                        }
                        // retry "starting at step 1"
                    }
                }
            }
        })();
        if let Some(t0) = wait_started {
            let waited = t0.elapsed().as_nanos() as u64;
            add(&shard.stats.wait_ns_total, waited);
            shard.stats.wait_ns_max.fetch_max(waited, Ordering::Relaxed);
            self.obs.lock_wait_ns.record(waited);
            self.obs.record(EventKind::LockWait {
                tid,
                ob,
                stripe: sidx as u32,
                wait_ns: waited,
                queue_depth,
            });
        }
        for chain in chains {
            self.obs.permit_chain_len.record(chain as u64);
        }
        if matches!(result, Err(AssetError::Deadlock(_))) {
            self.obs
                .record(EventKind::DeadlockSweep { tid, cycle: true });
        }
        for (holder, chain) in through {
            self.obs.record(EventKind::PermitThrough {
                holder,
                requester: tid,
                ob,
                chain,
            });
        }
        result
    }

    /// One non-blocking attempt; returns the blockers on failure.
    pub fn try_lock(&self, tid: Tid, ob: Oid, op: Operation) -> std::result::Result<(), Vec<Tid>> {
        let sidx = self.shard_index(ob);
        let mut through: Vec<(Tid, u32)> = Vec::new();
        let mut chains: Vec<u32> = Vec::new();
        let result = {
            let mut inner = self.shards[sidx].inner.lock();
            match self.attempt(
                sidx,
                &mut inner,
                tid,
                ob,
                op.required_mode(),
                op,
                &mut through,
                &mut chains,
            ) {
                Attempt::Granted => {
                    Self::clear_pending(&mut inner, tid, ob);
                    self.waits.clear(tid);
                    Ok(())
                }
                Attempt::Blocked(holders) => Err(holders),
            }
        };
        for chain in chains {
            self.obs.permit_chain_len.record(chain as u64);
        }
        for (holder, chain) in through {
            self.obs.record(EventKind::PermitThrough {
                holder,
                requester: tid,
                ob,
                chain,
            });
        }
        result
    }

    /// Publish a blocked *executor* request's waits-for edges and run the
    /// cycle check — the same deadlock policy the blocking
    /// [`lock`](Self::lock) path applies before parking. A worker calls
    /// this after a failed [`try_lock`](Self::try_lock) (with the blockers
    /// it returned) instead of sleeping on the stripe condvar. Edges are
    /// cleared when a later `try_lock` grants, or by `release_all`.
    pub fn note_blocked(&self, tid: Tid, holders: &[Tid]) -> Result<()> {
        self.waits.publish(tid, holders);
        bump(&self.obs.counters.deadlock_sweeps);
        if self.waits.cycle_through(tid) {
            self.waits.clear(tid);
            bump(&self.obs.counters.deadlocks);
            self.obs
                .record(EventKind::DeadlockSweep { tid, cycle: true });
            return Err(AssetError::Deadlock(tid));
        }
        Ok(())
    }

    /// The paper's `read-lock`/`write-lock` algorithm, one shard-local
    /// attempt.
    /// `through` collects `(holder, chain_hops)` pairs for every conflict a
    /// permit let through on a *granted* attempt, so the caller can emit
    /// the causal `PermitThrough` events after the shard guard drops;
    /// `chains` likewise collects walked permit-chain depths for the
    /// caller to feed the `permit_chain_len` histogram outside the guard
    /// (DESIGN.md §7: clock reads, histogram updates and trace events stay
    /// outside the stripe critical section).
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        sidx: usize,
        inner: &mut ShardInner,
        tid: Tid,
        ob: Oid,
        mode: LockMode,
        op: Operation,
        through: &mut Vec<(Tid, u32)>,
        chains: &mut Vec<u32>,
    ) -> Attempt {
        let od = inner.objects.entry(ob).or_default();

        // Step 1a: own granted lock that covers the request and is not
        // suspended → success.
        if let Some(own) = od.granted.iter().find(|g| g.tid == tid) {
            if !own.suspended && own.mode.covers(mode) {
                return Attempt::Granted;
            }
        }

        // Step 1b: conflicting granted locks of other transactions — each
        // must either permit us (then it gets suspended) or block us. A
        // *suspended* lock has ceded its claim to the permitted operations
        // but still guards against unpermitted ones, so it participates in
        // the permit check too. The check runs over the shard-local permit
        // table; the global (wildcard/cross-shard) table joins the DFS only
        // when it is non-empty.
        let global = if self.global_permit_count.load(Ordering::Relaxed) > 0 {
            Some(self.global_permits.read())
        } else {
            None
        };
        let mut to_suspend: Vec<(Tid, u32)> = Vec::new();
        let mut blockers: Vec<Tid> = Vec::new();
        for gl in od.granted.iter() {
            if gl.tid == tid || !gl.mode.conflicts(mode) {
                continue;
            }
            let (permitted, chain) = match &global {
                None => permits_across_depth(&[&inner.permits], gl.tid, tid, ob, op),
                Some(g) => permits_across_depth(&[&inner.permits, g], gl.tid, tid, ob, op),
            };
            bump(&self.obs.counters.permit_checks);
            if chain > 0 {
                chains.push(chain as u32);
            }
            if permitted {
                to_suspend.push((gl.tid, chain as u32));
            } else {
                blockers.push(gl.tid);
            }
        }
        drop(global);
        if !blockers.is_empty() {
            return Attempt::Blocked(blockers);
        }

        // Step 2: grant. Suspend the permitted conflicting locks, then
        // create or refresh our LRD.
        if self.obs.tracing_enabled() {
            through.extend(to_suspend.iter().copied());
        }
        let od = inner.objects.entry(ob).or_default();
        for (holder, _) in &to_suspend {
            if let Some(gl) = od.granted.iter_mut().find(|g| g.tid == *holder) {
                if !gl.suspended {
                    gl.suspended = true;
                    self.shards[sidx]
                        .stats
                        .suspensions
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        match od.granted.iter_mut().find(|g| g.tid == tid) {
            Some(own) => {
                // 2b: change mode / remove suspension
                own.mode = own.mode.max(mode);
                own.suspended = false;
            }
            None => {
                od.granted.push(Lrd {
                    tid,
                    mode,
                    suspended: false,
                });
            }
        }
        let first_in_shard = !inner.txn_objects.contains_key(&tid);
        inner.txn_objects.entry(tid).or_default().insert(ob);
        if first_in_shard {
            self.tid_shards.lock().entry(tid).or_default().insert(sidx);
        }
        self.shards[sidx]
            .stats
            .grants
            .fetch_add(1, Ordering::Relaxed);
        bump(&self.obs.counters.lock_grants);
        Attempt::Granted
    }

    fn note_pending(inner: &mut ShardInner, tid: Tid, ob: Oid, mode: LockMode) {
        let od = inner.objects.entry(ob).or_default();
        let upgrading = od.granted.iter().any(|g| g.tid == tid);
        if !od.pending.iter().any(|p| p.tid == tid) {
            od.pending.push(PendingReq {
                tid,
                mode,
                upgrading,
            });
        }
    }

    fn clear_pending(inner: &mut ShardInner, tid: Tid, ob: Oid) {
        if let Some(od) = inner.objects.get_mut(&ob) {
            od.pending.retain(|p| p.tid != tid);
        }
    }

    /// Where does a permit with scope `obs` live?
    fn route(&self, obs: &ObSet) -> PermitRoute {
        match obs {
            ObSet::All => PermitRoute::Global,
            ObSet::Objects(s) => {
                let mut it = s.iter();
                match it.next() {
                    // empty scope: inert; park it in shard 0
                    None => PermitRoute::Shard(0),
                    Some(first) => {
                        let s0 = self.shard_index(*first);
                        if it.all(|o| self.shard_index(*o) == s0) {
                            PermitRoute::Shard(s0)
                        } else {
                            PermitRoute::Global
                        }
                    }
                }
            }
        }
    }

    /// Record a permit (wakes waiters — they may now be allowed through).
    #[verify_allow(
        lock_order,
        reason = "blessed: shard/global permit locks are taken in disjoint scopes, one at a time"
    )]
    pub fn permit(&self, grantor: Tid, grantee: Option<Tid>, obs: ObSet, ops: OpSet) {
        let scope = match &obs {
            ObSet::All => 0u32,
            ObSet::Objects(s) => s.len() as u32,
        };
        self.obs.record(EventKind::PermitGrant {
            grantor,
            grantee: grantee.unwrap_or(Tid::NULL),
            objects: scope,
        });
        match self.route(&obs) {
            PermitRoute::Shard(s) => {
                {
                    // index both parties first, so a concurrent release
                    // already knows where to look
                    let mut idx = self.tid_shards.lock();
                    idx.entry(grantor).or_default().insert(s);
                    if let Some(g) = grantee {
                        idx.entry(g).or_default().insert(s);
                    }
                }
                let shard = &self.shards[s];
                {
                    let mut inner = shard.inner.lock();
                    inner.permits.insert(Permit {
                        grantor,
                        grantee,
                        obs,
                        ops,
                    });
                    shard.permit_count.fetch_add(1, Ordering::Relaxed);
                }
                shard.cv.notify_all();
                self.fire_wake_hook(s);
            }
            PermitRoute::Global => {
                {
                    let mut g = self.global_permits.write();
                    g.insert(Permit {
                        grantor,
                        grantee,
                        obs,
                        ops,
                    });
                    self.global_permit_count.fetch_add(1, Ordering::Relaxed);
                }
                self.notify_all_shards();
            }
        }
    }

    /// The paper's `permit(ti, tj, op)` form: permit on every object the
    /// grantor has accessed *or has permission to access*, materialized at
    /// call time by traversing the grantor's LRD list and incoming PDs.
    #[verify_allow(
        lock_order,
        reason = "blessed: materializes the object set shard-by-shard in ascending order, then delegates to permit"
    )]
    pub fn permit_accessed(&self, grantor: Tid, grantee: Option<Tid>, ops: OpSet) {
        let mut obs: BTreeSet<Oid> = BTreeSet::new();
        let mut all = false;
        for s in self.shards_of(grantor) {
            let inner = self.shards[s].inner.lock();
            if let Some(set) = inner.txn_objects.get(&grantor) {
                obs.extend(set.iter().copied());
            }
            for p in inner.permits.granted_to(grantor) {
                match p.obs {
                    ObSet::All => all = true,
                    ObSet::Objects(s) => obs.extend(s),
                }
            }
            if all {
                break;
            }
        }
        if !all && self.global_permit_count.load(Ordering::Relaxed) > 0 {
            for p in self.global_permits.read().granted_to(grantor) {
                match p.obs {
                    ObSet::All => all = true,
                    ObSet::Objects(s) => obs.extend(s),
                }
            }
        }
        let scope = if all { ObSet::All } else { ObSet::Objects(obs) };
        self.permit(grantor, grantee, scope, ops);
    }

    /// Delegate `from`'s locks (optionally restricted to `obs`) to `to`,
    /// merging with any locks `to` already holds, and re-attribute the
    /// permits `from` granted (§4.2 `delegate`). Shards are visited one at
    /// a time in ascending index order.
    #[verify_allow(
        lock_order,
        reason = "blessed: visits shards one at a time in ascending index order, guard dropped between hops"
    )]
    pub fn delegate(&self, from: Tid, to: Tid, obs: Option<&ObSet>) {
        let from_shards = self.shards_of(from);
        let mut moved_objects = 0u64;
        for &s in &from_shards {
            let shard = &self.shards[s];
            {
                let mut guard = shard.inner.lock();
                let inner = &mut *guard;
                let from_objects: Vec<Oid> = inner
                    .txn_objects
                    .get(&from)
                    .map(|set| {
                        set.iter()
                            .copied()
                            .filter(|ob| obs.is_none_or(|set| set.contains(*ob)))
                            .collect()
                    })
                    .unwrap_or_default();
                for ob in &from_objects {
                    let od = inner.objects.entry(*ob).or_default();
                    let Some(pos) = od.granted.iter().position(|g| g.tid == from) else {
                        continue;
                    };
                    let moved = od.granted.remove(pos);
                    moved_objects += 1;
                    match od.granted.iter_mut().find(|g| g.tid == to) {
                        Some(existing) => {
                            existing.mode = existing.mode.max(moved.mode);
                            existing.suspended = existing.suspended && moved.suspended;
                        }
                        None => od.granted.push(Lrd { tid: to, ..moved }),
                    }
                    if let Some(set) = inner.txn_objects.get_mut(&from) {
                        set.remove(ob);
                    }
                    inner.txn_objects.entry(to).or_default().insert(*ob);
                }
                let before = inner.permits.len();
                inner.permits.reattribute(from, to, obs);
                let after = inner.permits.len();
                if after > before {
                    // partial delegation can split one permit into two
                    shard
                        .permit_count
                        .fetch_add(after - before, Ordering::Relaxed);
                }
            }
            shard.cv.notify_all();
            self.fire_wake_hook(s);
        }
        if self.global_permit_count.load(Ordering::Relaxed) > 0 {
            {
                let mut g = self.global_permits.write();
                let before = g.len();
                g.reattribute(from, to, obs);
                let after = g.len();
                if after > before {
                    self.global_permit_count
                        .fetch_add(after - before, Ordering::Relaxed);
                }
            }
            self.notify_all_shards();
        }
        if !from_shards.is_empty() {
            self.tid_shards
                .lock()
                .entry(to)
                .or_default()
                .extend(from_shards);
        }
        bump(&self.obs.counters.delegations);
        add(&self.obs.counters.delegated_objects, moved_objects);
        self.obs.record(EventKind::Delegate {
            from,
            to,
            objects: moved_objects as u32,
        });
    }

    /// Release all locks held by `tid` and remove permits given by and to
    /// it (commit step 6 / abort step 3). Returns the objects released.
    #[verify_allow(
        lock_order,
        reason = "blessed: snapshots the tid→shard index, then walks shards in ascending order one at a time"
    )]
    pub fn release_all(&self, tid: Tid) -> Vec<Oid> {
        let shards: Vec<usize> = {
            self.tid_shards
                .lock()
                .remove(&tid)
                .map(|s| s.into_iter().collect())
                .unwrap_or_default()
        };
        let mut released: Vec<Oid> = Vec::new();
        for s in shards {
            let shard = &self.shards[s];
            {
                let mut inner = shard.inner.lock();
                let objects: Vec<Oid> = inner
                    .txn_objects
                    .remove(&tid)
                    .map(|set| set.into_iter().collect())
                    .unwrap_or_default();
                for ob in &objects {
                    if let Some(od) = inner.objects.get_mut(ob) {
                        od.granted.retain(|g| g.tid != tid);
                        od.pending.retain(|p| p.tid != tid);
                        if od.granted.is_empty() && od.pending.is_empty() {
                            inner.objects.remove(ob);
                        }
                    }
                }
                let before = inner.permits.len();
                inner.permits.remove_involving(tid);
                let removed = before - inner.permits.len();
                if removed > 0 {
                    shard.permit_count.fetch_sub(removed, Ordering::Relaxed);
                }
                released.extend(objects);
            }
            shard.cv.notify_all();
            self.fire_wake_hook(s);
        }
        if self.global_permit_count.load(Ordering::Relaxed) > 0 {
            let removed = {
                let mut g = self.global_permits.write();
                let before = g.len();
                g.remove_involving(tid);
                let removed = before - g.len();
                if removed > 0 {
                    self.global_permit_count
                        .fetch_sub(removed, Ordering::Relaxed);
                }
                removed
            };
            if removed > 0 {
                self.notify_all_shards();
            }
        }
        self.waits.clear(tid);
        if self.poison_count.load(Ordering::Relaxed) > 0 && self.poisoned.lock().remove(&tid) {
            self.poison_count.fetch_sub(1, Ordering::Relaxed);
        }
        released
    }

    /// Make current and future lock waits of `tid` fail with `TxnAborted`
    /// and wake it if blocked. Used when an abort strikes a transaction
    /// that may be waiting for a lock. Cleared by
    /// [`release_all`](Self::release_all).
    #[verify_allow(
        lock_order,
        reason = "blessed: poison set and shard mutexes are never held together"
    )]
    pub fn poison(&self, tid: Tid) {
        if self.poisoned.lock().insert(tid) {
            self.poison_count.fetch_add(1, Ordering::Relaxed);
        }
        self.notify_all_shards();
    }

    /// Granted locks on `ob` (snapshot).
    pub fn holders(&self, ob: Oid) -> Vec<Lrd> {
        self.shards[self.shard_index(ob)]
            .inner
            .lock()
            .objects
            .get(&ob)
            .map(|od| od.granted.clone())
            .unwrap_or_default()
    }

    /// Pending requests on `ob` (snapshot).
    pub fn pending(&self, ob: Oid) -> Vec<PendingReq> {
        self.shards[self.shard_index(ob)]
            .inner
            .lock()
            .objects
            .get(&ob)
            .map(|od| od.pending.clone())
            .unwrap_or_default()
    }

    /// Objects `tid` holds locks on (snapshot).
    pub fn locked_objects(&self, tid: Tid) -> Vec<Oid> {
        let mut out: Vec<Oid> = Vec::new();
        for s in self.shards_of(tid) {
            let inner = self.shards[s].inner.lock();
            if let Some(set) = inner.txn_objects.get(&tid) {
                out.extend(set.iter().copied());
            }
        }
        out
    }

    /// Does `tid` hold an (unsuspended) lock on `ob` covering `mode`?
    pub fn holds(&self, tid: Tid, ob: Oid, mode: LockMode) -> bool {
        self.shards[self.shard_index(ob)]
            .inner
            .lock()
            .objects
            .get(&ob)
            .map(|od| {
                od.granted
                    .iter()
                    .any(|g| g.tid == tid && !g.suspended && g.mode.covers(mode))
            })
            .unwrap_or(false)
    }

    /// Statistics snapshot, aggregated from per-shard relaxed atomics —
    /// never takes a shard mutex.
    pub fn stats(&self) -> LockStats {
        let mut out = LockStats::default();
        for shard in self.shards.iter() {
            out.grants += shard.stats.grants.load(Ordering::Relaxed);
            out.blocks += shard.stats.blocks.load(Ordering::Relaxed);
            out.suspensions += shard.stats.suspensions.load(Ordering::Relaxed);
            out.deadlocks += shard.stats.deadlocks.load(Ordering::Relaxed);
            out.timeouts += shard.stats.timeouts.load(Ordering::Relaxed);
        }
        out
    }

    /// Per-stripe contention counters, one entry per shard in index order.
    /// Assembled entirely from relaxed atomics — never takes a shard mutex
    /// — so it is safe to call from a monitoring thread while the bench
    /// hammers the table. Feeds the E9b contention table.
    pub fn stripe_stats(&self) -> Vec<StripeStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| StripeStats {
                stripe: i,
                grants: shard.stats.grants.load(Ordering::Relaxed),
                blocks: shard.stats.blocks.load(Ordering::Relaxed),
                suspensions: shard.stats.suspensions.load(Ordering::Relaxed),
                deadlocks: shard.stats.deadlocks.load(Ordering::Relaxed),
                timeouts: shard.stats.timeouts.load(Ordering::Relaxed),
                waits: shard.stats.waits.load(Ordering::Relaxed),
                wait_ns_total: shard.stats.wait_ns_total.load(Ordering::Relaxed),
                wait_ns_max: shard.stats.wait_ns_max.load(Ordering::Relaxed),
                queue_peak: shard.stats.queue_peak.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Point-in-time occupancy of every stripe: resident objects, granted
    /// and suspended LRDs, pending requests, and shard-local permits.
    /// Visits stripes one at a time (guard dropped between hops), so a
    /// monitoring thread — `asset-top` polls this through
    /// `Database::introspect()` — never holds two stripes or stalls the
    /// whole table at once.
    #[verify_allow(
        lock_order,
        reason = "blessed: visits shards one at a time in ascending index order, guard dropped between hops"
    )]
    pub fn stripe_occupancy(&self) -> Vec<StripeOccupancy> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let inner = shard.inner.lock();
                let mut occ = StripeOccupancy {
                    stripe: i,
                    objects: inner.objects.len(),
                    granted: 0,
                    suspended: 0,
                    waiting: 0,
                    permits: shard.permit_count.load(Ordering::Relaxed),
                };
                for od in inner.objects.values() {
                    occ.granted += od.granted.len();
                    occ.suspended += od.granted.iter().filter(|g| g.suspended).count();
                    occ.waiting += od.pending.len();
                }
                occ
            })
            .collect()
    }

    /// Number of permits currently registered (lock-free).
    pub fn permit_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.permit_count.load(Ordering::Relaxed))
            .sum::<usize>()
            + self.global_permit_count.load(Ordering::Relaxed)
    }

    /// A cheap full diagnostic view; see [`LockSnapshot`].
    pub fn snapshot(&self) -> LockSnapshot {
        LockSnapshot {
            stats: self.stats(),
            permits: self.permit_count(),
            waiters: self.waits.waiter_count(),
            shards: self.shards.len(),
        }
    }

    /// Permits that mention `ob`, from the object's shard and the global
    /// table (diagnostics; the paper's OD-attached PD list).
    pub fn permits_mentioning(&self, ob: Oid) -> Vec<Permit> {
        let mut out = self.shards[self.shard_index(ob)]
            .inner
            .lock()
            .permits
            .mentioning(ob);
        if self.global_permit_count.load(Ordering::Relaxed) > 0 {
            out.extend(self.global_permits.read().mentioning(ob));
        }
        out
    }

    /// Current waits-for edges (diagnostics / periodic detectors).
    pub fn waits_snapshot(&self) -> HashMap<Tid, HashSet<Tid>> {
        self.waits.snapshot()
    }
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const NO_TIMEOUT: Option<Duration> = None;
    fn short() -> Option<Duration> {
        Some(Duration::from_millis(50))
    }

    #[test]
    fn shared_locks_coexist() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        t.lock(Tid(2), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        assert_eq!(t.holders(Oid(1)).len(), 2);
    }

    #[test]
    fn write_blocks_write_until_release() {
        let t = Arc::new(LockTable::new());
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        assert!(t.try_lock(Tid(2), Oid(1), Operation::Write).is_err());

        let t2 = Arc::clone(&t);
        let acquired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&acquired);
        let h = std::thread::spawn(move || {
            t2.lock(Tid(2), Oid(1), Operation::Write, NO_TIMEOUT)
                .unwrap();
            flag.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!acquired.load(Ordering::SeqCst));
        t.release_all(Tid(1));
        h.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
    }

    #[test]
    fn upgrade_read_to_write() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        assert!(t.holds(Tid(1), Oid(1), LockMode::Write));
    }

    #[test]
    fn upgrade_blocks_on_other_reader() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        t.lock(Tid(2), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        let err = t
            .lock(Tid(1), Oid(1), Operation::Write, short())
            .unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
        // the pending entry was marked as an upgrade while waiting —
        // verified indirectly: after the other reader leaves, upgrade works
        t.release_all(Tid(2));
        t.lock(Tid(1), Oid(1), Operation::Write, short()).unwrap();
    }

    #[test]
    fn permit_lets_conflict_through_and_suspends() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::WRITE);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        let holders = t.holders(Oid(1));
        let h1 = holders.iter().find(|g| g.tid == Tid(1)).unwrap();
        let h2 = holders.iter().find(|g| g.tid == Tid(2)).unwrap();
        assert!(h1.suspended, "permitting holder was suspended");
        assert!(!h2.suspended);
        assert_eq!(t.stats().suspensions, 1);
        // t1's lock is suspended: it no longer *holds* write
        assert!(!t.holds(Tid(1), Oid(1), LockMode::Write));
    }

    #[test]
    fn suspended_holder_must_reacquire() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        // t1 tries again: t2 now holds an unsuspended conflicting lock and
        // has not permitted t1 back — t1 blocks.
        let err = t
            .lock(Tid(1), Oid(1), Operation::Write, short())
            .unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
        // ping-pong: t2 permits t1 back; now t1 gets through and t2 is
        // suspended in turn (the paper's cooperating-transactions pattern).
        t.permit(Tid(2), Some(Tid(1)), ObSet::one(Oid(1)), OpSet::ALL);
        t.lock(Tid(1), Oid(1), Operation::Write, short()).unwrap();
        assert!(t.holds(Tid(1), Oid(1), LockMode::Write));
        assert!(!t.holds(Tid(2), Oid(1), LockMode::Write));
    }

    #[test]
    fn permit_scope_is_respected() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.lock(Tid(1), Oid(2), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        let err = t
            .lock(Tid(2), Oid(2), Operation::Write, short())
            .unwrap_err();
        assert!(
            matches!(err, AssetError::LockTimeout { .. }),
            "ob2 not permitted"
        );
    }

    #[test]
    fn wildcard_permit_covers_everyone() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), None, ObSet::one(Oid(1)), OpSet::WRITE);
        t.lock(Tid(7), Oid(1), Operation::Write, short()).unwrap();
        t.release_all(Tid(7));
        t.lock(Tid(8), Oid(1), Operation::Write, short()).unwrap();
    }

    #[test]
    fn read_permit_does_not_allow_write() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::READ);
        t.lock(Tid(2), Oid(1), Operation::Read, short()).unwrap();
        let err = t
            .lock(Tid(2), Oid(1), Operation::Write, short())
            .unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
    }

    #[test]
    fn transitive_permit_through_table() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        t.permit(Tid(2), Some(Tid(3)), ObSet::one(Oid(1)), OpSet::ALL);
        // t3 never got a direct permit from t1 but the chain carries it
        t.lock(Tid(3), Oid(1), Operation::Write, short()).unwrap();
        assert!(t.holds(Tid(3), Oid(1), LockMode::Write));
    }

    #[test]
    fn transitive_chain_mixing_shard_and_global_permits() {
        // t1 → t2 is a single-object (shard-local) permit; t2 → t3 is a
        // wildcard-object (global) permit. The union DFS must stitch them.
        let t = LockTable::with_shards(8);
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        t.permit(Tid(2), Some(Tid(3)), ObSet::All, OpSet::ALL);
        t.lock(Tid(3), Oid(1), Operation::Write, short()).unwrap();
        assert!(t.holds(Tid(3), Oid(1), LockMode::Write));
    }

    #[test]
    fn deadlock_detected_and_victim_errors() {
        let t = Arc::new(LockTable::new());
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.lock(Tid(2), Oid(2), Operation::Write, NO_TIMEOUT)
            .unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            // t1 waits for ob2 (held by t2)
            t2.lock(
                Tid(1),
                Oid(2),
                Operation::Write,
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(30));
        // t2 requests ob1 (held by t1) → cycle → t2 is the victim
        let err = t
            .lock(
                Tid(2),
                Oid(1),
                Operation::Write,
                Some(Duration::from_secs(5)),
            )
            .unwrap_err();
        assert!(matches!(err, AssetError::Deadlock(Tid(2))));
        assert_eq!(t.stats().deadlocks, 1);
        // unblock t1 by releasing the victim's locks (what abort would do)
        t.release_all(Tid(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn delegation_moves_locks() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.lock(Tid(1), Oid(2), Operation::Read, NO_TIMEOUT).unwrap();
        t.delegate(Tid(1), Tid(2), None);
        assert!(t.holds(Tid(2), Oid(1), LockMode::Write));
        assert!(t.holds(Tid(2), Oid(2), LockMode::Read));
        assert!(t.locked_objects(Tid(1)).is_empty());
        // the delegatee's conflicting ops no longer conflict; the
        // delegator's now do: t1 must block on ob1
        let err = t
            .lock(Tid(1), Oid(1), Operation::Write, short())
            .unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
    }

    #[test]
    fn partial_delegation_moves_only_named_objects() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.lock(Tid(1), Oid(2), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.delegate(Tid(1), Tid(2), Some(&ObSet::one(Oid(1))));
        assert!(t.holds(Tid(2), Oid(1), LockMode::Write));
        assert!(t.holds(Tid(1), Oid(2), LockMode::Write));
        assert_eq!(t.locked_objects(Tid(1)), vec![Oid(2)]);
    }

    #[test]
    fn delegation_merges_modes() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.lock(Tid(2), Oid(1), Operation::Read, short())
            .unwrap_err(); // blocked
                           // instead: t2 gets a read lock on another object and receives t1's
                           // write via delegation, merging into write
        let t2 = LockTable::new();
        t2.lock(Tid(1), Oid(1), Operation::Read, NO_TIMEOUT)
            .unwrap();
        t2.lock(Tid(2), Oid(1), Operation::Read, NO_TIMEOUT)
            .unwrap();
        // t1 upgrades? no — t1 delegates its read to t2; t2 ends with read
        t2.delegate(Tid(1), Tid(2), None);
        assert!(t2.holds(Tid(2), Oid(1), LockMode::Read));
        assert_eq!(t2.holders(Oid(1)).len(), 1, "merged into one LRD");
    }

    #[test]
    fn release_wakes_waiters_and_cleans_permits() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        assert_eq!(t.permit_count(), 1);
        let released = t.release_all(Tid(1));
        assert_eq!(released, vec![Oid(1)]);
        assert_eq!(t.permit_count(), 0, "permits given by t1 are gone");
        assert!(t.holders(Oid(1)).is_empty());
    }

    #[test]
    fn release_cleans_wildcard_permits_too() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::All, OpSet::ALL);
        assert_eq!(t.permit_count(), 1);
        t.release_all(Tid(1));
        assert_eq!(t.permit_count(), 0);
        // and a permit granted *to* the released transaction goes as well
        t.lock(Tid(3), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit(Tid(3), Some(Tid(4)), ObSet::All, OpSet::ALL);
        t.release_all(Tid(4));
        assert_eq!(t.permit_count(), 0);
    }

    #[test]
    fn permit_accessed_materializes_current_locks() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.lock(Tid(1), Oid(2), Operation::Write, NO_TIMEOUT)
            .unwrap();
        t.permit_accessed(Tid(1), Some(Tid(2)), OpSet::ALL);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        t.lock(Tid(2), Oid(2), Operation::Write, short()).unwrap();
        // an object locked *after* the permit is not covered (paper: the
        // object set is computed at permit time)
        t.lock(Tid(1), Oid(3), Operation::Write, NO_TIMEOUT)
            .unwrap();
        let err = t
            .lock(Tid(2), Oid(3), Operation::Write, short())
            .unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
    }

    #[test]
    fn permit_arrival_wakes_blocked_waiter() {
        let t = Arc::new(LockTable::new());
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.lock(
                Tid(2),
                Oid(1),
                Operation::Write,
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(30));
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        h.join().unwrap().unwrap();
        assert!(t.holds(Tid(2), Oid(1), LockMode::Write));
    }

    #[test]
    fn wildcard_permit_arrival_wakes_blocked_waiter() {
        // the global-table insertion path must also wake shard waiters
        let t = Arc::new(LockTable::with_shards(8));
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.lock(
                Tid(2),
                Oid(1),
                Operation::Write,
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(30));
        t.permit(Tid(1), Some(Tid(2)), ObSet::All, OpSet::ALL);
        h.join().unwrap().unwrap();
        assert!(t.holds(Tid(2), Oid(1), LockMode::Write));
    }

    #[test]
    fn stats_accumulate() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        let _ = t.lock(Tid(2), Oid(1), Operation::Write, short());
        let s = t.stats();
        assert_eq!(s.grants, 1);
        assert!(s.blocks >= 1);
        assert_eq!(s.timeouts, 1);
        let snap = t.snapshot();
        assert_eq!(snap.stats, s);
        assert_eq!(snap.shards, t.shard_count());
    }

    #[test]
    fn concurrent_increments_are_serialized_by_locks() {
        let t = Arc::new(LockTable::new());
        let value = Arc::new(Mutex::new(0u64));
        let mut handles = vec![];
        for i in 0..8u64 {
            let t = Arc::clone(&t);
            let value = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                let tid = Tid(i + 1);
                for _ in 0..100 {
                    t.lock(tid, Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
                    {
                        let mut v = value.lock();
                        *v += 1;
                    }
                    t.release_all(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*value.lock(), 800);
    }

    #[test]
    fn stripe_stats_record_waits_and_durations() {
        let t = LockTable::with_shards(4);
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        let _ = t.lock(Tid(2), Oid(1), Operation::Write, short());
        let stripes = t.stripe_stats();
        assert_eq!(stripes.len(), 4);
        let hot: Vec<&StripeStats> = stripes.iter().filter(|s| s.waits > 0).collect();
        assert_eq!(hot.len(), 1, "exactly one stripe saw the contended object");
        let s = hot[0];
        assert_eq!(s.waits, 1);
        assert!(s.blocks >= 1);
        assert_eq!(s.timeouts, 1);
        assert!(
            s.wait_ns_total >= Duration::from_millis(40).as_nanos() as u64,
            "the waiter blocked for ~50ms; got {}ns",
            s.wait_ns_total
        );
        assert!(s.wait_ns_max >= s.wait_ns_mean());
        assert!(s.queue_peak >= 1);
        // uncontended stripes stay silent
        for other in stripes.iter().filter(|s| s.stripe != hot[0].stripe) {
            assert_eq!(other.wait_ns_total, 0);
        }
    }

    #[test]
    fn obs_counters_track_lock_traffic() {
        let t = LockTable::with_shards_obs(2, Obs::shared());
        let obs = Arc::clone(t.obs());
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT)
            .unwrap();
        let _ = t.lock(Tid(2), Oid(1), Operation::Write, short());
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        t.delegate(Tid(2), Tid(3), None);
        let snap = obs.snapshot();
        assert!(snap.counters.lock_grants >= 2);
        assert!(snap.counters.lock_waits >= 1);
        assert!(snap.counters.permit_checks >= 1);
        assert_eq!(snap.counters.delegations, 1);
        assert_eq!(snap.counters.delegated_objects, 1);
        assert_eq!(snap.lock_wait_ns.count, snap.counters.lock_waits);
        assert!(snap.permit_chain_len.count >= 1);
        assert_eq!(snap.permit_chain_len.max, 1, "direct permit: one hop");
    }

    #[test]
    fn lock_wait_events_are_traced_when_enabled() {
        let t = LockTable::with_shards_obs(2, Obs::shared());
        t.obs().enable_tracing(64);
        t.lock(Tid(1), Oid(7), Operation::Write, NO_TIMEOUT)
            .unwrap();
        let _ = t.lock(Tid(2), Oid(7), Operation::Write, short());
        let trace = t.obs().trace();
        let wait = trace
            .iter()
            .find_map(|e| match e.kind {
                EventKind::LockWait {
                    tid,
                    ob,
                    wait_ns,
                    queue_depth,
                    ..
                } => Some((tid, ob, wait_ns, queue_depth)),
                _ => None,
            })
            .expect("a LockWait event was traced");
        assert_eq!(wait.0, Tid(2));
        assert_eq!(wait.1, Oid(7));
        assert!(wait.2 > 0);
        assert!(wait.3 >= 1);
    }

    #[test]
    fn shard_count_is_resolved_and_exposed() {
        assert_eq!(LockTable::with_shards(1).shard_count(), 1);
        assert_eq!(LockTable::with_shards(3).shard_count(), 4);
        let auto = LockTable::new().shard_count();
        assert!(auto.is_power_of_two());
    }
}

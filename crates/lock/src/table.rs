//! The lock table: object descriptors (OD), lock-request descriptors (LRD),
//! and the paper's `read-lock`/`write-lock` algorithm with permit-driven
//! *suspension* (§4.2).
//!
//! Transaction-duration locks live here; they are only released by the
//! commit/abort protocols (or moved by delegation). Blocking requests wait
//! on a condition variable and retry "starting at step 1", exactly as the
//! paper phrases it; a waits-for graph detects data deadlocks (the paper is
//! silent on these — see DESIGN.md §6) and a configurable timeout backstops
//! everything.

use crate::permit::{Permit, PermitTable};
use asset_common::{AssetError, LockMode, ObSet, Oid, OpSet, Operation, Result, Tid};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// A lock-request descriptor: one transaction's granted lock on one object.
#[derive(Clone, Debug)]
pub struct Lrd {
    /// The holding transaction.
    pub tid: Tid,
    /// Granted mode.
    pub mode: LockMode,
    /// A suspended lock no longer blocks others; set when a conflicting
    /// request was let through by a permit.
    pub suspended: bool,
}

/// A pending request (diagnostic view of the paper's pending list).
#[derive(Clone, Debug)]
pub struct PendingReq {
    /// The waiting transaction.
    pub tid: Tid,
    /// Requested mode.
    pub mode: LockMode,
    /// Is this an upgrade of an existing lock (paper status `upgrading`)?
    pub upgrading: bool,
}

#[derive(Default)]
struct ObjectDesc {
    granted: Vec<Lrd>,
    pending: Vec<PendingReq>,
}

/// Counters exposed for benchmarks and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Locks granted (including upgrades and re-grants).
    pub grants: u64,
    /// Times a request had to wait.
    pub blocks: u64,
    /// Locks suspended due to permits.
    pub suspensions: u64,
    /// Deadlock victims.
    pub deadlocks: u64,
    /// Lock-wait timeouts.
    pub timeouts: u64,
}

struct Inner {
    objects: HashMap<Oid, ObjectDesc>,
    /// TD-side lists: objects on which a transaction holds an LRD.
    txn_objects: HashMap<Tid, HashSet<Oid>>,
    permits: PermitTable,
    /// waiting tid → the holders blocking it (rebuilt on each wait).
    waits_for: HashMap<Tid, HashSet<Tid>>,
    /// Transactions whose lock waits must fail immediately (their abort is
    /// in progress; the aborter cannot wait for a lock timeout).
    poisoned: HashSet<Tid>,
    stats: LockStats,
}

/// The lock manager.
pub struct LockTable {
    inner: Mutex<Inner>,
    cv: Condvar,
}

enum Attempt {
    Granted,
    Blocked(Vec<Tid>),
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> LockTable {
        LockTable {
            inner: Mutex::new(Inner {
                objects: HashMap::new(),
                txn_objects: HashMap::new(),
                permits: PermitTable::new(),
                waits_for: HashMap::new(),
                poisoned: HashSet::new(),
                stats: LockStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Acquire a lock for `tid` on `ob` in the mode required by `op`,
    /// blocking until granted, deadlocked, or timed out.
    pub fn lock(&self, tid: Tid, ob: Oid, op: Operation, timeout: Option<Duration>) -> Result<()> {
        let mode = op.required_mode();
        let deadline = timeout.map(|d| Instant::now() + d);
        let mut inner = self.inner.lock();
        loop {
            if inner.poisoned.contains(&tid) {
                Self::clear_waiting(&mut inner, tid, ob);
                return Err(AssetError::TxnAborted(tid));
            }
            match Self::attempt(&mut inner, tid, ob, mode, op) {
                Attempt::Granted => {
                    Self::clear_waiting(&mut inner, tid, ob);
                    return Ok(());
                }
                Attempt::Blocked(holders) => {
                    inner.stats.blocks += 1;
                    Self::note_waiting(&mut inner, tid, ob, mode, &holders);
                    if Self::in_deadlock(&inner, tid) {
                        Self::clear_waiting(&mut inner, tid, ob);
                        inner.stats.deadlocks += 1;
                        return Err(AssetError::Deadlock(tid));
                    }
                    let timed_out = match deadline {
                        None => {
                            self.cv.wait(&mut inner);
                            false
                        }
                        Some(d) => self.cv.wait_until(&mut inner, d).timed_out(),
                    };
                    if timed_out {
                        Self::clear_waiting(&mut inner, tid, ob);
                        inner.stats.timeouts += 1;
                        return Err(AssetError::LockTimeout { tid, ob });
                    }
                    // retry "starting at step 1"
                }
            }
        }
    }

    /// One non-blocking attempt; returns the blockers on failure.
    pub fn try_lock(&self, tid: Tid, ob: Oid, op: Operation) -> std::result::Result<(), Vec<Tid>> {
        let mut inner = self.inner.lock();
        match Self::attempt(&mut inner, tid, ob, op.required_mode(), op) {
            Attempt::Granted => {
                Self::clear_waiting(&mut inner, tid, ob);
                Ok(())
            }
            Attempt::Blocked(holders) => Err(holders),
        }
    }

    /// The paper's `read-lock`/`write-lock` algorithm.
    fn attempt(inner: &mut Inner, tid: Tid, ob: Oid, mode: LockMode, op: Operation) -> Attempt {
        let od = inner.objects.entry(ob).or_default();

        // Step 1a: own granted lock that covers the request and is not
        // suspended → success.
        if let Some(own) = od.granted.iter().find(|g| g.tid == tid) {
            if !own.suspended && own.mode.covers(mode) {
                return Attempt::Granted;
            }
        }

        // Step 1b: conflicting granted locks of other transactions — each
        // must either permit us (then it gets suspended) or block us. A
        // *suspended* lock has ceded its claim to the permitted operations
        // but still guards against unpermitted ones, so it participates in
        // the permit check too.
        let mut to_suspend: Vec<Tid> = Vec::new();
        let mut blockers: Vec<Tid> = Vec::new();
        for gl in od.granted.iter() {
            if gl.tid == tid || !gl.mode.conflicts(mode) {
                continue;
            }
            if inner.permits.permits(gl.tid, tid, ob, op) {
                to_suspend.push(gl.tid);
            } else {
                blockers.push(gl.tid);
            }
        }
        if !blockers.is_empty() {
            return Attempt::Blocked(blockers);
        }

        // Step 2: grant. Suspend the permitted conflicting locks, then
        // create or refresh our LRD.
        for holder in &to_suspend {
            if let Some(gl) = od.granted.iter_mut().find(|g| g.tid == *holder) {
                if !gl.suspended {
                    gl.suspended = true;
                    inner.stats.suspensions += 1;
                }
            }
        }
        match od.granted.iter_mut().find(|g| g.tid == tid) {
            Some(own) => {
                // 2b: change mode / remove suspension
                own.mode = own.mode.max(mode);
                own.suspended = false;
            }
            None => {
                od.granted.push(Lrd { tid, mode, suspended: false });
            }
        }
        inner.txn_objects.entry(tid).or_default().insert(ob);
        inner.stats.grants += 1;
        Attempt::Granted
    }

    fn note_waiting(inner: &mut Inner, tid: Tid, ob: Oid, mode: LockMode, holders: &[Tid]) {
        let od = inner.objects.entry(ob).or_default();
        let upgrading = od.granted.iter().any(|g| g.tid == tid);
        if !od.pending.iter().any(|p| p.tid == tid) {
            od.pending.push(PendingReq { tid, mode, upgrading });
        }
        inner
            .waits_for
            .insert(tid, holders.iter().copied().collect());
    }

    fn clear_waiting(inner: &mut Inner, tid: Tid, ob: Oid) {
        if let Some(od) = inner.objects.get_mut(&ob) {
            od.pending.retain(|p| p.tid != tid);
        }
        inner.waits_for.remove(&tid);
    }

    /// Is `tid` part of a waits-for cycle? (`tid` just registered its
    /// edges, so any new cycle passes through it.)
    fn in_deadlock(inner: &Inner, tid: Tid) -> bool {
        let Some(blockers) = inner.waits_for.get(&tid) else { return false };
        let mut stack: Vec<Tid> = blockers.iter().copied().collect();
        let mut seen: HashSet<Tid> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == tid {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = inner.waits_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Record a permit (wakes waiters — they may now be allowed through).
    pub fn permit(&self, grantor: Tid, grantee: Option<Tid>, obs: ObSet, ops: OpSet) {
        let mut inner = self.inner.lock();
        inner.permits.insert(Permit { grantor, grantee, obs, ops });
        drop(inner);
        self.cv.notify_all();
    }

    /// The paper's `permit(ti, tj, op)` form: permit on every object the
    /// grantor has accessed *or has permission to access*, materialized at
    /// call time by traversing the grantor's LRD list and incoming PDs.
    pub fn permit_accessed(&self, grantor: Tid, grantee: Option<Tid>, ops: OpSet) {
        let mut inner = self.inner.lock();
        let mut obs: std::collections::BTreeSet<Oid> = inner
            .txn_objects
            .get(&grantor)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut all = false;
        for p in inner.permits.granted_to(grantor) {
            match p.obs {
                ObSet::All => {
                    all = true;
                    break;
                }
                ObSet::Objects(s) => obs.extend(s),
            }
        }
        let scope = if all { ObSet::All } else { ObSet::Objects(obs) };
        inner.permits.insert(Permit { grantor, grantee, obs: scope, ops });
        drop(inner);
        self.cv.notify_all();
    }

    /// Delegate `from`'s locks (optionally restricted to `obs`) to `to`,
    /// merging with any locks `to` already holds, and re-attribute the
    /// permits `from` granted (§4.2 `delegate`).
    pub fn delegate(&self, from: Tid, to: Tid, obs: Option<&ObSet>) {
        let mut inner = self.inner.lock();
        let from_objects: Vec<Oid> = inner
            .txn_objects
            .get(&from)
            .map(|s| {
                s.iter()
                    .copied()
                    .filter(|ob| obs.is_none_or(|set| set.contains(*ob)))
                    .collect()
            })
            .unwrap_or_default();
        for ob in &from_objects {
            let od = inner.objects.entry(*ob).or_default();
            let Some(pos) = od.granted.iter().position(|g| g.tid == from) else { continue };
            let moved = od.granted.remove(pos);
            match od.granted.iter_mut().find(|g| g.tid == to) {
                Some(existing) => {
                    existing.mode = existing.mode.max(moved.mode);
                    existing.suspended = existing.suspended && moved.suspended;
                }
                None => od.granted.push(Lrd { tid: to, ..moved }),
            }
            if let Some(set) = inner.txn_objects.get_mut(&from) {
                set.remove(ob);
            }
            inner.txn_objects.entry(to).or_default().insert(*ob);
        }
        inner.permits.reattribute(from, to, obs);
        drop(inner);
        self.cv.notify_all();
    }

    /// Release all locks held by `tid` and remove permits given by and to
    /// it (commit step 6 / abort step 3). Returns the objects released.
    pub fn release_all(&self, tid: Tid) -> Vec<Oid> {
        let mut inner = self.inner.lock();
        let objects: Vec<Oid> = inner
            .txn_objects
            .remove(&tid)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for ob in &objects {
            if let Some(od) = inner.objects.get_mut(ob) {
                od.granted.retain(|g| g.tid != tid);
                od.pending.retain(|p| p.tid != tid);
                if od.granted.is_empty() && od.pending.is_empty() {
                    inner.objects.remove(ob);
                }
            }
        }
        inner.permits.remove_involving(tid);
        inner.waits_for.remove(&tid);
        inner.poisoned.remove(&tid);
        drop(inner);
        self.cv.notify_all();
        objects
    }

    /// Make current and future lock waits of `tid` fail with `TxnAborted`
    /// and wake it if blocked. Used when an abort strikes a transaction
    /// that may be waiting for a lock. Cleared by
    /// [`release_all`](Self::release_all).
    pub fn poison(&self, tid: Tid) {
        let mut inner = self.inner.lock();
        inner.poisoned.insert(tid);
        drop(inner);
        self.cv.notify_all();
    }

    /// Granted locks on `ob` (snapshot).
    pub fn holders(&self, ob: Oid) -> Vec<Lrd> {
        self.inner
            .lock()
            .objects
            .get(&ob)
            .map(|od| od.granted.clone())
            .unwrap_or_default()
    }

    /// Pending requests on `ob` (snapshot).
    pub fn pending(&self, ob: Oid) -> Vec<PendingReq> {
        self.inner
            .lock()
            .objects
            .get(&ob)
            .map(|od| od.pending.clone())
            .unwrap_or_default()
    }

    /// Objects `tid` holds locks on (snapshot).
    pub fn locked_objects(&self, tid: Tid) -> Vec<Oid> {
        self.inner
            .lock()
            .txn_objects
            .get(&tid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Does `tid` hold an (unsuspended) lock on `ob` covering `mode`?
    pub fn holds(&self, tid: Tid, ob: Oid, mode: LockMode) -> bool {
        self.inner
            .lock()
            .objects
            .get(&ob)
            .map(|od| {
                od.granted
                    .iter()
                    .any(|g| g.tid == tid && !g.suspended && g.mode.covers(mode))
            })
            .unwrap_or(false)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LockStats {
        self.inner.lock().stats
    }

    /// Number of permits currently registered.
    pub fn permit_count(&self) -> usize {
        self.inner.lock().permits.len()
    }

    /// Run `f` with the permit table (read-only; diagnostics/benches).
    pub fn with_permits<R>(&self, f: impl FnOnce(&PermitTable) -> R) -> R {
        f(&self.inner.lock().permits)
    }
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const NO_TIMEOUT: Option<Duration> = None;
    fn short() -> Option<Duration> {
        Some(Duration::from_millis(50))
    }

    #[test]
    fn shared_locks_coexist() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        t.lock(Tid(2), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        assert_eq!(t.holders(Oid(1)).len(), 2);
    }

    #[test]
    fn write_blocks_write_until_release() {
        let t = Arc::new(LockTable::new());
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        assert!(t.try_lock(Tid(2), Oid(1), Operation::Write).is_err());

        let t2 = Arc::clone(&t);
        let acquired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&acquired);
        let h = std::thread::spawn(move || {
            t2.lock(Tid(2), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
            flag.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!acquired.load(Ordering::SeqCst));
        t.release_all(Tid(1));
        h.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
    }

    #[test]
    fn upgrade_read_to_write() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        assert!(t.holds(Tid(1), Oid(1), LockMode::Write));
    }

    #[test]
    fn upgrade_blocks_on_other_reader() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        t.lock(Tid(2), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        let err = t.lock(Tid(1), Oid(1), Operation::Write, short()).unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
        // the pending entry was marked as an upgrade while waiting —
        // verified indirectly: after the other reader leaves, upgrade works
        t.release_all(Tid(2));
        t.lock(Tid(1), Oid(1), Operation::Write, short()).unwrap();
    }

    #[test]
    fn permit_lets_conflict_through_and_suspends() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::WRITE);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        let holders = t.holders(Oid(1));
        let h1 = holders.iter().find(|g| g.tid == Tid(1)).unwrap();
        let h2 = holders.iter().find(|g| g.tid == Tid(2)).unwrap();
        assert!(h1.suspended, "permitting holder was suspended");
        assert!(!h2.suspended);
        assert_eq!(t.stats().suspensions, 1);
        // t1's lock is suspended: it no longer *holds* write
        assert!(!t.holds(Tid(1), Oid(1), LockMode::Write));
    }

    #[test]
    fn suspended_holder_must_reacquire() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        // t1 tries again: t2 now holds an unsuspended conflicting lock and
        // has not permitted t1 back — t1 blocks.
        let err = t.lock(Tid(1), Oid(1), Operation::Write, short()).unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
        // ping-pong: t2 permits t1 back; now t1 gets through and t2 is
        // suspended in turn (the paper's cooperating-transactions pattern).
        t.permit(Tid(2), Some(Tid(1)), ObSet::one(Oid(1)), OpSet::ALL);
        t.lock(Tid(1), Oid(1), Operation::Write, short()).unwrap();
        assert!(t.holds(Tid(1), Oid(1), LockMode::Write));
        assert!(!t.holds(Tid(2), Oid(1), LockMode::Write));
    }

    #[test]
    fn permit_scope_is_respected() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.lock(Tid(1), Oid(2), Operation::Write, NO_TIMEOUT).unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        let err = t.lock(Tid(2), Oid(2), Operation::Write, short()).unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }), "ob2 not permitted");
    }

    #[test]
    fn wildcard_permit_covers_everyone() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.permit(Tid(1), None, ObSet::one(Oid(1)), OpSet::WRITE);
        t.lock(Tid(7), Oid(1), Operation::Write, short()).unwrap();
        t.release_all(Tid(7));
        t.lock(Tid(8), Oid(1), Operation::Write, short()).unwrap();
    }

    #[test]
    fn read_permit_does_not_allow_write() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::READ);
        t.lock(Tid(2), Oid(1), Operation::Read, short()).unwrap();
        let err = t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
    }

    #[test]
    fn transitive_permit_through_table() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        t.permit(Tid(2), Some(Tid(3)), ObSet::one(Oid(1)), OpSet::ALL);
        // t3 never got a direct permit from t1 but the chain carries it
        t.lock(Tid(3), Oid(1), Operation::Write, short()).unwrap();
        assert!(t.holds(Tid(3), Oid(1), LockMode::Write));
    }

    #[test]
    fn deadlock_detected_and_victim_errors() {
        let t = Arc::new(LockTable::new());
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.lock(Tid(2), Oid(2), Operation::Write, NO_TIMEOUT).unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            // t1 waits for ob2 (held by t2)
            t2.lock(Tid(1), Oid(2), Operation::Write, Some(Duration::from_secs(5)))
        });
        std::thread::sleep(Duration::from_millis(30));
        // t2 requests ob1 (held by t1) → cycle → t2 is the victim
        let err = t
            .lock(Tid(2), Oid(1), Operation::Write, Some(Duration::from_secs(5)))
            .unwrap_err();
        assert!(matches!(err, AssetError::Deadlock(Tid(2))));
        assert_eq!(t.stats().deadlocks, 1);
        // unblock t1 by releasing the victim's locks (what abort would do)
        t.release_all(Tid(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn delegation_moves_locks() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.lock(Tid(1), Oid(2), Operation::Read, NO_TIMEOUT).unwrap();
        t.delegate(Tid(1), Tid(2), None);
        assert!(t.holds(Tid(2), Oid(1), LockMode::Write));
        assert!(t.holds(Tid(2), Oid(2), LockMode::Read));
        assert!(t.locked_objects(Tid(1)).is_empty());
        // the delegatee's conflicting ops no longer conflict; the
        // delegator's now do: t1 must block on ob1
        let err = t.lock(Tid(1), Oid(1), Operation::Write, short()).unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
    }

    #[test]
    fn partial_delegation_moves_only_named_objects() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.lock(Tid(1), Oid(2), Operation::Write, NO_TIMEOUT).unwrap();
        t.delegate(Tid(1), Tid(2), Some(&ObSet::one(Oid(1))));
        assert!(t.holds(Tid(2), Oid(1), LockMode::Write));
        assert!(t.holds(Tid(1), Oid(2), LockMode::Write));
        assert_eq!(t.locked_objects(Tid(1)), vec![Oid(2)]);
    }

    #[test]
    fn delegation_merges_modes() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.lock(Tid(2), Oid(1), Operation::Read, short()).unwrap_err(); // blocked
        // instead: t2 gets a read lock on another object and receives t1's
        // write via delegation, merging into write
        let t2 = LockTable::new();
        t2.lock(Tid(1), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        t2.lock(Tid(2), Oid(1), Operation::Read, NO_TIMEOUT).unwrap();
        // t1 upgrades? no — t1 delegates its read to t2; t2 ends with read
        t2.delegate(Tid(1), Tid(2), None);
        assert!(t2.holds(Tid(2), Oid(1), LockMode::Read));
        assert_eq!(t2.holders(Oid(1)).len(), 1, "merged into one LRD");
    }

    #[test]
    fn release_wakes_waiters_and_cleans_permits() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        assert_eq!(t.permit_count(), 1);
        let released = t.release_all(Tid(1));
        assert_eq!(released, vec![Oid(1)]);
        assert_eq!(t.permit_count(), 0, "permits given by t1 are gone");
        assert!(t.holders(Oid(1)).is_empty());
    }

    #[test]
    fn permit_accessed_materializes_current_locks() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        t.lock(Tid(1), Oid(2), Operation::Write, NO_TIMEOUT).unwrap();
        t.permit_accessed(Tid(1), Some(Tid(2)), OpSet::ALL);
        t.lock(Tid(2), Oid(1), Operation::Write, short()).unwrap();
        t.lock(Tid(2), Oid(2), Operation::Write, short()).unwrap();
        // an object locked *after* the permit is not covered (paper: the
        // object set is computed at permit time)
        t.lock(Tid(1), Oid(3), Operation::Write, NO_TIMEOUT).unwrap();
        let err = t.lock(Tid(2), Oid(3), Operation::Write, short()).unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
    }

    #[test]
    fn permit_arrival_wakes_blocked_waiter() {
        let t = Arc::new(LockTable::new());
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.lock(Tid(2), Oid(1), Operation::Write, Some(Duration::from_secs(5)))
        });
        std::thread::sleep(Duration::from_millis(30));
        t.permit(Tid(1), Some(Tid(2)), ObSet::one(Oid(1)), OpSet::ALL);
        h.join().unwrap().unwrap();
        assert!(t.holds(Tid(2), Oid(1), LockMode::Write));
    }

    #[test]
    fn stats_accumulate() {
        let t = LockTable::new();
        t.lock(Tid(1), Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
        let _ = t.lock(Tid(2), Oid(1), Operation::Write, short());
        let s = t.stats();
        assert_eq!(s.grants, 1);
        assert!(s.blocks >= 1);
        assert_eq!(s.timeouts, 1);
    }

    #[test]
    fn concurrent_increments_are_serialized_by_locks() {
        let t = Arc::new(LockTable::new());
        let value = Arc::new(Mutex::new(0u64));
        let mut handles = vec![];
        for i in 0..8u64 {
            let t = Arc::clone(&t);
            let value = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                let tid = Tid(i + 1);
                for _ in 0..100 {
                    t.lock(tid, Oid(1), Operation::Write, NO_TIMEOUT).unwrap();
                    {
                        let mut v = value.lock();
                        *v += 1;
                    }
                    t.release_all(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*value.lock(), 800);
    }
}

//! The wait-edge collector feeding deadlock detection.
//!
//! Blocked lock requests publish their waits-for edges here instead of
//! keeping them inside the (sharded) lock table, so cycle detection never
//! holds — or waits on — a lock-table shard: grants proceed while a blocked
//! transaction checks for deadlock. The collector is a detector-owned mutex
//! over the edge map plus a relaxed waiter counter that lets the fast path
//! skip the map entirely when nobody is blocked.

use asset_common::sync::Mutex;
use asset_common::Tid;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The waits-for graph: `waiting tid → the holders blocking it`.
#[derive(Default)]
pub struct WaitGraph {
    edges: Mutex<HashMap<Tid, HashSet<Tid>>>,
    waiters: AtomicUsize,
}

impl WaitGraph {
    /// An empty graph.
    pub fn new() -> WaitGraph {
        WaitGraph::default()
    }

    /// Record (replacing any previous set) the holders `tid` is blocked on.
    pub fn publish(&self, tid: Tid, holders: &[Tid]) {
        let mut edges = self.edges.lock();
        if edges
            .insert(tid, holders.iter().copied().collect())
            .is_none()
        {
            self.waiters.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Remove `tid`'s edges (it was granted, errored out, or timed out).
    pub fn clear(&self, tid: Tid) {
        let mut edges = self.edges.lock();
        if edges.remove(&tid).is_some() {
            self.waiters.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Is `tid` part of a waits-for cycle? (`tid` just published its edges,
    /// so any new cycle passes through it.)
    pub fn cycle_through(&self, tid: Tid) -> bool {
        let edges = self.edges.lock();
        let Some(blockers) = edges.get(&tid) else {
            return false;
        };
        let mut stack: Vec<Tid> = blockers.iter().copied().collect();
        let mut seen: HashSet<Tid> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == tid {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Number of currently blocked transactions (relaxed; fast-path skip).
    pub fn waiter_count(&self) -> usize {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Copy of the current edge map (periodic detectors, diagnostics).
    pub fn snapshot(&self) -> HashMap<Tid, HashSet<Tid>> {
        self.edges.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_clear_count() {
        let g = WaitGraph::new();
        assert_eq!(g.waiter_count(), 0);
        g.publish(Tid(1), &[Tid(2)]);
        g.publish(Tid(1), &[Tid(3)]); // replace, not double-count
        assert_eq!(g.waiter_count(), 1);
        g.clear(Tid(1));
        g.clear(Tid(1)); // idempotent
        assert_eq!(g.waiter_count(), 0);
    }

    #[test]
    fn detects_cycles_through_publisher() {
        let g = WaitGraph::new();
        g.publish(Tid(1), &[Tid(2)]);
        assert!(!g.cycle_through(Tid(1)));
        g.publish(Tid(2), &[Tid(3)]);
        g.publish(Tid(3), &[Tid(1)]);
        assert!(g.cycle_through(Tid(3)));
        assert!(g.cycle_through(Tid(1)));
        g.clear(Tid(2));
        assert!(!g.cycle_through(Tid(1)));
    }
}

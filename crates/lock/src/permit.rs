//! Permit descriptors (PDs) and the permission-checking logic.
//!
//! A permit `(grantor, grantee, ob_set, operations)` lets `grantee` perform
//! the listed operations on the listed objects even when they conflict with
//! locks held by `grantor` (paper §2.2). The paper's wildcard forms map to
//! `grantee = None` ("any transaction"), `ObSet::All`, and `OpSet::ALL`.
//!
//! Permits are **transitive** with scope intersection:
//! `permit(ti,tj,S,ops)` followed by `permit(tj,tk,S',ops')` acts as
//! `permit(ti,tk,S∩S',ops∩ops')`. [`PermitTable::permits`] evaluates that
//! closure with a depth-first search whose scope shrinks along the chain.
//!
//! The table is *doubly hashed* on grantor and grantee — the paper's layout
//! — so permissions given by or to a transaction can be located efficiently
//! (needed for delegation re-attribution and commit-time cleanup).

use asset_annot::verify_allow;
use asset_common::{ObSet, Oid, OpSet, Operation, Tid};
use std::collections::{HashMap, HashSet};

/// A permit descriptor.
#[derive(Clone, Debug)]
pub struct Permit {
    /// The transaction whose locks are being relaxed.
    pub grantor: Tid,
    /// The beneficiary; `None` means any transaction.
    pub grantee: Option<Tid>,
    /// The objects covered.
    pub obs: ObSet,
    /// The operations covered.
    pub ops: OpSet,
}

/// Identifier of a permit within the table.
pub type PermitId = u64;

/// The doubly-hashed permit table.
#[derive(Default)]
pub struct PermitTable {
    permits: HashMap<PermitId, Permit>,
    by_grantor: HashMap<Tid, Vec<PermitId>>,
    /// `None`-grantee (wildcard) permits are indexed under `Tid::NULL`.
    by_grantee: HashMap<Tid, Vec<PermitId>>,
    next_id: PermitId,
}

impl PermitTable {
    /// An empty table.
    pub fn new() -> PermitTable {
        PermitTable::default()
    }

    /// Number of live permits.
    pub fn len(&self) -> usize {
        self.permits.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.permits.is_empty()
    }

    fn grantee_key(grantee: Option<Tid>) -> Tid {
        grantee.unwrap_or(Tid::NULL)
    }

    /// Record a permit; returns its id.
    pub fn insert(&mut self, permit: Permit) -> PermitId {
        let id = self.next_id;
        self.next_id += 1;
        self.by_grantor.entry(permit.grantor).or_default().push(id);
        self.by_grantee
            .entry(Self::grantee_key(permit.grantee))
            .or_default()
            .push(id);
        self.permits.insert(id, permit);
        id
    }

    fn unindex(&mut self, id: PermitId, p: &Permit) {
        if let Some(v) = self.by_grantor.get_mut(&p.grantor) {
            v.retain(|&x| x != id);
            if v.is_empty() {
                self.by_grantor.remove(&p.grantor);
            }
        }
        let gk = Self::grantee_key(p.grantee);
        if let Some(v) = self.by_grantee.get_mut(&gk) {
            v.retain(|&x| x != id);
            if v.is_empty() {
                self.by_grantee.remove(&gk);
            }
        }
    }

    /// Remove every permit given *by* or *to* `tid` (paper commit step 6 /
    /// abort step 3 cleanup).
    pub fn remove_involving(&mut self, tid: Tid) -> usize {
        let mut ids: Vec<PermitId> = Vec::new();
        if let Some(v) = self.by_grantor.get(&tid) {
            ids.extend_from_slice(v);
        }
        if let Some(v) = self.by_grantee.get(&tid) {
            ids.extend_from_slice(v);
        }
        ids.sort_unstable();
        ids.dedup();
        for id in &ids {
            if let Some(p) = self.permits.remove(id) {
                self.unindex(*id, &p);
            }
        }
        ids.len()
    }

    /// Re-attribute permits granted by `from` to be granted by `to`
    /// (delegation, §4.2: "change any PD of the form (ti, tk, op) to
    /// (tj, tk, op)"). With `obs = Some(set)`, only permits whose object
    /// scope intersects the delegated set move; the intersecting portion is
    /// split off, matching object-granularity delegation.
    pub fn reattribute(&mut self, from: Tid, to: Tid, obs: Option<&ObSet>) {
        let ids: Vec<PermitId> = self.by_grantor.get(&from).cloned().unwrap_or_default();
        for id in ids {
            let Some(p) = self.permits.get(&id).cloned() else {
                continue;
            };
            match obs {
                None => {
                    // full delegation: move the permit wholesale
                    self.permits.remove(&id);
                    self.unindex(id, &p);
                    self.insert(Permit { grantor: to, ..p });
                }
                Some(set) => {
                    let moved_scope = p.obs.intersect(set);
                    if moved_scope.is_empty() {
                        continue;
                    }
                    // split: the moved part re-inserted under `to`; the
                    // remainder (if any) stays under `from`.
                    let remainder = match (&p.obs, set) {
                        (ObSet::All, ObSet::Objects(_)) => Some(ObSet::All), // conservative: keep full
                        (ObSet::Objects(have), ObSet::Objects(taken)) => {
                            let rest: std::collections::BTreeSet<Oid> =
                                have.difference(taken).copied().collect();
                            if rest.is_empty() {
                                None
                            } else {
                                Some(ObSet::Objects(rest))
                            }
                        }
                        (_, ObSet::All) => None,
                    };
                    self.permits.remove(&id);
                    self.unindex(id, &p);
                    self.insert(Permit {
                        grantor: to,
                        obs: moved_scope,
                        ..p.clone()
                    });
                    if let Some(rest) = remainder {
                        self.insert(Permit {
                            grantor: from,
                            obs: rest,
                            ..p
                        });
                    }
                }
            }
        }
    }

    /// Does `holder` (the transaction whose granted lock conflicts) permit
    /// `requester` to perform `op` on `ob`, directly or through a
    /// transitive chain of permits?
    pub fn permits(&self, holder: Tid, requester: Tid, ob: Oid, op: Operation) -> bool {
        permits_across(&[self], holder, requester, ob, op)
    }

    /// Permits granted by `tid`, borrowed (the DFS edge list).
    pub fn edges_from(&self, tid: Tid) -> impl Iterator<Item = &Permit> {
        self.by_grantor
            .get(&tid)
            .into_iter()
            .flatten()
            .filter_map(|id| self.permits.get(id))
    }

    /// All permits granted by `tid` (snapshot; used to materialize the
    /// paper's `permit(ti, tj, op)` form over objects `ti` has permission
    /// to access).
    pub fn granted_by(&self, tid: Tid) -> Vec<Permit> {
        self.by_grantor
            .get(&tid)
            .into_iter()
            .flatten()
            .filter_map(|id| self.permits.get(id).cloned())
            .collect()
    }

    /// All permits where `tid` is the explicit grantee.
    pub fn granted_to(&self, tid: Tid) -> Vec<Permit> {
        self.by_grantee
            .get(&tid)
            .into_iter()
            .flatten()
            .filter_map(|id| self.permits.get(id).cloned())
            .collect()
    }

    /// Permits that explicitly mention `ob` (the paper's OD-attached PD
    /// list; diagnostics and the E9 structures bench).
    pub fn mentioning(&self, ob: Oid) -> Vec<Permit> {
        self.permits
            .values()
            .filter(|p| p.obs.contains(ob))
            .cloned()
            .collect()
    }
}

/// The transitive permission check over the **union** of several permit
/// tables. The sharded lock table stores single-shard permits in the
/// object's shard and wildcard/cross-shard permits in a global table; a
/// chain may hop between the two, so the DFS follows `by_grantor` edges of
/// every table at every hop.
#[verify_allow(
    lock_order,
    reason = "blessed: pure DFS over caller-held tables, acquires no locks itself"
)]
pub fn permits_across(
    tables: &[&PermitTable],
    holder: Tid,
    requester: Tid,
    ob: Oid,
    op: Operation,
) -> bool {
    permits_across_depth(tables, holder, requester, ob, op).0
}

/// [`permits_across`], additionally reporting the length of the permit
/// chain that settled the answer: the number of permit hops on the granting
/// chain (1 = direct permit), or — when permission is denied — the length
/// of the longest chain the DFS explored. `holder == requester` reports
/// depth 0 (no permit consulted). The depth feeds the observability layer's
/// `permit_chain_len` histogram.
#[verify_allow(
    lock_order,
    reason = "blessed: pure DFS over caller-held tables, acquires no locks itself"
)]
pub fn permits_across_depth(
    tables: &[&PermitTable],
    holder: Tid,
    requester: Tid,
    ob: Oid,
    op: Operation,
) -> (bool, usize) {
    if holder == requester {
        return (true, 0);
    }
    let mut on_path: HashSet<Tid> = HashSet::new();
    on_path.insert(holder);
    let mut max_depth = 0usize;
    let granted = dfs_across(
        tables,
        holder,
        requester,
        ob,
        op,
        &mut on_path,
        1,
        &mut max_depth,
    );
    (granted, max_depth)
}

#[allow(clippy::too_many_arguments)]
fn dfs_across(
    tables: &[&PermitTable],
    from: Tid,
    target: Tid,
    ob: Oid,
    op: Operation,
    on_path: &mut HashSet<Tid>,
    depth: usize,
    max_depth: &mut usize,
) -> bool {
    for table in tables {
        for p in table.edges_from(from) {
            // scope check: the chain's effective scope is the intersection
            // of every hop; since we test one (ob, op) point, intersection
            // membership == membership at every hop.
            if !p.obs.contains(ob) || !p.ops.contains(op) {
                continue;
            }
            *max_depth = (*max_depth).max(depth);
            match p.grantee {
                None => {
                    *max_depth = depth;
                    return true; // wildcard: any transaction, incl. target
                }
                Some(g) if g == target => {
                    *max_depth = depth;
                    return true;
                }
                Some(g) => {
                    if on_path.insert(g) {
                        if dfs_across(tables, g, target, ob, op, on_path, depth + 1, max_depth) {
                            return true;
                        }
                        on_path.remove(&g);
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(grantor: u64, grantee: Option<u64>, obs: ObSet, ops: OpSet) -> Permit {
        Permit {
            grantor: Tid(grantor),
            grantee: grantee.map(Tid),
            obs,
            ops,
        }
    }

    #[test]
    fn direct_permit() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::one(Oid(10)), OpSet::WRITE));
        assert!(t.permits(Tid(1), Tid(2), Oid(10), Operation::Write));
        assert!(!t.permits(Tid(1), Tid(2), Oid(10), Operation::Read));
        assert!(!t.permits(Tid(1), Tid(2), Oid(11), Operation::Write));
        assert!(!t.permits(Tid(1), Tid(3), Oid(10), Operation::Write));
        assert!(
            !t.permits(Tid(2), Tid(1), Oid(10), Operation::Write),
            "not symmetric"
        );
    }

    #[test]
    fn self_is_always_permitted() {
        let t = PermitTable::new();
        assert!(t.permits(Tid(1), Tid(1), Oid(1), Operation::Write));
    }

    #[test]
    fn wildcard_grantee() {
        let mut t = PermitTable::new();
        t.insert(p(1, None, ObSet::one(Oid(5)), OpSet::ALL));
        assert!(t.permits(Tid(1), Tid(99), Oid(5), Operation::Write));
        assert!(!t.permits(Tid(1), Tid(99), Oid(6), Operation::Write));
    }

    #[test]
    fn wildcard_objects_and_ops() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::All, OpSet::ALL));
        assert!(t.permits(Tid(1), Tid(2), Oid(123), Operation::Read));
        assert!(t.permits(Tid(1), Tid(2), Oid(456), Operation::Write));
    }

    #[test]
    fn transitive_chain_intersects_scopes() {
        let mut t = PermitTable::new();
        // t1 permits t2 on {1,2} read+write; t2 permits t3 on {2,3} write.
        t.insert(p(
            1,
            Some(2),
            ObSet::from_slice(&[Oid(1), Oid(2)]),
            OpSet::ALL,
        ));
        t.insert(p(
            2,
            Some(3),
            ObSet::from_slice(&[Oid(2), Oid(3)]),
            OpSet::WRITE,
        ));
        // effective permit t1 -> t3: {2} x {write}
        assert!(t.permits(Tid(1), Tid(3), Oid(2), Operation::Write));
        assert!(
            !t.permits(Tid(1), Tid(3), Oid(1), Operation::Write),
            "ob not in 2nd hop"
        );
        assert!(
            !t.permits(Tid(1), Tid(3), Oid(3), Operation::Write),
            "ob not in 1st hop"
        );
        assert!(
            !t.permits(Tid(1), Tid(3), Oid(2), Operation::Read),
            "op intersected away"
        );
    }

    #[test]
    fn transitive_cycle_terminates() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::All, OpSet::ALL));
        t.insert(p(2, Some(1), ObSet::All, OpSet::ALL));
        // no path 1 -> 3 even though 1 and 2 permit each other
        assert!(!t.permits(Tid(1), Tid(3), Oid(1), Operation::Read));
        // but 1 -> 2 holds
        assert!(t.permits(Tid(1), Tid(2), Oid(1), Operation::Read));
    }

    #[test]
    fn chain_through_wildcard_grantee_short_circuits() {
        let mut t = PermitTable::new();
        t.insert(p(1, None, ObSet::All, OpSet::READ));
        // anyone may read anything of t1's
        assert!(t.permits(Tid(1), Tid(42), Oid(7), Operation::Read));
        assert!(!t.permits(Tid(1), Tid(42), Oid(7), Operation::Write));
    }

    #[test]
    fn remove_involving_cleans_both_sides() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::All, OpSet::ALL));
        t.insert(p(3, Some(1), ObSet::All, OpSet::ALL));
        t.insert(p(4, Some(5), ObSet::All, OpSet::ALL));
        assert_eq!(t.len(), 3);
        let removed = t.remove_involving(Tid(1));
        assert_eq!(removed, 2);
        assert_eq!(t.len(), 1);
        assert!(!t.permits(Tid(1), Tid(2), Oid(1), Operation::Read));
        assert!(!t.permits(Tid(3), Tid(1), Oid(1), Operation::Read));
        assert!(t.permits(Tid(4), Tid(5), Oid(1), Operation::Read));
    }

    #[test]
    fn reattribute_full_delegation() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::one(Oid(9)), OpSet::ALL));
        t.reattribute(Tid(1), Tid(7), None);
        assert!(!t.permits(Tid(1), Tid(2), Oid(9), Operation::Read));
        assert!(t.permits(Tid(7), Tid(2), Oid(9), Operation::Read));
    }

    #[test]
    fn reattribute_partial_splits_scope() {
        let mut t = PermitTable::new();
        t.insert(p(
            1,
            Some(2),
            ObSet::from_slice(&[Oid(1), Oid(2)]),
            OpSet::ALL,
        ));
        // delegate only ob1 from t1 to t3
        t.reattribute(Tid(1), Tid(3), Some(&ObSet::one(Oid(1))));
        assert!(
            t.permits(Tid(3), Tid(2), Oid(1), Operation::Read),
            "moved part"
        );
        assert!(
            t.permits(Tid(1), Tid(2), Oid(2), Operation::Read),
            "remainder stays"
        );
        assert!(
            !t.permits(Tid(1), Tid(2), Oid(1), Operation::Read),
            "moved away"
        );
    }

    #[test]
    fn reattribute_ignores_disjoint_permits() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::one(Oid(5)), OpSet::ALL));
        t.reattribute(Tid(1), Tid(3), Some(&ObSet::one(Oid(9))));
        assert!(t.permits(Tid(1), Tid(2), Oid(5), Operation::Read));
        assert!(!t.permits(Tid(3), Tid(2), Oid(5), Operation::Read));
    }

    #[test]
    fn granted_by_and_to() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::All, OpSet::ALL));
        t.insert(p(1, Some(3), ObSet::All, OpSet::READ));
        t.insert(p(4, Some(1), ObSet::All, OpSet::ALL));
        assert_eq!(t.granted_by(Tid(1)).len(), 2);
        assert_eq!(t.granted_to(Tid(1)).len(), 1);
        assert_eq!(t.granted_by(Tid(9)).len(), 0);
    }

    #[test]
    fn chain_hops_between_tables() {
        // t1 -> t2 lives in one table, t2 -> t3 in another; the union DFS
        // must stitch the chain together (shard table + global table).
        let mut a = PermitTable::new();
        let mut b = PermitTable::new();
        a.insert(p(1, Some(2), ObSet::one(Oid(5)), OpSet::ALL));
        b.insert(p(2, Some(3), ObSet::All, OpSet::ALL));
        assert!(permits_across(
            &[&a, &b],
            Tid(1),
            Tid(3),
            Oid(5),
            Operation::Write
        ));
        assert!(!permits_across(
            &[&a],
            Tid(1),
            Tid(3),
            Oid(5),
            Operation::Write
        ));
        assert!(!permits_across(
            &[&b],
            Tid(1),
            Tid(3),
            Oid(5),
            Operation::Write
        ));
        // scope still intersects along the stitched chain
        assert!(!permits_across(
            &[&a, &b],
            Tid(1),
            Tid(3),
            Oid(6),
            Operation::Write
        ));
    }

    #[test]
    fn depth_reports_chain_length() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::All, OpSet::ALL));
        t.insert(p(2, Some(3), ObSet::All, OpSet::ALL));
        // self: no permit consulted
        assert_eq!(
            permits_across_depth(&[&t], Tid(1), Tid(1), Oid(1), Operation::Read),
            (true, 0)
        );
        // direct permit: one hop
        assert_eq!(
            permits_across_depth(&[&t], Tid(1), Tid(2), Oid(1), Operation::Read),
            (true, 1)
        );
        // transitive: two hops
        assert_eq!(
            permits_across_depth(&[&t], Tid(1), Tid(3), Oid(1), Operation::Read),
            (true, 2)
        );
        // denied: reports how far the search got
        let (ok, depth) = permits_across_depth(&[&t], Tid(1), Tid(9), Oid(1), Operation::Read);
        assert!(!ok);
        assert_eq!(depth, 2);
    }

    #[test]
    fn mentioning_object() {
        let mut t = PermitTable::new();
        t.insert(p(1, Some(2), ObSet::one(Oid(5)), OpSet::ALL));
        t.insert(p(1, Some(2), ObSet::All, OpSet::ALL));
        t.insert(p(1, Some(2), ObSet::one(Oid(6)), OpSet::ALL));
        assert_eq!(t.mentioning(Oid(5)).len(), 2); // explicit + wildcard
    }
}

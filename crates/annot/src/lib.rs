//! # asset-annot
//!
//! Invariant-annotation attributes for the ASSET workspace. Every macro in
//! this crate is a **no-op at compile time**: it returns the annotated item
//! unchanged and generates no code. The annotations exist to be read by
//! `asset-verify` (the workspace invariant analyzer), which parses source
//! text rather than expanded token streams — the attributes are the
//! machine-checked inventory of WAL-ordering contracts and rule
//! suppressions.
//!
//! See `DESIGN.md` §11 for the rule catalog and suppression syntax.

use proc_macro::TokenStream;

/// Declare a WAL-discipline contract on a function (rule **R1**).
///
/// `#[wal(logs = "log_record", mutates = "slot.status = TxnStatus::Running")]`
/// asserts that the first call to a log-reaching function matching `logs`
/// textually precedes the first occurrence of the `mutates` token sequence
/// in the function body. `asset-verify` checks the ordering and that the
/// `logs` callee actually reaches an append sink through the call graph.
#[proc_macro_attribute]
pub fn wal(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Suppress one named `asset-verify` rule for the annotated function.
///
/// `#[verify_allow(lock_order, reason = "ordered multi-lock helper")]`
/// — the rule name is one of `wal`, `lock_order`, `failpoint_coverage`,
/// `no_panics`, `exec_step`; the `reason` is mandatory and is surfaced by the analyzer
/// in `--list-allows` output so suppressions stay auditable.
#[proc_macro_attribute]
pub fn verify_allow(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Mark a function as an **executor worker step** for rule **R5**: the
/// function runs on a worker-pool thread that drives many transactions,
/// so it must never block — no condvar waits, sleeps, fsyncs, joins,
/// channel receives, or synchronous flusher submissions. Suspension is
/// expressed only by *returning* a `TxnStep::Wait*` value; the scheduler
/// parks the transaction and a wake hook requeues it. `asset-verify`
/// scans annotated functions for blocking calls.
#[proc_macro_attribute]
pub fn exec_step(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Mark a function as a failpoint evaluator for rule **R3**: calling it
/// counts as failpoint coverage for durable writes that follow, exactly as
/// the `failpoint!`/`failpoint_sync!` macros do. `asset-verify` also
/// auto-detects evaluators by body inspection; the attribute documents the
/// role explicitly.
#[proc_macro_attribute]
pub fn failpoint_checker(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

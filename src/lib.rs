//! # asset
//!
//! A Rust reproduction of **ASSET: A System for Supporting Extended
//! Transactions** (A. Biliris, S. Dar, N. Gehani, H. V. Jagadish,
//! K. Ramamritham — SIGMOD 1994).
//!
//! ASSET replaces the fixed atomic transaction model with a small set of
//! *primitives* from which applications compose their own transaction
//! semantics:
//!
//! | Primitive | Meaning |
//! |---|---|
//! | `initiate` / `begin` | register a transaction, then start it (separated so you can delegate to / permit a transaction before it runs) |
//! | `commit` | blocking commit: waits for completion and for every dependency gate |
//! | `wait` / `abort` / `self` / `parent` | as in any TP monitor |
//! | `delegate(ti, tj, obs)` | transfer responsibility for uncommitted operations (locks + undo) |
//! | `permit(ti, tj, obs, ops)` | allow conflicting operations, transitively |
//! | `form_dependency(CD/AD/GC, ti, tj)` | commit / abort / group-commit dependencies |
//!
//! For throughput-bound workloads, [`Database::submit`] runs a transaction
//! as a resumable state machine ([`TxnStep`]) on a fixed worker pool, with
//! commit records batched by the group-commit log flusher into one
//! write+fsync per flush window (`DESIGN.md` §12).
//!
//! This facade re-exports the whole workspace:
//!
//! * [`asset_core`] ([`Database`], [`TxnCtx`]) — the primitives;
//! * [`asset_models`] — nested, split/join, sagas, contingent, distributed,
//!   cooperating transactions, cursor stability, and workflows, each built
//!   from the primitives exactly as §3 of the paper prescribes;
//! * [`asset_storage`] — the EOS-style substrate (shared object cache,
//!   latches, WAL, recovery);
//! * [`asset_lock`] — the lock manager with permits and suspension;
//! * [`asset_dep`] — the dependency graph;
//! * [`asset_mlt`] — multi-level transactions with commutativity-based
//!   semantic locking and logical undo (the paper's §5 future work);
//! * [`asset_obs`] — the observability layer: lifecycle counters, wait-free
//!   histograms, and a structured event trace of every primitive
//!   (`Database::metrics_snapshot` / `Database::obs`);
//! * [`asset_trace`] — causal span reconstruction over that event trace,
//!   plus exporters: Chrome trace-event JSON (Perfetto), a Prometheus
//!   text endpoint, Graphviz DOT of the waits-for and dependency graphs,
//!   and the `asset-top` live monitor;
//! * [`asset_faults`] — deterministic fault injection: named failpoints in
//!   the storage and transaction layers (compiled in only with the
//!   `faults` feature) that the crash-recovery matrix drives;
//! * [`asset_server`] — the network server: the `DESIGN.md` §13
//!   length-prefixed wire protocol over TCP, connections mapped onto
//!   executor-driven session transactions, commit acks riding the
//!   group-commit flush window;
//! * [`asset_client`] — the blocking wire client: pipelined requests,
//!   typed operations, and the conservation-preserving money-ledger
//!   helpers the E16 workload drives;
//! * [`asset_coord`] — distributed commit across nodes (`DESIGN.md`
//!   §14): classic 2PC and non-blocking Paxos Commit coordinators over
//!   the participants' prepare/decide primitive, with in-process and
//!   TCP transports.
//!
//! ## Quickstart
//!
//! ```
//! use asset::{Database, DepType};
//!
//! let db = Database::in_memory();
//!
//! // Two transactions with a group-commit dependency: both or neither.
//! let a = db.new_oid();
//! let b = db.new_oid();
//! let t1 = db.initiate(move |ctx| ctx.write(a, b"alpha".to_vec())).unwrap();
//! let t2 = db.initiate(move |ctx| ctx.write(b, b"beta".to_vec())).unwrap();
//! db.form_dependency(DepType::GC, t1, t2).unwrap();
//! db.begin_many(&[t1, t2]).unwrap();
//! assert!(db.commit(t1).unwrap()); // commits the whole group
//! assert_eq!(db.peek(b).unwrap().unwrap(), b"beta");
//! ```

#![warn(missing_docs)]

pub use asset_client as client;
pub use asset_common as common;
pub use asset_coord as coord;
pub use asset_core as txn;
pub use asset_dep as dep;
pub use asset_faults as faults;
pub use asset_lock as lock;
pub use asset_mlt as mlt;
pub use asset_models as models;
pub use asset_obs as obs;
pub use asset_server as server;
pub use asset_storage as storage;
pub use asset_trace as trace;

pub use asset_common::{
    AssetError, Config, DepType, Durability, LockMode, ObSet, Oid, OpSet, Operation, Result, Tid,
    TxnStatus,
};
pub use asset_core::{
    Database, Handle, ObjectCodec, StepCtx, StepProg, TryOp, TxnCtx, TxnOutcome, TxnStep,
};
pub use asset_models::{
    run_atomic, run_contingent, run_distributed, run_nested, subtransaction, Saga, SagaOutcome,
    Workflow, WorkflowOutcome,
};

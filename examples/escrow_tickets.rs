//! Multi-level transactions (the paper's §5 future work): a ticket office.
//!
//! ```sh
//! cargo run --example escrow_tickets
//! ```
//!
//! Ten sales agents sell tickets from one escrow-counter inventory,
//! concurrently, each inside a long-lived multi-level transaction. Under
//! plain ASSET locking the agents would serialize on the counter for their
//! whole session; with commutativity-based semantic locks their decrements
//! interleave — and the escrow floor guarantees the venue is never
//! oversold, even while some sessions abort and are logically undone.
//! A second act runs the paper's own department example: hiring and raises
//! commute.

use asset::mlt::{run_mlt, Department, EscrowCounter, MltOutcome, SemanticLockTable};
use asset::Database;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn main() -> asset::Result<()> {
    println!("== act 1: the ticket office (escrow counter) ==\n");
    let db = Database::in_memory();
    db.obs().enable_tracing(1 << 14);
    let sem = Arc::new(SemanticLockTable::new());
    let seats = EscrowCounter::create(&db, 100)?;
    println!("on sale: {} seats", seats.peek(&db));

    let sold = Arc::new(AtomicI64::new(0));
    let refused = Arc::new(AtomicI64::new(0));
    let undone = Arc::new(AtomicI64::new(0));

    std::thread::scope(|scope| {
        for agent in 0..10 {
            let db = db.clone();
            let sem = Arc::clone(&sem);
            let sold = Arc::clone(&sold);
            let refused = Arc::clone(&refused);
            let undone = Arc::clone(&undone);
            scope.spawn(move || {
                for session in 0..4 {
                    // each session tries to sell a block of 3 tickets;
                    // every 7th session "fails payment" and aborts, which
                    // logically refunds the block
                    let fail_payment = (agent + session) % 7 == 0;
                    let sold2 = Arc::clone(&sold);
                    let refused2 = Arc::clone(&refused);
                    let out = run_mlt(&db, &sem, move |mlt| {
                        let mut got = 0;
                        for _ in 0..3 {
                            if seats.sub_bounded(mlt, 1, 0).is_ok() {
                                got += 1;
                            } else {
                                refused2.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        if fail_payment {
                            return mlt.ctx().abort_self();
                        }
                        sold2.fetch_add(got, Ordering::SeqCst);
                        Ok(())
                    })
                    .unwrap();
                    if let MltOutcome::Undone { inverses_run } = out {
                        undone.fetch_add(inverses_run as i64, Ordering::SeqCst);
                    }
                }
            });
        }
    });

    let remaining = seats.peek(&db);
    println!("sold:          {}", sold.load(Ordering::SeqCst));
    println!(
        "refused:       {} (escrow floor held)",
        refused.load(Ordering::SeqCst)
    );
    println!(
        "refunded ops:  {} (aborted sessions, logically undone)",
        undone.load(Ordering::SeqCst)
    );
    println!("seats left:    {remaining}");
    assert_eq!(
        remaining + sold.load(Ordering::SeqCst),
        100,
        "every seat is either still on sale or sold — none lost, none oversold"
    );
    assert!(remaining >= 0);

    let snap = db.metrics_snapshot();
    let (_, _, lw99) = snap.lock_wait_ns.percentiles();
    println!(
        "observability: {} events recorded ({} dropped), lock wait p99 {:.1}µs across 10 agents",
        snap.counters.events_recorded,
        snap.events_dropped,
        lw99 / 1e3
    );

    println!("\n== act 2: the paper's department example (§5) ==\n");
    let db = Database::in_memory();
    let sem = Arc::new(SemanticLockTable::new());
    let dept = Department::create(&db)?;
    run_mlt(&db, &sem, move |mlt| dept.add_employee(mlt, "ada", 100))?;

    // hiring and raising run concurrently: the classes commute
    std::thread::scope(|scope| {
        let db1 = db.clone();
        let sem1 = Arc::clone(&sem);
        scope.spawn(move || {
            run_mlt(&db1, &sem1, move |mlt| {
                for (name, salary) in [("grace", 110), ("edsger", 105), ("barbara", 115)] {
                    mlt.add_pause();
                    dept.add_employee(mlt, name, salary)?;
                    println!("   recruiter: hired {name} at {salary}");
                }
                Ok(())
            })
            .unwrap();
        });
        let db2 = db.clone();
        let sem2 = Arc::clone(&sem);
        scope.spawn(move || {
            run_mlt(&db2, &sem2, move |mlt| {
                for _ in 0..3 {
                    mlt.add_pause();
                    dept.raise_salary(mlt, "ada", 10)?;
                    println!("   manager:   gave ada a +10 raise");
                }
                Ok(())
            })
            .unwrap();
        });
    });

    println!("\nfinal roster:");
    for (name, salary) in dept.peek(&db) {
        println!("   {name:<8} {salary}");
    }
    Ok(())
}

/// Tiny helper so the interleaving is visible in the output.
trait Pause {
    fn add_pause(&self);
}

impl Pause for asset::mlt::MltSession<'_> {
    fn add_pause(&self) {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

//! Quickstart: the ASSET primitives, one at a time.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the paper's §2: initiate/begin/commit, completion vs
//! commit, wait, abort with undo, delegation, permits, and each dependency
//! type — printing what happens at every step.

use asset::{Database, DepType, ObSet, OpSet, TxnStatus};

fn main() -> asset::Result<()> {
    let db = Database::in_memory();
    db.obs().enable_tracing(0); // default ring; step 7 reads it back
    println!("== ASSET quickstart ==\n");

    // ------------------------------------------------------------------
    println!("-- 1. An atomic transaction (initiate / begin / commit)");
    let account = db.new_oid();
    let t = db.initiate(move |ctx| {
        ctx.write(account, 100u64.to_le_bytes().to_vec())?;
        Ok(())
    })?;
    println!("   initiated {t}: status = {}", db.status(t)?);
    db.begin(t)?;
    let committed = db.commit(t)?;
    println!("   committed = {committed}; balance object now durable");

    // ------------------------------------------------------------------
    println!("\n-- 2. Completion is not commit");
    let t = db.initiate(move |ctx| {
        ctx.write(account, 150u64.to_le_bytes().to_vec())?;
        Ok(())
    })?;
    db.begin(t)?;
    db.wait(t)?; // completed — but locks are held, changes volatile
    println!("   after wait: status = {} (locks retained)", db.status(t)?);
    db.commit(t)?;
    println!("   after commit: status = {}", db.status(t)?);

    // ------------------------------------------------------------------
    println!("\n-- 3. Abort installs before images");
    let t = db.initiate(move |ctx| {
        ctx.write(account, 0u64.to_le_bytes().to_vec())?; // oops
        Ok(())
    })?;
    db.begin(t)?;
    db.wait(t)?;
    db.abort(t)?;
    let balance = u64::from_le_bytes(db.peek(account)?.unwrap().try_into().unwrap());
    println!("   aborted; balance restored to {balance}");
    assert_eq!(balance, 150);

    // ------------------------------------------------------------------
    println!("\n-- 4. delegate: hand uncommitted work to another transaction");
    let follower = db.initiate(|_| Ok(()))?;
    let leader = db.initiate(move |ctx| {
        ctx.write(account, 999u64.to_le_bytes().to_vec())?;
        ctx.delegate_to(follower) // everything we did is now `follower`'s
    })?;
    db.begin(leader)?;
    db.wait(leader)?;
    db.abort(leader)?; // aborting the leader undoes nothing — it delegated
    println!("   leader aborted after delegating; write survives so far");
    db.begin(follower)?;
    db.commit(follower)?;
    let balance = u64::from_le_bytes(db.peek(account)?.unwrap().try_into().unwrap());
    println!("   follower committed the delegated write: balance = {balance}");
    assert_eq!(balance, 999);

    // ------------------------------------------------------------------
    println!("\n-- 5. permit: let a conflicting reader through");
    let holder = db.initiate(move |ctx| {
        ctx.write(account, 1000u64.to_le_bytes().to_vec())?;
        Ok(())
    })?;
    db.begin(holder)?;
    db.wait(holder)?; // write lock held, uncommitted
    db.permit(holder, None, ObSet::one(account), OpSet::READ)?;
    let peeked = db.run(move |ctx| {
        let dirty = u64::from_le_bytes(ctx.read(account)?.unwrap().try_into().unwrap());
        println!("   reader saw uncommitted value {dirty} thanks to the permit");
        Ok(())
    })?;
    assert!(peeked);
    db.commit(holder)?;

    // ------------------------------------------------------------------
    println!("\n-- 6. form_dependency: CD, AD, GC");
    // CD: t2 cannot commit before t1 terminates
    let t1 = db.initiate(|_| Ok(()))?;
    let t2 = db.initiate(|_| Ok(()))?;
    db.form_dependency(DepType::CD, t1, t2)?;
    db.begin_many(&[t1, t2])?;
    db.commit(t1)?;
    db.commit(t2)?;
    println!("   CD: t2 committed only after t1 terminated");

    // AD: if t1 aborts, t2 must abort
    let t1 = db.initiate(|_| Ok(()))?;
    let t2 = db.initiate(|_| Ok(()))?;
    db.form_dependency(DepType::AD, t1, t2)?;
    db.begin_many(&[t1, t2])?;
    db.wait(t2)?;
    db.abort(t1)?;
    assert_eq!(db.status(t2)?, TxnStatus::Aborted);
    println!("   AD: aborting t1 dragged t2 down with it");

    // GC: both or neither
    let t1 = db.initiate(|_| Ok(()))?;
    let t2 = db.initiate(|_| Ok(()))?;
    db.form_dependency(DepType::GC, t1, t2)?;
    db.begin_many(&[t1, t2])?;
    db.commit(t1)?; // commits the whole group
    assert_eq!(db.status(t2)?, TxnStatus::Committed);
    println!("   GC: committing t1 committed the pair atomically");

    // ------------------------------------------------------------------
    println!("\n-- 7. introspection: what the tracer saw");
    let g = asset::trace::CausalGraph::from_events(&db.obs().trace());
    println!(
        "   causal graph: {} txn tracks, {} delegation edge(s), {} permit edge(s), {} dependency edge(s)",
        g.tracks.len(),
        g.edges_labeled("delegate").len(),
        g.edges_labeled("permit").len(),
        g.edges
            .iter()
            .filter(|e| e.kind.label().starts_with("dep-"))
            .count()
    );
    println!("   one asset-top frame of this session:");
    let frame = asset::trace::top::render_frame(&db.introspect(), &db.metrics_snapshot());
    for line in frame.lines() {
        println!("      {line}");
    }

    println!("\nAll seven walkthroughs done.");
    Ok(())
}

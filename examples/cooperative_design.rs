//! Cooperating transactions (§3.2.1): a CAD-style design session.
//!
//! ```sh
//! cargo run --example cooperative_design
//! ```
//!
//! Two "designers" — long-lived transactions — take turns editing the same
//! design object. Under strict two-phase locking the second designer would
//! block until the first committed; with ASSET's `permit` ping-pong they
//! interleave freely, and a commit dependency ensures the reviewer cannot
//! commit before the author terminates. A third run shows the group-commit
//! coupling: the session's changes land atomically or not at all.

use asset::models::{CoopSession, Coupling};
use asset::{Database, ObSet, TxnCtx};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Append a named edit to the design object when it is our turn.
fn designer(
    db: &Database,
    design: asset::Oid,
    turn: Arc<AtomicUsize>,
    my_idx: usize,
    edits: &'static [&'static str],
) -> asset::Tid {
    db.initiate(move |ctx: &TxnCtx| {
        for (i, edit) in edits.iter().enumerate() {
            // wait for our turn (application-level protocol: permits allow
            // the interleaving, the application chooses the choreography)
            while turn.load(Ordering::SeqCst) % 2 != my_idx {
                std::thread::yield_now();
            }
            ctx.update(design, |cur| {
                let mut text = String::from_utf8(cur.unwrap_or_default()).unwrap();
                if !text.is_empty() {
                    text.push('\n');
                }
                text.push_str(edit);
                text.into_bytes()
            })?;
            println!("   designer {my_idx} applied edit {}: {edit:?}", i + 1);
            turn.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    })
    .unwrap()
}

fn main() -> asset::Result<()> {
    println!("== cooperative design session ==\n");
    let db = Database::in_memory();
    db.obs().enable_tracing(0);
    let design = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(design, Vec::new()))?);

    println!("-- ordered coupling (CD): author first, reviewer second");
    let turn = Arc::new(AtomicUsize::new(0));
    let author = designer(
        &db,
        design,
        Arc::clone(&turn),
        0,
        &[
            "outline the floor plan",
            "place the load-bearing walls",
            "route the plumbing",
        ],
    );
    let reviewer = designer(
        &db,
        design,
        Arc::clone(&turn),
        1,
        &[
            "annotate: widen hallway",
            "annotate: move outlet",
            "sign off",
        ],
    );
    let session =
        CoopSession::establish(&db, author, reviewer, ObSet::one(design), Coupling::Ordered)?;
    db.begin_many(&[session.leader, session.follower])?;
    assert!(db.commit(author)?, "author commits");
    assert!(db.commit(reviewer)?, "reviewer commits after (CD ordering)");
    let text = String::from_utf8(db.peek(design)?.unwrap()).unwrap();
    println!("\n   final design after both commits:\n{}", indent(&text));
    let g = asset::trace::CausalGraph::from_events(&db.obs().trace());
    println!(
        "\n   causal trace of the session: {} permit edges (the ping-pong), {} CD edge",
        g.edges_labeled("permit").len(),
        g.edges_labeled("dep-cd").len()
    );

    println!("\n-- mutual coupling (GC): the session is all-or-nothing");
    let db = Database::in_memory();
    db.obs().enable_tracing(0);
    let design = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(design, b"v0: approved baseline".to_vec()))?);
    let t1 = db.initiate(move |ctx: &TxnCtx| {
        ctx.update(design, |cur| {
            let mut v = cur.unwrap();
            v.extend_from_slice(b"\nv1: experimental change");
            v
        })
    })?;
    let t2 = db.initiate(move |ctx: &TxnCtx| {
        ctx.update(design, |cur| {
            let mut v = cur.unwrap();
            v.extend_from_slice(b"\nv1-review: REJECTED");
            v
        })?;
        // the reviewer rejects: abort, dooming the whole session
        ctx.abort_self::<()>().map(|_| ())
    })?;
    CoopSession::establish(&db, t1, t2, ObSet::one(design), Coupling::Mutual)?;
    db.begin(t1)?;
    db.wait(t1)?;
    db.begin(t2)?;
    // the dependency graph is live while the session is: dump it as DOT
    let (_waits, deps) = asset::trace::dot::snapshot_pair(&db.introspect());
    println!(
        "   dependency graph before the commit attempt:\n{}",
        indent(&deps)
    );
    let committed = db.commit(t1)?;
    println!("   session committed? {committed}");
    let text = String::from_utf8(db.peek(design)?.unwrap()).unwrap();
    println!(
        "   design object after the rejected session:\n{}",
        indent(&text)
    );
    assert!(!committed, "GC coupling took both down");
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("      | {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

//! The paper's appendix workflow, end to end: person X books a trip to a
//! conference — a flight (Delta ≻ United ≻ American), the hotel Equator,
//! and optionally a car (National and Avis raced in parallel; the first to
//! complete wins, the other is aborted).
//!
//! ```sh
//! cargo run --example travel_workflow
//! ```
//!
//! Runs the activity against four inventory scenarios and prints what the
//! workflow engine decided in each.

use asset::models::workflow::travel::{run_x_conference, TravelWorld};
use asset::models::WorkflowOutcome;
use asset::Database;

fn describe(db: &Database, world: &TravelWorld, label: &str) -> asset::Result<()> {
    println!("-- scenario: {label}");
    let (outcome, results) = run_x_conference(db, world)?;
    for r in &results {
        match (&r.chosen, r.succeeded) {
            (Some(branch), _) => println!("   step {:<8} -> reserved with {branch}", r.name),
            (None, _) if !r.succeeded => println!("   step {:<8} -> unavailable", r.name),
            _ => {}
        }
    }
    match outcome {
        WorkflowOutcome::Completed => println!("   ACTIVITY SUCCEEDED\n"),
        WorkflowOutcome::Failed { failed_step } => {
            println!(
                "   ACTIVITY FAILED at step {failed_step}; committed reservations compensated\n"
            )
        }
    }
    println!(
        "   inventory now: Delta={} United={} American={} Equator={} National={} Avis={}\n",
        world.remaining(db, world.flights[0].1),
        world.remaining(db, world.flights[1].1),
        world.remaining(db, world.flights[2].1),
        world.remaining(db, world.hotel.1),
        world.remaining(db, world.cars[0].1),
        world.remaining(db, world.cars[1].1),
    );
    Ok(())
}

fn main() -> asset::Result<()> {
    println!("== X_conference: the ASSET appendix workflow ==\n");

    // Scenario 1: plenty of everything — Delta wins, a car is rented.
    let db = Database::in_memory();
    let world = TravelWorld::setup(&db, 3, 3, 3, 3, 2, 2)?;
    describe(&db, &world, "everything available")?;

    // Scenario 2: Delta and United sold out — falls through to American.
    let db = Database::in_memory();
    let world = TravelWorld::setup(&db, 0, 0, 3, 3, 2, 2)?;
    describe(&db, &world, "only American has seats")?;

    // Scenario 3: hotel full — the committed flight is compensated.
    let db = Database::in_memory();
    db.obs().enable_tracing(1 << 12); // trace the compensation path
    let world = TravelWorld::setup(&db, 3, 3, 3, 0, 2, 2)?;
    describe(&db, &world, "hotel Equator is full")?;
    let g = asset::trace::CausalGraph::from_events(&db.obs().trace());
    let aborted = g
        .tracks
        .values()
        .filter(|t| t.outcome == asset::trace::Outcome::Aborted)
        .count();
    println!(
        "   causal trace of this scenario: {} txn tracks, {} aborted (failed/compensated steps)\n",
        g.tracks.len(),
        aborted
    );

    // Scenario 4: no cars — X takes public transportation; trip proceeds.
    let db = Database::in_memory();
    let world = TravelWorld::setup(&db, 3, 3, 3, 3, 0, 0)?;
    describe(&db, &world, "no rental cars")?;

    // Scenario 5: many attendees drain the inventory.
    println!("-- scenario: 5 attendees, 3 hotel rooms");
    let db = Database::in_memory();
    let world = TravelWorld::setup(&db, 2, 2, 2, 3, 2, 2)?;
    let mut booked = 0;
    for i in 1..=5 {
        let (outcome, results) = run_x_conference(&db, &world)?;
        let flight = results[0].chosen.clone().unwrap_or_else(|| "-".into());
        match outcome {
            WorkflowOutcome::Completed => {
                booked += 1;
                println!("   attendee {i}: booked (flight {flight})");
            }
            WorkflowOutcome::Failed { failed_step } => {
                println!("   attendee {i}: failed at step {failed_step}");
            }
        }
    }
    println!(
        "   {booked}/5 attendees booked; hotel rooms left: {}",
        world.remaining(&db, world.hotel.1)
    );
    Ok(())
}

//! Sagas (§3.1.6) on a banking workload: a multi-hop payment pipeline.
//!
//! ```sh
//! cargo run --example banking_sagas
//! ```
//!
//! A "payment" saga debits the payer, credits an escrow ledger, pays a
//! processing fee, and finally credits the payee. Each hop is an
//! independent atomic transaction with a compensating transaction. When a
//! later hop fails (payee account frozen), the committed prefix is
//! compensated in reverse order — and an invariant checker shows that the
//! total money supply is conserved through success, failure, and
//! compensation alike.

use asset::models::{Saga, SagaOutcome};
use asset::{Database, DepType, ObSet, Oid, OpSet, TxnCtx};

fn balance(db: &Database, acct: Oid) -> i64 {
    i64::from_le_bytes(db.peek(acct).unwrap().unwrap().try_into().unwrap())
}

fn transfer(
    from: Oid,
    to: Oid,
    amount: i64,
) -> impl Fn(&TxnCtx) -> asset::Result<()> + Send + Sync {
    move |ctx: &TxnCtx| {
        let from_bal = i64::from_le_bytes(ctx.read(from)?.unwrap().try_into().unwrap());
        if from_bal < amount {
            return ctx.abort_self(); // insufficient funds
        }
        ctx.write(from, (from_bal - amount).to_le_bytes().to_vec())?;
        let to_bal = i64::from_le_bytes(ctx.read(to)?.unwrap().try_into().unwrap());
        ctx.write(to, (to_bal + amount).to_le_bytes().to_vec())
    }
}

/// A hop that fails when the destination account is "frozen" (negative
/// sentinel balance).
fn transfer_checked(
    from: Oid,
    to: Oid,
    amount: i64,
) -> impl Fn(&TxnCtx) -> asset::Result<()> + Send + Sync {
    move |ctx: &TxnCtx| {
        let to_bal = i64::from_le_bytes(ctx.read(to)?.unwrap().try_into().unwrap());
        if to_bal < 0 {
            return ctx.abort_self(); // frozen account
        }
        transfer(from, to, amount)(ctx)
    }
}

fn payment_saga(payer: Oid, escrow: Oid, fees: Oid, payee: Oid, amount: i64, fee: i64) -> Saga {
    Saga::new()
        .step(
            "debit-payer",
            transfer(payer, escrow, amount),
            transfer(escrow, payer, amount),
        )
        .step(
            "charge-fee",
            transfer(escrow, fees, fee),
            transfer(fees, escrow, fee),
        )
        .final_step(
            "credit-payee",
            transfer_checked(escrow, payee, amount - fee),
        )
}

fn main() -> asset::Result<()> {
    println!("== banking sagas ==\n");
    let db = Database::in_memory();
    db.obs().enable_tracing(1 << 14); // record spans for the Chrome export below

    // accounts: alice pays bob through an escrow ledger
    let mk = |initial: i64| -> Oid {
        let oid = db.new_oid();
        assert!(db
            .run(move |ctx| ctx.write(oid, initial.to_le_bytes().to_vec()))
            .unwrap());
        oid
    };
    let alice = mk(1_000);
    let bob = mk(200);
    let escrow = mk(0);
    let fees = mk(0);
    let money_supply = |db: &Database| {
        balance(db, alice) + balance(db, bob) + balance(db, escrow) + balance(db, fees)
    };
    let supply0 = money_supply(&db);
    println!(
        "initial: alice={} bob={} (supply {supply0})\n",
        balance(&db, alice),
        balance(&db, bob)
    );

    // -- a successful payment ------------------------------------------
    println!("-- alice pays bob 300 (fee 10)");
    let (outcome, trace) = payment_saga(alice, escrow, fees, bob, 300, 10).run(&db)?;
    println!("   outcome: {outcome:?}");
    println!("   trace:   {}", trace.events.join(" -> "));
    println!(
        "   alice={} bob={} escrow={} fees={} (supply {})\n",
        balance(&db, alice),
        balance(&db, bob),
        balance(&db, escrow),
        balance(&db, fees),
        money_supply(&db)
    );
    assert_eq!(outcome, SagaOutcome::Committed);
    assert_eq!(money_supply(&db), supply0, "money conserved");

    // -- a payment that fails mid-flight ---------------------------------
    println!("-- bob's account is frozen; alice tries to pay 100");
    let frozen_bob = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(frozen_bob, (-1i64).to_le_bytes().to_vec()))?);
    let (outcome, trace) = payment_saga(alice, escrow, fees, frozen_bob, 100, 10).run(&db)?;
    println!("   outcome: {outcome:?}");
    println!("   trace:   {}", trace.events.join(" -> "));
    println!(
        "   alice={} escrow={} fees={} (supply {})\n",
        balance(&db, alice),
        balance(&db, escrow),
        balance(&db, fees),
        money_supply(&db)
    );
    assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 2 });
    assert_eq!(balance(&db, escrow), 0, "escrow drained back");
    assert_eq!(
        balance(&db, fees),
        10,
        "this payment's fee refunded; the first payment's fee stays"
    );
    assert_eq!(
        money_supply(&db),
        supply0,
        "money conserved through compensation"
    );

    // -- insufficient funds fails at step 0: nothing to compensate -------
    println!("-- alice tries to pay 10,000 (insufficient funds)");
    let (outcome, trace) = payment_saga(alice, escrow, fees, bob, 10_000, 10).run(&db)?;
    println!("   outcome: {outcome:?}");
    println!("   trace:   {:?} (empty: first hop failed)\n", trace.events);
    assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 0 });

    // -- many sagas back to back: supply invariant holds -----------------
    println!("-- 50 payments, every 7th to the frozen account");
    let mut ok = 0;
    let mut compensated = 0;
    for i in 0..50 {
        let dest = if i % 7 == 0 { frozen_bob } else { bob };
        let (outcome, _) = payment_saga(alice, escrow, fees, dest, 5, 1).run(&db)?;
        match outcome {
            SagaOutcome::Committed => ok += 1,
            SagaOutcome::Compensated { .. } => compensated += 1,
        }
    }
    println!("   {ok} committed, {compensated} compensated");
    println!(
        "   alice={} bob={} escrow={} fees={}",
        balance(&db, alice),
        balance(&db, bob),
        balance(&db, escrow),
        balance(&db, fees)
    );
    assert_eq!(balance(&db, escrow), 0, "no money stuck in escrow");

    // -- end of day: the ledger close is handed to an auditor ------------
    // The close transaction freezes the fee total, lets the auditor read
    // it early via a permit, then delegates the whole close to the
    // auditor; a CD-linked report may only commit once the audit
    // terminates. This is the part of the day that shows up as causal
    // flow arrows in the trace below.
    println!("\n-- end of day: close -> audit (permit + delegate), CD-linked report");
    let fee_total = balance(&db, fees);
    let close = db.initiate(move |ctx| ctx.write(fees, fee_total.to_le_bytes().to_vec()))?;
    db.begin(close)?;
    assert!(db.wait(close)?);
    let audit = db.initiate(|_| Ok(()))?;
    db.begin(audit)?;
    db.permit(close, Some(audit), ObSet::one(fees), OpSet::READ)?;
    db.delegate(close, audit, None)?;
    let report = db.initiate(|_| Ok(()))?;
    db.form_dependency(DepType::CD, audit, report)?;
    db.begin(report)?;
    assert!(
        db.commit(close)?,
        "close terminates (its work is delegated)"
    );
    assert!(db.commit(audit)?, "auditor commits the delegated close");
    assert!(db.commit(report)?, "report commits after the audit (CD)");
    println!("   fee total {fee_total} audited and reported");

    // -- export the whole session as a Chrome trace ----------------------
    let graph = asset::trace::CausalGraph::from_events(&db.obs().trace());
    assert!(
        graph.edges.len() >= 3,
        "the close/audit handoff leaves delegate + permit + CD flows"
    );
    let path = "banking_sagas.trace.json";
    std::fs::write(path, asset::trace::chrome::render(&graph)).unwrap();
    let snap = db.metrics_snapshot();
    let (p50, _, p99) = snap.commit_ns.percentiles();
    println!(
        "\ntrace: {} txn tracks, {} causal edges -> {path} (open in Perfetto / chrome://tracing)",
        graph.tracks.len(),
        graph.edges.len()
    );
    println!(
        "commit latency: p50 {:.1}µs / p99 {:.1}µs over {} commits",
        p50 / 1e3,
        p99 / 1e3,
        snap.counters.txn_committed
    );
    Ok(())
}

//! Ground truth for the §7.2 distributed tracing pipeline: a
//! 3-participant 2PC and Paxos commit driven through the in-process
//! transport must merge into a fleet graph whose cross-node flow edges
//! match the protocol's known message pattern (prepare to every node,
//! decide fan-out to every node, one root per global transaction), and
//! the participant in-doubt duration histogram must be populated by —
//! and only by — the window between prepare-force and decision
//! delivery. A final test scrapes the fleet metrics live over HTTP:
//! the server's Prometheus endpoint across an open in-doubt window,
//! and the coordinator hub's decision-latency histogram.

use asset::coord::{
    Acceptor, ChannelTransport, CommitMessage, CommitTransport, CoordLog, CoordObs, Decision,
    GlobalTxn, ParticipantNode, PaxosCommit, TwoPhase,
};
use asset::obs::Obs;
use asset::server::{protocol::opcode, AssetServer};
use asset::trace::prom::{self, PromServer};
use asset::trace::span::{CausalGraph, CrossFlow, FleetGraph, FlowKind};
use asset::{Config, Database};
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 3;

/// Coordinator lane id — outside the participant index range.
const COORD_NODE: u32 = 9;

/// A traced cluster: [`NODES`] participants with event rings on, one
/// coordinator hub, wired through a [`ChannelTransport`] that mirrors
/// every exchange into the rings on both ends.
fn traced_cluster() -> (Arc<ChannelTransport>, Arc<Obs>) {
    let nodes: Vec<Arc<ParticipantNode>> = (0..NODES)
        .map(|_| Arc::new(ParticipantNode::open(Config::in_memory()).expect("open node")))
        .collect();
    let hub = Obs::shared();
    hub.enable_tracing(1 << 14);
    for n in &nodes {
        n.db().obs().enable_tracing(1 << 14);
    }
    let transport = Arc::new(ChannelTransport::new(nodes).with_obs(Arc::clone(&hub)));
    (transport, hub)
}

/// Stage one write per node and collect the membership.
fn stage(transport: &ChannelTransport, gid: u64) -> GlobalTxn {
    let mut g = GlobalTxn::new(gid);
    for i in 0..transport.nodes() {
        let db = transport.node(i).db();
        let oid = db.new_oid();
        let t = db
            .initiate(move |ctx| ctx.write(oid, gid.to_le_bytes().to_vec()))
            .expect("initiate");
        db.begin(t).expect("begin");
        db.wait(t).expect("wait");
        g.add_member(i as u32, t);
    }
    g
}

/// Merge the coordinator lane and every participant lane.
fn merge(transport: &ChannelTransport, hub: &Obs) -> FleetGraph {
    let mut graphs = vec![CausalGraph::from_node_events(COORD_NODE, &hub.trace())];
    for i in 0..transport.nodes() {
        graphs.push(CausalGraph::from_node_events(
            i as u32,
            &transport.node(i).db().obs().trace(),
        ));
    }
    CausalGraph::merge(graphs)
}

/// The protocol's ground truth, checked against the merged flows: for
/// global txn `gid`, a request flow coordinator→node for every node on
/// both the prepare and the decide opcode, a vote response back for
/// every prepare, and on each node the prepare departs before the
/// decide.
fn assert_commit_flow_pattern(fleet: &FleetGraph, gid: u64) {
    assert_eq!(
        fleet.nodes.len(),
        NODES + 1,
        "one lane per node + coordinator"
    );
    assert_eq!(fleet.offsets.len(), NODES + 1);
    let of = |op: u8, kind: FlowKind| -> Vec<&CrossFlow> {
        fleet
            .flows
            .iter()
            .filter(|f| f.opcode == op && f.kind == kind && f.root == gid)
            .collect()
    };
    let prepares = of(opcode::PREPARE, FlowKind::Request);
    let votes = of(opcode::PREPARE, FlowKind::Response);
    let decides = of(opcode::COMMIT_DECIDE, FlowKind::Request);
    for n in 0..NODES as u32 {
        let p = prepares
            .iter()
            .find(|f| f.from_node == COORD_NODE && f.to_node == n)
            .unwrap_or_else(|| panic!("prepare flow coordinator->{n}"));
        assert!(
            votes
                .iter()
                .any(|f| f.from_node == n && f.to_node == COORD_NODE),
            "vote flow {n}->coordinator"
        );
        let d = decides
            .iter()
            .find(|f| f.from_node == COORD_NODE && f.to_node == n)
            .unwrap_or_else(|| panic!("decide fan-out coordinator->{n}"));
        assert!(
            p.from_ns <= d.from_ns,
            "node {n}: prepare departs before the decision"
        );
    }
    assert!(
        of(opcode::ABORT_DECIDE, FlowKind::Request).is_empty(),
        "a committed txn has no abort fan-out"
    );
}

#[test]
fn two_pc_flows_match_protocol_ground_truth() {
    let (transport, hub) = traced_cluster();
    let g = stage(&transport, 41);
    let d = TwoPhase::new(transport.clone(), Arc::new(CoordLog::in_memory()))
        .with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)))
        .commit(&g)
        .expect("2pc commit");
    assert_eq!(d, Decision::Commit);

    let snap = hub.snapshot();
    assert_eq!(snap.counters.coord_msg_prepare, NODES as u64);
    assert_eq!(snap.counters.coord_msg_commit_decide, NODES as u64);
    assert_eq!(snap.decision_ns.count, 1, "one decision latency recorded");

    assert_commit_flow_pattern(&merge(&transport, &hub), 41);
}

#[test]
fn paxos_flows_match_protocol_ground_truth() {
    let (transport, hub) = traced_cluster();
    let g = stage(&transport, 42);
    let acceptors: Vec<Arc<Acceptor>> = (0..3).map(|_| Arc::new(Acceptor::new())).collect();
    let d = PaxosCommit::new(transport.clone(), acceptors)
        .with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)))
        .commit(&g)
        .expect("paxos commit");
    assert_eq!(d, Decision::Commit);
    assert_eq!(hub.snapshot().decision_ns.count, 1);

    assert_commit_flow_pattern(&merge(&transport, &hub), 42);
}

/// The in-doubt duration histogram measures exactly the window between
/// prepare-force and decision delivery: empty before prepare, still
/// empty while the group sits in doubt (the live set is non-empty
/// instead), and populated — with at least the window's length — once
/// the decision lands. The traced in-doubt window carries the same
/// bounds.
#[test]
fn in_doubt_histogram_spans_prepare_to_decision() {
    const WINDOW: Duration = Duration::from_millis(5);
    let (transport, _hub) = traced_cluster();

    // stage one member per node, then drive 2PC by hand so the test
    // controls how long the cluster stays in doubt
    let mut members = Vec::new();
    for i in 0..transport.nodes() {
        let db = transport.node(i).db();
        let oid = db.new_oid();
        let t = db
            .initiate(move |ctx| ctx.write(oid, b"w".to_vec()))
            .expect("initiate");
        db.begin(t).expect("begin");
        db.wait(t).expect("wait");
        assert_eq!(
            db.obs().snapshot().in_doubt_ns.count,
            0,
            "empty before prepare"
        );
        members.push((i, t));
    }

    let mut groups = Vec::new();
    for (i, t) in &members {
        let vote = transport
            .send(*i, CommitMessage::Prepare { tids: vec![*t] })
            .expect("prepare");
        match vote {
            CommitMessage::Vote { yes: true, group } => groups.push((*i, group)),
            other => panic!("expected a yes vote, got {other:?}"),
        }
        let db = transport.node(*i).db();
        assert!(
            !db.in_doubt_transactions().is_empty(),
            "node {i} is in doubt"
        );
        assert_eq!(
            db.obs().snapshot().in_doubt_ns.count,
            0,
            "nothing recorded while the window is open"
        );
    }

    std::thread::sleep(WINDOW);

    for (i, group) in &groups {
        let ack = transport
            .send(
                *i,
                CommitMessage::CommitDecide {
                    tids: group.clone(),
                },
            )
            .expect("decide");
        assert!(matches!(ack, CommitMessage::Ack));
        let db = transport.node(*i).db();
        assert!(db.in_doubt_transactions().is_empty(), "node {i} resolved");
        let h = db.obs().snapshot().in_doubt_ns;
        assert_eq!(h.count, 1, "node {i}: one in-doubt duration recorded");
        assert!(
            h.sum >= WINDOW.as_nanos() as u64,
            "node {i}: the duration covers the window ({} < {})",
            h.sum,
            WINDOW.as_nanos()
        );
    }

    // the traced window agrees: prepare-force → decision-applied,
    // closed by a commit, at least WINDOW long
    let g = CausalGraph::from_events(&transport.node(0).db().obs().trace());
    assert_eq!(g.in_doubt.len(), 1);
    let w = g.in_doubt[0];
    let end = w.end_ns.expect("window closed by the decision");
    assert_eq!(w.commit, Some(true));
    assert!(end - w.start_ns >= WINDOW.as_nanos() as u64);
}

/// Live HTTP scrapes of the fleet metrics: the server's endpoint shows
/// the in-doubt gauge rise and fall around the in-doubt window (and the
/// duration histogram fill only at its close), and a hub exporter
/// serves the coordinator's decision-latency histogram.
#[test]
fn fleet_metrics_scraped_live() {
    // -- participant: a real server, scraped across the window --------
    let db = Database::in_memory();
    let server = AssetServer::spawn_node(db, "127.0.0.1:0", 5).expect("spawn server");
    let mut exporter =
        PromServer::spawn("127.0.0.1:0", server.metrics_source()).expect("spawn exporter");
    let mut c = asset::client::Client::connect(&server.local_addr().to_string()).expect("connect");
    let oid = c.new_oid().expect("oid");
    let t = c.begin().expect("begin");
    c.write(t, oid, b"scraped").expect("write");
    let group = c.prepare(&[t]).expect("prepare");

    let mid = prom::scrape(exporter.addr()).expect("scrape mid-window");
    assert_eq!(
        prom::sample(&mid, "asset_server_in_doubt{node=\"5\"}"),
        Some(1.0),
        "gauge counts the open in-doubt group"
    );
    assert_eq!(
        prom::sample(&mid, "asset_in_doubt_ns_count"),
        Some(0.0),
        "histogram still empty mid-window"
    );
    assert_eq!(prom::sample(&mid, "asset_node_up{node=\"5\"}"), Some(1.0));

    c.commit_decide(&group).expect("decide");
    let after = prom::scrape(exporter.addr()).expect("scrape after decision");
    assert_eq!(
        prom::sample(&after, "asset_server_in_doubt{node=\"5\"}"),
        Some(0.0)
    );
    assert_eq!(prom::sample(&after, "asset_in_doubt_ns_count"), Some(1.0));
    assert_eq!(
        prom::sample(&after, "asset_server_op_prepare_ns_count"),
        Some(1.0),
        "per-opcode service-time histogram saw the prepare"
    );
    drop(c);
    exporter.shutdown();
    server.shutdown();
    server.join();

    // -- coordinator: hub histograms behind their own exporter --------
    let (transport, hub) = traced_cluster();
    let g = stage(&transport, 43);
    let d = TwoPhase::new(transport.clone(), Arc::new(CoordLog::in_memory()))
        .with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)))
        .commit(&g)
        .expect("2pc commit");
    assert_eq!(d, Decision::Commit);

    let hub_for_scrape = Arc::clone(&hub);
    let mut coord_exporter = PromServer::spawn("127.0.0.1:0", move || {
        prom::render(&hub_for_scrape.snapshot(), &[])
    })
    .expect("spawn coord exporter");
    let body = prom::scrape(coord_exporter.addr()).expect("scrape coordinator");
    assert_eq!(
        prom::sample(&body, "asset_decision_ns_count"),
        Some(1.0),
        "decision-latency histogram scraped live"
    );
    assert_eq!(
        prom::sample(&body, "asset_coord_msg_prepare_total"),
        Some(NODES as f64),
        "per-opcode coordinator counters scraped live"
    );
    coord_exporter.shutdown();
}

//! Property-based tests (proptest) over the core invariants:
//!
//! * log record encode/decode round-trips for arbitrary payloads;
//! * recovery produces the same state as the runtime did, for arbitrary
//!   interleavings of commit/abort decisions;
//! * saga traces always have the paper's `t1..tk ctk..ct1` shape;
//! * OpSet/ObSet algebra laws that the transitive-permit semantics rely on;
//! * contingent transactions commit exactly the first viable alternative;
//! * random transfer workloads conserve totals.

use asset::storage::{LogManager, LogRecord};
use asset::{Database, ObSet, Oid, OpSet, Operation, Tid, TxnCtx};
use proptest::prelude::*;

// --- log round-trip ---------------------------------------------------------

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        (1u64..1000).prop_map(|t| LogRecord::Begin { tid: Tid(t) }),
        (
            1u64..1000,
            1u64..1000,
            proptest::option::of(arb_bytes()),
            proptest::option::of(arb_bytes())
        )
            .prop_map(|(t, o, before, after)| LogRecord::Update {
                tid: Tid(t),
                oid: Oid(o),
                before,
                after
            }),
        proptest::collection::vec(1u64..1000, 1..8).prop_map(|ts| LogRecord::Commit {
            tids: ts.into_iter().map(Tid).collect()
        }),
        (1u64..1000).prop_map(|t| LogRecord::Abort { tid: Tid(t) }),
        (
            1u64..1000,
            1u64..1000,
            proptest::option::of(proptest::collection::vec(1u64..1000, 0..10))
        )
            .prop_map(|(f, t, obs)| LogRecord::Delegate {
                from: Tid(f),
                to: Tid(t),
                obs: obs.map(|v| v.into_iter().map(Oid).collect()),
            }),
        Just(LogRecord::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log_record_roundtrip(rec in arb_record()) {
        let body = rec.encode_body();
        let back = LogRecord::decode_body(&body).unwrap();
        prop_assert_eq!(&rec, &back);
        let frame = rec.encode_frame();
        let (back2, next) = LogRecord::decode_frame(&frame, 0).unwrap().unwrap();
        prop_assert_eq!(&rec, &back2);
        prop_assert_eq!(next, frame.len());
    }

    #[test]
    fn log_stream_roundtrip(recs in proptest::collection::vec(arb_record(), 0..20)) {
        let log = LogManager::in_memory();
        for r in &recs {
            log.append(r).unwrap();
        }
        let scanned: Vec<LogRecord> = log.scan().unwrap().into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(recs, scanned);
    }

    #[test]
    fn torn_tail_never_errors(rec in arb_record(), cut_fraction in 0.0f64..1.0) {
        // any prefix of a single frame decodes as clean EOF, never Err
        let frame = rec.encode_frame();
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        if cut < frame.len() {
            let r = LogRecord::decode_frame(&frame[..cut], 0).unwrap();
            prop_assert!(r.is_none());
        }
    }
}

// --- opset / obset algebra ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn opset_intersection_is_conjunction(a in 0u8..4, b in 0u8..4) {
        let mk = |bits: u8| {
            let mut s = OpSet::NONE;
            if bits & 1 != 0 { s = s.insert(Operation::Read); }
            if bits & 2 != 0 { s = s.insert(Operation::Write); }
            s
        };
        let (sa, sb) = (mk(a), mk(b));
        for op in [Operation::Read, Operation::Write] {
            prop_assert_eq!(
                sa.intersect(sb).contains(op),
                sa.contains(op) && sb.contains(op)
            );
            prop_assert_eq!(
                sa.union(sb).contains(op),
                sa.contains(op) || sb.contains(op)
            );
        }
    }

    #[test]
    fn obset_intersection_is_conjunction(
        a in proptest::collection::btree_set(1u64..50, 0..20),
        b in proptest::collection::btree_set(1u64..50, 0..20),
        probe in 1u64..50,
    ) {
        let sa = ObSet::Objects(a.iter().copied().map(Oid).collect());
        let sb = ObSet::Objects(b.iter().copied().map(Oid).collect());
        let both = sa.intersect(&sb);
        prop_assert_eq!(
            both.contains(Oid(probe)),
            sa.contains(Oid(probe)) && sb.contains(Oid(probe))
        );
        // All is the identity of intersection
        prop_assert_eq!(ObSet::All.intersect(&sa), sa.clone());
        prop_assert_eq!(sa.intersect(&ObSet::All), sa);
    }
}

// --- runtime semantics ---------------------------------------------------------

proptest! {
    // these spin up real databases and threads — keep the case count modest
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For an arbitrary commit/abort decision vector over independent
    /// transactions, the final state contains exactly the committed writes.
    #[test]
    fn commit_abort_decisions_apply_exactly(decisions in proptest::collection::vec(any::<bool>(), 1..12)) {
        let db = Database::in_memory();
        let mut expectations = vec![];
        for (i, commit) in decisions.iter().enumerate() {
            let oid = db.new_oid();
            let t = db.initiate(move |ctx: &TxnCtx| ctx.write(oid, vec![i as u8])).unwrap();
            db.begin(t).unwrap();
            db.wait(t).unwrap();
            if *commit {
                prop_assert!(db.commit(t).unwrap());
            } else {
                prop_assert!(db.abort(t).unwrap());
            }
            expectations.push((oid, *commit, i as u8));
        }
        for (oid, committed, tag) in expectations {
            match db.peek(oid).unwrap() {
                Some(v) => {
                    prop_assert!(committed);
                    prop_assert_eq!(v, vec![tag]);
                }
                None => prop_assert!(!committed),
            }
        }
    }

    /// Saga traces always match t1..tk (ctk..ct1 on failure): committed
    /// steps in order, then their compensations in exact reverse order.
    #[test]
    fn saga_trace_shape(n_steps in 1usize..8, fail_at in proptest::option::of(0usize..8)) {
        use asset::models::{Saga, SagaOutcome};
        let fail_at = fail_at.filter(|f| *f < n_steps);
        let db = Database::in_memory();
        let mut saga = Saga::new();
        for i in 0..n_steps {
            let fails = fail_at == Some(i);
            saga = saga.step(
                format!("s{i}"),
                move |ctx: &TxnCtx| {
                    if fails { ctx.abort_self::<()>().map(|_| ()) } else { Ok(()) }
                },
                |_| Ok(()),
            );
        }
        let (outcome, trace) = saga.run(&db).unwrap();
        match fail_at {
            None => {
                prop_assert_eq!(outcome, SagaOutcome::Committed);
                let expect: Vec<String> = (0..n_steps).map(|i| format!("s{i}")).collect();
                prop_assert_eq!(trace.events, expect);
            }
            Some(k) => {
                prop_assert_eq!(outcome, SagaOutcome::Compensated { failed_step: k });
                let mut expect: Vec<String> = (0..k).map(|i| format!("s{i}")).collect();
                expect.extend((0..k).rev().map(|i| format!("~s{i}")));
                prop_assert_eq!(trace.events, expect);
            }
        }
    }

    /// Contingent transactions commit exactly the first viable alternative.
    #[test]
    fn contingent_picks_first_viable(viability in proptest::collection::vec(any::<bool>(), 1..8)) {
        use asset::models::run_contingent;
        let db = Database::in_memory();
        let alternatives = viability
            .iter()
            .map(|&ok| {
                Box::new(move |ctx: &TxnCtx| {
                    if ok { Ok(()) } else { ctx.abort_self::<()>().map(|_| ()) }
                }) as Box<dyn FnOnce(&TxnCtx) -> asset::Result<()> + Send>
            })
            .collect();
        let chosen = run_contingent(&db, alternatives).unwrap();
        prop_assert_eq!(chosen, viability.iter().position(|&v| v));
    }

    /// Sequential random transfers conserve the total.
    #[test]
    fn transfers_conserve_total(
        moves in proptest::collection::vec((0usize..4, 0usize..4, 0i64..100), 0..25)
    ) {
        let db = Database::in_memory();
        let accounts: Vec<Oid> = (0..4).map(|_| db.new_oid()).collect();
        let a2 = accounts.clone();
        assert!(db.run(move |ctx| {
            for oid in &a2 {
                ctx.write(*oid, 500i64.to_le_bytes().to_vec())?;
            }
            Ok(())
        }).unwrap());
        for (from, to, amount) in moves {
            let (f, t) = (accounts[from], accounts[to]);
            if f == t { continue; }
            let _ = db.run(move |ctx| {
                let vf = i64::from_le_bytes(ctx.read(f)?.unwrap().try_into().unwrap());
                if vf < amount {
                    return ctx.abort_self();
                }
                ctx.write(f, (vf - amount).to_le_bytes().to_vec())?;
                let vt = i64::from_le_bytes(ctx.read(t)?.unwrap().try_into().unwrap());
                ctx.write(t, (vt + amount).to_le_bytes().to_vec())
            }).unwrap();
        }
        let total: i64 = accounts
            .iter()
            .map(|o| i64::from_le_bytes(db.peek(*o).unwrap().unwrap().try_into().unwrap()))
            .sum();
        prop_assert_eq!(total, 2_000);
    }
}

//! Integration tests for the observability layer: a model run emits the
//! expected lifecycle event sequence, and `MetricsSnapshot` totals
//! reconcile with the captured trace.

use asset::models::{Saga, SagaOutcome};
use asset::obs::{EventKind, ModelKind};
use asset::Database;

/// The §3.1.6 saga shape, as seen through the event trace: component
/// commits, the failing component's abort, and the compensation — in that
/// order.
#[test]
fn saga_run_emits_expected_lifecycle_sequence() {
    let db = Database::in_memory();
    db.obs().enable_tracing(4096);
    let a = db.new_oid();

    let saga = Saga::new()
        .step(
            "reserve",
            move |ctx| ctx.write(a, b"held".to_vec()),
            move |ctx| ctx.delete(a),
        )
        .final_step("boom", |ctx| ctx.abort_self::<()>().map(|_| ()));
    let (outcome, _) = saga.run(&db).unwrap();
    assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 1 });

    let trace = db.obs().trace();
    assert!(!trace.is_empty(), "tracing was on: events must be captured");

    // the saga milestones appear in paper order: step, failure, compensation
    let labels: Vec<&str> = trace
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Model {
                model: ModelKind::Saga,
                label,
                ..
            } => Some(label),
            _ => None,
        })
        .collect();
    assert_eq!(labels, vec!["step", "failed", "compensate"]);

    // every initiated transaction also began (the saga engine always
    // begins what it initiates)
    let initiated: Vec<_> = trace
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TxnInitiate { tid, .. } => Some(tid),
            _ => None,
        })
        .collect();
    assert_eq!(
        initiated.len(),
        3,
        "component, failing component, compensation"
    );
    for tid in &initiated {
        assert!(
            trace
                .iter()
                .any(|e| e.kind == EventKind::TxnBegin { tid: *tid }),
            "{tid:?} initiated but never began"
        );
    }

    // exactly one abort (the failing component), two commits (the
    // successful component and its compensation)
    let aborts = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TxnAbort { .. }))
        .count();
    let commits = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TxnCommit { .. }))
        .count();
    assert_eq!(aborts, 1);
    assert_eq!(commits, 2);

    // the compensation commit comes after the abort
    let abort_seq = trace
        .iter()
        .find(|e| matches!(e.kind, EventKind::TxnAbort { .. }))
        .unwrap()
        .seq;
    let last_commit_seq = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TxnCommit { .. }))
        .map(|e| e.seq)
        .max()
        .unwrap();
    assert!(
        last_commit_seq > abort_seq,
        "compensation follows the abort"
    );
}

/// Counter totals and the event trace are two views of the same history;
/// with a ring large enough to avoid overwrites they must agree exactly.
#[test]
fn metrics_snapshot_reconciles_with_trace() {
    let db = Database::in_memory();
    db.obs().enable_tracing(8192);

    let oids: Vec<_> = (0..5).map(|_| db.new_oid()).collect();
    for (i, oid) in oids.iter().enumerate() {
        let oid = *oid;
        assert!(db.run(move |ctx| ctx.write(oid, vec![i as u8])).unwrap());
    }
    // one aborting transaction with two undo records
    let (x, y) = (oids[0], oids[1]);
    let t = db
        .initiate(move |ctx| {
            ctx.write(x, b"doomed".to_vec())?;
            ctx.write(y, b"doomed".to_vec())?;
            ctx.abort_self::<()>().map(|_| ())
        })
        .unwrap();
    db.begin(t).unwrap();
    assert!(!db.commit(t).unwrap());

    let snap = db.metrics_snapshot();
    let trace = db.obs().trace();
    assert_eq!(snap.events_dropped, 0, "uncontended run drops nothing");
    assert_eq!(
        snap.counters.events_recorded,
        trace.len() as u64,
        "no wraparound at this capacity: every recorded event survives"
    );

    let count =
        |pred: fn(&EventKind) -> bool| trace.iter().filter(|e| pred(&e.kind)).count() as u64;
    assert_eq!(
        snap.counters.txn_initiated,
        count(|k| matches!(k, EventKind::TxnInitiate { .. }))
    );
    assert_eq!(
        snap.counters.txn_begun,
        count(|k| matches!(k, EventKind::TxnBegin { .. }))
    );
    assert_eq!(
        snap.counters.txn_aborted,
        count(|k| matches!(k, EventKind::TxnAbort { .. }))
    );
    // each TxnCommit event carries its group size; the counter sums them
    let committed_via_trace: u64 = trace
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TxnCommit { group, .. } => Some(group as u64),
            _ => None,
        })
        .sum();
    assert_eq!(snap.counters.txn_committed, committed_via_trace);

    // the abort rolled back two writes, visible in both views
    let undo_via_trace: u64 = trace
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TxnAbort { undo_records, .. } => Some(undo_records as u64),
            _ => None,
        })
        .sum();
    assert_eq!(undo_via_trace, 2);
    assert_eq!(snap.undo_records.sum, 2);
    assert_eq!(snap.undo_records.count, snap.counters.txn_aborted);
}

/// A saturated recorder reports drops instead of blocking: hammer a tiny
/// ring from several writers while a drainer repeatedly holds the slot
/// locks, then check the books balance — every attempt either stored
/// (`events_recorded`) or was dropped (`events_dropped`), and drops
/// actually happened. Whether a writer really lands on a held slot is
/// scheduler-dependent (a single-CPU host can serialize the threads), so
/// the saturation pass repeats until a drop is observed; the accounting
/// invariant is checked cumulatively across passes.
#[test]
fn saturated_recorder_reports_drops() {
    use asset::obs::Obs;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let obs = Arc::new(Obs::new());
    obs.enable_tracing(8); // smallest ring: 8 slots
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 20_000;
    const MAX_PASSES: u64 = 25;

    let mut passes = 0;
    while passes < MAX_PASSES {
        passes += 1;
        let done = Arc::new(AtomicBool::new(false));
        let drainer = {
            let obs = Arc::clone(&obs);
            let done = Arc::clone(&done);
            // trace() locks every slot in turn; a writer landing on a
            // held slot must drop, not wait.
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let _ = obs.trace();
                }
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let obs = Arc::clone(&obs);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        obs.record(EventKind::TxnBegin {
                            tid: asset::Tid(w * PER_WRITER + i + 1),
                        });
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        drainer.join().unwrap();
        if obs.snapshot().events_dropped > 0 {
            break;
        }
    }

    let snap = obs.snapshot();
    assert!(
        snap.events_dropped > 0,
        "8-slot ring under 4 writers + a draining reader must drop \
         (no collision in {MAX_PASSES} passes)"
    );
    assert_eq!(
        snap.counters.events_recorded + snap.events_dropped,
        WRITERS * PER_WRITER * passes,
        "every record attempt is accounted: stored or dropped"
    );
}

/// With the recorder off (the default), counters still count but the trace
/// stays empty and nothing is charged to `events_recorded`.
#[test]
fn default_off_recorder_keeps_counters_but_no_trace() {
    let db = Database::in_memory();
    let oid = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(oid, b"v".to_vec())).unwrap());

    let snap = db.metrics_snapshot();
    assert!(!snap.tracing_enabled);
    assert_eq!(snap.counters.events_recorded, 0);
    assert!(db.obs().trace().is_empty());
    assert!(snap.counters.txn_initiated >= 1, "counters are always on");
    assert!(snap.counters.txn_committed >= 1);
}

//! Integration tests for the state-machine transaction executor
//! (DESIGN.md §12): `Database::submit` drives a resumable program on the
//! worker pool, parks on lock conflicts, commits through the batched
//! group-commit flusher, and leaves a causal trace whose commit flows
//! terminate on shared flush-window spans.

use asset::trace::{chrome, CausalGraph};
use asset::{AssetError, Config, Database, Oid, StepCtx, TryOp, TxnStep};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

/// A resumable one-write program: re-entered from the top on every step,
/// it re-attempts the write until the lock is granted.
fn write_prog(
    o: Oid,
    val: &'static [u8],
) -> impl FnMut(&mut StepCtx<'_>) -> TxnStep + Send + 'static {
    move |sc| match sc.try_write(o, val.to_vec()) {
        Ok(TryOp::Done(())) => TxnStep::Done(Ok(())),
        Ok(TryOp::WouldBlock) => TxnStep::WaitLock { ob: o },
        Err(e) => TxnStep::Done(Err(e)),
    }
}

/// A resumable read-modify-write increment taking the exclusive lock
/// first (no S→X upgrade, so contending copies cannot deadlock).
fn incr_prog(o: Oid) -> impl FnMut(&mut StepCtx<'_>) -> TxnStep + Send + 'static {
    move |sc| {
        match sc.try_lock_exclusive(o) {
            Ok(TryOp::Done(())) => {}
            Ok(TryOp::WouldBlock) => return TxnStep::WaitLock { ob: o },
            Err(e) => return TxnStep::Done(Err(e)),
        }
        let cur = match sc.try_read(o) {
            Ok(TryOp::Done(v)) => v
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte counter")))
                .unwrap_or(0),
            Ok(TryOp::WouldBlock) => return TxnStep::WaitLock { ob: o },
            Err(e) => return TxnStep::Done(Err(e)),
        };
        match sc.try_write(o, (cur + 1).to_le_bytes().to_vec()) {
            Ok(TryOp::Done(())) => TxnStep::Done(Ok(())),
            Ok(TryOp::WouldBlock) => TxnStep::WaitLock { ob: o },
            Err(e) => TxnStep::Done(Err(e)),
        }
    }
}

#[test]
fn submitted_transaction_commits_and_is_visible() {
    let db = Database::in_memory();
    let o = db.new_oid();
    let t = db.submit(write_prog(o, b"v1")).unwrap();
    assert!(db.outcome(t).unwrap());
    assert_eq!(db.peek(o).unwrap().unwrap(), b"v1");
    let snap = db.metrics_snapshot();
    assert!(snap.counters.exec_steps >= 1, "steps were counted");
    assert_eq!(snap.counters.txn_committed, 1);
    assert_eq!(snap.counters.txn_aborted, 0);
}

#[test]
fn a_submission_batch_shares_flush_windows() {
    let db = Database::open(Config::in_memory().with_commit_flush_window(Duration::from_millis(2)))
        .unwrap()
        .0;
    let n = 32;
    let oids: Vec<Oid> = (0..n).map(|_| db.new_oid()).collect();
    let tids: Vec<_> = oids
        .iter()
        .map(|&o| db.submit(write_prog(o, b"w")).unwrap())
        .collect();
    for t in tids {
        assert!(db.outcome(t).unwrap());
    }
    for o in oids {
        assert_eq!(db.peek(o).unwrap().unwrap(), b"w");
    }
    let windows = db.engine().flusher().windows_flushed();
    assert!(
        windows < n as u64,
        "{n} concurrent commits within a 2ms window must share flushes, got {windows} windows"
    );
    assert_eq!(db.metrics_snapshot().counters.txn_committed, n as u64);
}

#[test]
fn contended_increments_serialize_through_the_pool() {
    let db = Database::in_memory();
    let o = db.new_oid();
    let n = 24;
    let tids: Vec<_> = (0..n).map(|_| db.submit(incr_prog(o)).unwrap()).collect();
    for t in tids {
        assert!(db.outcome(t).unwrap(), "contended increment must commit");
    }
    let v = db.peek(o).unwrap().unwrap();
    assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), n as u64);
}

#[test]
fn a_failing_program_aborts_and_rolls_back() {
    let db = Database::in_memory();
    let o = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(o, b"keep".to_vec())).unwrap());
    let t = db
        .submit(move |sc| match sc.try_write(o, b"dirty".to_vec()) {
            Ok(TryOp::Done(())) => TxnStep::Done(Err(AssetError::TxnAborted(sc.id()))),
            Ok(TryOp::WouldBlock) => TxnStep::WaitLock { ob: o },
            Err(e) => TxnStep::Done(Err(e)),
        })
        .unwrap();
    assert!(!db.outcome(t).unwrap(), "failing program must abort");
    assert_eq!(db.peek(o).unwrap().unwrap(), b"keep");
    assert_eq!(db.metrics_snapshot().counters.txn_aborted, 1);
}

/// A blocking-path transaction holds the exclusive lock while an executor
/// transaction is submitted against the same object: the task parks (no
/// worker thread is consumed by the wait) and the stripe wakeup requeues
/// it after the blocking commit releases — so the executor write always
/// lands second.
#[test]
fn executor_parks_behind_a_blocking_writer_and_is_requeued() {
    let db = Database::in_memory();
    let o = db.new_oid();
    let (locked_tx, locked_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let tb = db
        .initiate(move |ctx| {
            ctx.write(o, b"block".to_vec())?;
            let _ = locked_tx.send(());
            let _ = release_rx.recv();
            Ok(())
        })
        .unwrap();
    db.begin(tb).unwrap();
    locked_rx.recv().unwrap(); // the blocking txn now holds X on o
    let te = db.submit(write_prog(o, b"exec")).unwrap();
    // give the task a chance to run into the conflict and park
    std::thread::sleep(Duration::from_millis(20));
    release_tx.send(()).unwrap();
    assert!(db.commit(tb).unwrap());
    assert!(db.outcome(te).unwrap());
    assert_eq!(
        db.peek(o).unwrap().unwrap(),
        b"exec",
        "the parked executor write must land after the blocking commit"
    );
}

/// The acceptance shape for the whole feature: every executor commit in
/// the trace is a flow terminating on a flush-window span of the storage
/// lane, and (pigeonhole over `windows_flushed`) flows genuinely share
/// windows when the flusher coalesced.
#[test]
fn commit_flows_terminate_on_shared_flush_windows() {
    let db = Database::open(Config::in_memory().with_commit_flush_window(Duration::from_millis(2)))
        .unwrap()
        .0;
    db.obs().enable_tracing(16384);
    let n = 8usize;
    let tids: Vec<_> = (0..n)
        .map(|_| {
            let o = db.new_oid();
            db.submit(write_prog(o, b"f")).unwrap()
        })
        .collect();
    for t in tids {
        assert!(db.outcome(t).unwrap());
    }
    let windows_flushed = db.engine().flusher().windows_flushed();

    let trace = db.obs().trace();
    let g = CausalGraph::from_events(&trace);
    assert_eq!(
        g.flush_flows.len(),
        n,
        "every executor commit terminates on a flush window"
    );
    let mut per_window: HashMap<u64, usize> = HashMap::new();
    for f in &g.flush_flows {
        *per_window.entry(f.window).or_default() += 1;
        assert!(
            g.storage.iter().any(|s| matches!(
                s.kind,
                asset::trace::SpanKind::FlushWindow { window, records, .. }
                    if window == f.window && records >= 1
            )),
            "flow window {} has a matching flush-window span",
            f.window
        );
    }
    if windows_flushed < n as u64 {
        assert!(
            per_window.values().any(|&c| c >= 2),
            "coalesced windows must carry multiple commit flows"
        );
    }
    let doc = chrome::render(&g);
    assert!(
        doc.contains("flush-window"),
        "chrome export renders the shared flush lane"
    );
}

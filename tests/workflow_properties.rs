//! Property tests for the workflow engine: random workflows are executed
//! and checked against a trivial reference interpreter over the same
//! viability assignment — the outcome, the failing step, and the final
//! object state must all match.

use asset::models::{Branch, Step, Workflow, WorkflowOutcome};
use asset::{Database, Oid, TxnCtx};
use proptest::prelude::*;

/// One randomly generated step specification.
#[derive(Clone, Debug)]
struct StepSpec {
    /// Viability of each branch.
    branches: Vec<bool>,
    /// single (1 branch), alternatives, or parallel.
    kind: u8,
    optional: bool,
}

fn arb_step() -> impl Strategy<Value = StepSpec> {
    (
        proptest::collection::vec(any::<bool>(), 1..4),
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(branches, kind, optional)| StepSpec {
            branches,
            kind,
            optional,
        })
}

/// Reference semantics: does the step succeed, and which branches commit?
fn reference_step(spec: &StepSpec) -> (bool, Vec<usize>) {
    match spec.kind {
        // single: only the first branch matters
        0 => (
            spec.branches[0],
            if spec.branches[0] { vec![0] } else { vec![] },
        ),
        // alternatives: first viable wins
        1 => match spec.branches.iter().position(|&v| v) {
            Some(i) => (true, vec![i]),
            None => (false, vec![]),
        },
        // parallel: all or nothing
        _ => {
            if spec.branches.iter().all(|&v| v) {
                (true, (0..spec.branches.len()).collect())
            } else {
                (false, vec![])
            }
        }
    }
}

/// Reference semantics for the whole workflow: Completed or Failed{k}, and
/// the set of (step, branch) writes that survive (committed and not
/// compensated).
fn reference_workflow(specs: &[StepSpec]) -> (Option<usize>, Vec<(usize, usize)>) {
    let mut surviving = vec![];
    for (i, spec) in specs.iter().enumerate() {
        let (ok, branches) = reference_step(spec);
        if ok {
            for b in branches {
                surviving.push((i, b));
            }
        } else if !spec.optional {
            // failure: all earlier committed writes are compensated
            return (Some(i), vec![]);
        }
    }
    (None, surviving)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn workflow_matches_reference_interpreter(
        specs in proptest::collection::vec(arb_step(), 0..5)
    ) {
        let db = Database::in_memory();
        // one object per (step, branch); a committed branch writes its tag,
        // its compensation deletes it
        let oids: Vec<Vec<Oid>> = specs
            .iter()
            .map(|s| s.branches.iter().map(|_| db.new_oid()).collect())
            .collect();

        let mut wf = Workflow::new("generated");
        for (i, spec) in specs.iter().enumerate() {
            let branches: Vec<Branch> = spec
                .branches
                .iter()
                .enumerate()
                .map(|(b, &viable)| {
                    let oid = oids[i][b];
                    Branch::new(
                        format!("s{i}b{b}"),
                        move |ctx: &TxnCtx| {
                            if viable {
                                ctx.write(oid, vec![1])
                            } else {
                                ctx.abort_self::<()>().map(|_| ())
                            }
                        },
                        move |ctx: &TxnCtx| ctx.delete(oid),
                    )
                })
                .collect();
            let mut step = match spec.kind {
                0 => Step::single(format!("s{i}"), branches.into_iter().next().unwrap()),
                1 => Step::alternatives(format!("s{i}"), branches),
                _ => Step::parallel(format!("s{i}"), branches),
            };
            if spec.optional {
                step = step.optional();
            }
            wf = wf.step(step);
        }

        let (outcome, results) = wf.run(&db).unwrap();
        let (expect_fail, surviving) = reference_workflow(&specs);

        match expect_fail {
            Some(k) => {
                prop_assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: k });
                // everything compensated: no object survives
                for row in &oids {
                    for oid in row {
                        prop_assert_eq!(db.peek(*oid).unwrap(), None);
                    }
                }
            }
            None => {
                prop_assert_eq!(outcome, WorkflowOutcome::Completed);
                prop_assert_eq!(results.len(), specs.len());
                for (i, row) in oids.iter().enumerate() {
                    for (b, oid) in row.iter().enumerate() {
                        let expect = surviving.contains(&(i, b));
                        prop_assert_eq!(
                            db.peek(*oid).unwrap().is_some(),
                            expect,
                            "step {} branch {} survival mismatch", i, b
                        );
                    }
                }
            }
        }
        db.retire_terminated();
    }
}

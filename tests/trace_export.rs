//! Acceptance tests for the `asset-trace` export layer: a
//! saga-with-compensation run (plus a delegation handoff and a CD link, so
//! the trace carries every causal-edge kind) exported to Chrome
//! trace-event JSON has one track per transaction and one flow-event pair
//! per delegation/dependency edge; and a live Prometheus scrape returns
//! the same counter totals as `metrics_snapshot()`.

use asset::models::{Saga, SagaOutcome};
use asset::obs::EventKind;
use asset::trace::{chrome, json, prom, CausalGraph};
use asset::{Database, DepType, ObSet, OpSet, Tid};
use std::collections::HashSet;

/// Drive a saga with a failing step (so compensation runs), then a
/// delegation + permit handoff, then a CD-linked pair — a §3 sampler that
/// exercises every edge kind the causal graph knows.
fn run_workload(db: &Database) {
    // saga: reserve → boom (aborts) → compensate
    let a = db.new_oid();
    let saga = Saga::new()
        .step(
            "reserve",
            move |ctx| ctx.write(a, b"held".to_vec()),
            move |ctx| ctx.delete(a),
        )
        .final_step("boom", |ctx| ctx.abort_self::<()>().map(|_| ()));
    let (outcome, _) = saga.run(db).unwrap();
    assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 1 });

    // delegation + permit handoff (§2.1): t1 writes, permits and delegates
    // to t2; t1 commits empty, t2 aborts and owns the undo
    let o = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(o, b"base".to_vec())).unwrap());
    let t1 = db
        .initiate(move |ctx| ctx.write(o, b"handoff".to_vec()))
        .unwrap();
    db.begin(t1).unwrap();
    assert!(db.wait(t1).unwrap());
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.permit(t1, Some(t2), ObSet::one(o), OpSet::ALL).unwrap();
    db.delegate(t1, t2, None).unwrap();
    assert!(db.commit(t1).unwrap());
    assert!(db.abort(t2).unwrap());

    // CD-linked pair (§3.2.1)
    let (x, y) = (db.new_oid(), db.new_oid());
    let ti = db
        .initiate(move |ctx| ctx.write(x, b"ti".to_vec()))
        .unwrap();
    let tj = db
        .initiate(move |ctx| ctx.write(y, b"tj".to_vec()))
        .unwrap();
    db.form_dependency(DepType::CD, ti, tj).unwrap();
    db.begin(ti).unwrap();
    db.begin(tj).unwrap();
    assert!(db.commit(ti).unwrap());
    assert!(db.commit(tj).unwrap());
}

#[test]
fn chrome_export_has_one_track_per_txn_and_one_flow_per_edge() {
    let db = Database::in_memory();
    db.obs().enable_tracing(16384);
    run_workload(&db);

    let trace = db.obs().trace();
    assert_eq!(db.metrics_snapshot().events_dropped, 0);
    let g = CausalGraph::from_events(&trace);

    // ground truth from the raw event stream
    let mut tids: HashSet<Tid> = HashSet::new();
    let mut delegations = 0usize;
    let mut deps = 0usize;
    for e in &trace {
        match e.kind {
            EventKind::TxnInitiate { tid, .. } | EventKind::TxnBegin { tid } => {
                tids.insert(tid);
            }
            EventKind::Delegate { from, to, .. } => {
                tids.insert(from);
                tids.insert(to);
                delegations += 1;
            }
            EventKind::DepFormed { ti, tj, .. } => {
                tids.insert(ti);
                tids.insert(tj);
                deps += 1;
            }
            _ => {}
        }
    }
    assert!(delegations >= 1, "workload delegates at least once");
    assert!(deps >= 1, "workload forms at least one dependency");
    assert_eq!(
        g.tracks.len(),
        tids.len(),
        "one causal track per transaction seen in the trace"
    );

    let doc = chrome::render(&g);
    let v = json::parse(&doc).expect("chrome export must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");

    // one named track per transaction (plus one storage lane if storage
    // activity was captured)
    let thread_names = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .count();
    let expected_lanes = g.tracks.len() + usize::from(!g.storage.is_empty());
    assert_eq!(thread_names, expected_lanes);

    // every causal edge (delegation, permit, dependency, group-commit)
    // shows as exactly one s/f flow pair, as does every commit landing on
    // a shared flush window
    let s_count = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
        .count();
    let f_count = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
        .count();
    assert_eq!(s_count, g.edges.len() + g.flush_flows.len());
    assert_eq!(f_count, g.edges.len() + g.flush_flows.len());
    assert!(
        !g.flush_flows.is_empty(),
        "durable commits route through the group flusher, so their flows \
         must terminate on flush-window spans"
    );
    // and the delegation/dependency edges specifically are all present
    assert_eq!(g.edges_labeled("delegate").len(), delegations);
    let dep_edges = g.edges_labeled("dep-cd").len()
        + g.edges_labeled("dep-ad").len()
        + g.edges_labeled("dep-gc").len();
    assert_eq!(dep_edges, deps);
}

#[test]
fn prometheus_scrape_matches_metrics_snapshot() {
    let db = Database::in_memory();
    db.obs().enable_tracing(16384);
    run_workload(&db);

    let server = {
        let src = db.clone();
        prom::PromServer::spawn("127.0.0.1:0", move || {
            prom::render(&src.metrics_snapshot(), &src.locks().stripe_stats())
        })
        .unwrap()
    };

    // The workload is quiesced: a snapshot taken now and a scrape taken
    // now must agree on every counter total.
    let snap = db.metrics_snapshot();
    let body = prom::scrape(server.addr()).unwrap();
    snap.counters.for_each(|name, value| {
        let series = format!("asset_{name}_total");
        assert_eq!(
            prom::sample(&body, &series),
            Some(value as f64),
            "scrape and snapshot disagree on {series}"
        );
    });
    assert_eq!(
        prom::sample(&body, "asset_events_dropped_total"),
        Some(snap.events_dropped as f64)
    );
    assert_eq!(prom::sample(&body, "asset_tracing_enabled"), Some(1.0));
    // histogram totals round-trip too
    assert_eq!(
        prom::sample(&body, "asset_commit_ns_count"),
        Some(snap.commit_ns.count as f64),
        "commit latency observations serve over the endpoint"
    );
    assert!(snap.commit_ns.count > 0, "commits were timed under tracing");
}

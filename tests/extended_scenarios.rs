//! Cross-model integration scenarios: the extended transaction models
//! composed the way a real application would, plus a mixed-workload soak
//! test with log compaction and crash recovery at the end.

use asset::mlt::{run_mlt, EscrowCounter, MltOutcome, SemanticLockTable};
use asset::models::{required_subtransaction, run_atomic, run_nested, Saga, SagaOutcome};
use asset::{Config, Database, Oid};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn enc(v: i64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn dec(b: &[u8]) -> i64 {
    i64::from_le_bytes(b.try_into().unwrap())
}

/// A design office: each "project" is a nested transaction whose
/// subtransactions reserve a workstation (escrow), produce a design
/// document, and file a billing record — with MLT budget tracking running
/// alongside classic nested semantics.
#[test]
fn design_office_end_to_end() {
    let db = Database::in_memory();
    let sem = Arc::new(SemanticLockTable::new());
    let budget = EscrowCounter::create(&db, 10_000).unwrap();

    let billing = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(billing, enc(0))).unwrap());

    let completed = Arc::new(AtomicI64::new(0));
    std::thread::scope(|scope| {
        for p in 0..6i64 {
            let db = db.clone();
            let sem = Arc::clone(&sem);
            let completed = Arc::clone(&completed);
            scope.spawn(move || {
                // spend from the shared budget under MLT...
                let cost = 500 + p * 100;
                let spend = run_mlt(&db, &sem, move |mlt| {
                    budget.sub_bounded(mlt, cost, 0)?;
                    Ok(())
                })
                .unwrap();
                assert_eq!(spend, MltOutcome::Committed);
                // ...then run the project as a nested transaction
                let doc = db.new_oid();
                let committed = run_nested(&db, move |ctx| {
                    required_subtransaction(ctx, move |c| {
                        c.write(doc, format!("design-{p}").into_bytes())
                    })?;
                    required_subtransaction(ctx, move |c| {
                        c.update(billing, move |cur| enc(dec(&cur.unwrap()) + cost))
                    })?;
                    Ok(())
                })
                .unwrap();
                assert!(committed);
                completed.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(completed.load(Ordering::SeqCst), 6);
    let spent: i64 = (0..6).map(|p| 500 + p * 100).sum();
    assert_eq!(budget.peek(&db), 10_000 - spent);
    assert_eq!(dec(&db.peek(billing).unwrap().unwrap()), spent);
}

/// A saga whose steps are themselves nested transactions; a late failure
/// compensates the earlier nested commits.
#[test]
fn saga_of_nested_transactions() {
    let db = Database::in_memory();
    let warehouse = db.new_oid();
    let manifest = db.new_oid();
    assert!(db
        .run(move |ctx| {
            ctx.write(warehouse, enc(100))?;
            ctx.write(manifest, Vec::new())
        })
        .unwrap());

    let pick = move |units: i64| {
        move |ctx: &asset::TxnCtx| {
            // nested: decrement stock and append to manifest, atomically
            required_subtransaction(ctx, move |c| {
                c.update(warehouse, move |cur| enc(dec(&cur.unwrap()) - units))
            })?;
            required_subtransaction(ctx, move |c| {
                c.update(manifest, move |cur| {
                    let mut v = cur.unwrap_or_default();
                    v.push(units as u8);
                    v
                })
            })
        }
    };
    let unpick = move |units: i64| {
        move |ctx: &asset::TxnCtx| {
            ctx.update(warehouse, move |cur| enc(dec(&cur.unwrap()) + units))?;
            ctx.update(manifest, |cur| {
                let mut v = cur.unwrap_or_default();
                v.pop();
                v
            })
        }
    };

    let saga = Saga::new()
        .step("pick-10", pick(10), unpick(10))
        .step("pick-20", pick(20), unpick(20))
        .final_step("ship", |ctx: &asset::TxnCtx| {
            ctx.abort_self::<()>().map(|_| ())
        });
    let (outcome, trace) = saga.run(&db).unwrap();
    assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 2 });
    assert_eq!(
        trace.events,
        vec!["pick-10", "pick-20", "~pick-20", "~pick-10"]
    );
    assert_eq!(
        dec(&db.peek(warehouse).unwrap().unwrap()),
        100,
        "stock restored"
    );
    assert!(
        db.peek(manifest).unwrap().unwrap().is_empty(),
        "manifest emptied"
    );
}

/// Soak: hundreds of mixed transactions (transfers, aborts, delegations,
/// nested work) interleaved with log compaction; totals hold and a final
/// crash-recovery pass converges to the same state.
#[test]
fn mixed_workload_soak_with_compaction_and_recovery() {
    let dir = std::env::temp_dir().join(format!("asset-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = Config::on_disk(&dir);
    config.durability = asset::Durability::Buffered;

    let n_accounts = 6usize;
    let initial = 1_000i64;
    let accounts: Vec<Oid>;
    let expected_total = (n_accounts as i64) * initial;
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        accounts = (0..n_accounts).map(|_| db.new_oid()).collect();
        let seed = accounts.clone();
        assert!(db
            .run(move |ctx| {
                for a in &seed {
                    ctx.write(*a, enc(initial))?;
                }
                Ok(())
            })
            .unwrap());

        let mut state = 0xABCDu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..300 {
            let from = accounts[(rand() % n_accounts as u64) as usize];
            let to = accounts[(rand() % n_accounts as u64) as usize];
            if from == to {
                continue;
            }
            let amount = (rand() % 40) as i64;
            let style = rand() % 4;
            match style {
                0 => {
                    // plain transfer
                    let _ = run_atomic(&db, move |ctx| {
                        let (a, b) = if from.raw() < to.raw() {
                            (from, to)
                        } else {
                            (to, from)
                        };
                        ctx.lock_exclusive(a)?;
                        ctx.lock_exclusive(b)?;
                        let vf = dec(&ctx.read(from)?.unwrap());
                        if vf < amount {
                            return ctx.abort_self();
                        }
                        ctx.write(from, enc(vf - amount))?;
                        let vt = dec(&ctx.read(to)?.unwrap());
                        ctx.write(to, enc(vt + amount))
                    })
                    .unwrap();
                }
                1 => {
                    // transfer inside a nested transaction
                    let _ = run_nested(&db, move |ctx| {
                        required_subtransaction(ctx, move |c| {
                            let (a, b) = if from.raw() < to.raw() {
                                (from, to)
                            } else {
                                (to, from)
                            };
                            c.lock_exclusive(a)?;
                            c.lock_exclusive(b)?;
                            let vf = dec(&c.read(from)?.unwrap());
                            if vf < amount {
                                return c.abort_self();
                            }
                            c.write(from, enc(vf - amount))?;
                            let vt = dec(&c.read(to)?.unwrap());
                            c.write(to, enc(vt + amount))
                        })
                    })
                    .unwrap();
                }
                2 => {
                    // start, write, then abort — must leave no trace
                    let t = db
                        .initiate(move |ctx| {
                            ctx.update(from, move |cur| enc(dec(&cur.unwrap()) - 999))
                        })
                        .unwrap();
                    db.begin(t).unwrap();
                    db.wait(t).unwrap();
                    db.abort(t).unwrap();
                }
                _ => {
                    // delegated hand-off that commits via the receiver
                    let receiver = db.initiate(|_| Ok(())).unwrap();
                    let worker = db
                        .initiate(move |ctx| {
                            ctx.update(from, move |cur| enc(dec(&cur.unwrap())))?;
                            ctx.delegate_to(receiver)
                        })
                        .unwrap();
                    db.begin(worker).unwrap();
                    db.wait(worker).unwrap();
                    db.commit(worker).unwrap();
                    db.begin(receiver).unwrap();
                    db.commit(receiver).unwrap();
                }
            }
            if round % 60 == 59 {
                db.retire_terminated();
                db.compact_log().unwrap();
            }
        }
        let total: i64 = accounts
            .iter()
            .map(|a| dec(&db.peek(*a).unwrap().unwrap()))
            .sum();
        assert_eq!(total, expected_total, "conserved before crash");
        db.engine().log().flush().unwrap();
        // crash here
    }
    let (db, _) = Database::open(config).unwrap();
    let total: i64 = accounts
        .iter()
        .map(|a| dec(&db.peek(*a).unwrap().unwrap()))
        .sum();
    assert_eq!(
        total, expected_total,
        "conserved across compactions and crash"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Crash-recovery integration tests over the on-disk engine: committed
//! work survives, in-flight work rolls back, delegation is honored across
//! restarts, checkpoints truncate, and recovery is idempotent.

use asset::{Config, Database, Oid};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "asset-it-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn full_lifecycle_across_restarts() {
    let dir = TempDir::new("lifecycle");
    let config = Config::on_disk(&dir.0);
    let mut surviving: Vec<(Oid, Vec<u8>)> = vec![];

    // session 1: commit a batch, leave one in flight
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        for i in 0..10u8 {
            let oid = db.new_oid();
            let val = vec![i; 16];
            let v2 = val.clone();
            assert!(db.run(move |ctx| ctx.write(oid, v2)).unwrap());
            surviving.push((oid, val));
        }
        let victim = surviving[0].0;
        let t = db
            .initiate(move |ctx| ctx.write(victim, b"never committed".to_vec()))
            .unwrap();
        db.begin(t).unwrap();
        db.wait(t).unwrap();
        // crash without terminating t
    }

    // session 2: everything committed is there; the in-flight write is not
    {
        let (db, report) = Database::open(config.clone()).unwrap();
        assert_eq!(report.winners, 10);
        assert_eq!(report.losers, 1);
        for (oid, val) in &surviving {
            assert_eq!(db.peek(*oid).unwrap().unwrap(), *val);
        }
        // more committed work on top
        let oid = db.new_oid();
        assert!(db
            .run(move |ctx| ctx.write(oid, b"second life".to_vec()))
            .unwrap());
        surviving.push((oid, b"second life".to_vec()));
        db.checkpoint().unwrap();
    }

    // session 3: checkpoint settled everything; log replay is empty
    {
        let (db, report) = Database::open(config).unwrap();
        assert_eq!(report.redone, 0, "post-checkpoint recovery replays nothing");
        for (oid, val) in &surviving {
            assert_eq!(db.peek(*oid).unwrap().unwrap(), *val);
        }
    }
}

#[test]
fn delegation_respected_across_crash() {
    let dir = TempDir::new("delegation");
    let config = Config::on_disk(&dir.0);
    let kept: Oid;
    let dropped: Oid;
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        kept = db.new_oid();
        dropped = db.new_oid();
        let receiver = db.initiate(|_| Ok(())).unwrap();
        let worker = db
            .initiate(move |ctx| {
                ctx.write(kept, b"delegated then committed".to_vec())?;
                ctx.write(dropped, b"kept by worker".to_vec())?;
                // hand `kept` to the receiver
                ctx.delegate(ctx.id(), receiver, Some(asset::ObSet::one(kept)))
            })
            .unwrap();
        db.begin(worker).unwrap();
        db.wait(worker).unwrap();
        db.begin(receiver).unwrap();
        assert!(db.commit(receiver).unwrap());
        // worker never terminates: crash. Its remaining write (dropped)
        // must roll back; the delegated one (kept) must survive because
        // the receiver committed it.
    }
    let (db, _) = Database::open(config).unwrap();
    assert_eq!(db.peek(kept).unwrap().unwrap(), b"delegated then committed");
    assert_eq!(db.peek(dropped).unwrap(), None);
}

#[test]
fn group_commit_is_atomic_across_crash() {
    let dir = TempDir::new("gc");
    let config = Config::on_disk(&dir.0);
    let a: Oid;
    let b: Oid;
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        a = db.new_oid();
        b = db.new_oid();
        let t1 = db
            .initiate(move |ctx| ctx.write(a, b"left".to_vec()))
            .unwrap();
        let t2 = db
            .initiate(move |ctx| ctx.write(b, b"right".to_vec()))
            .unwrap();
        db.form_dependency(asset::DepType::GC, t1, t2).unwrap();
        db.begin_many(&[t1, t2]).unwrap();
        assert!(db.commit(t1).unwrap());
    }
    let (db, report) = Database::open(config).unwrap();
    assert_eq!(report.winners, 2, "one commit record covers the group");
    assert_eq!(db.peek(a).unwrap().unwrap(), b"left");
    assert_eq!(db.peek(b).unwrap().unwrap(), b"right");
}

#[test]
fn aborted_saga_compensations_are_durable() {
    let dir = TempDir::new("saga");
    let config = Config::on_disk(&dir.0);
    let ledger: Oid;
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        ledger = db.new_oid();
        assert!(db
            .run(move |ctx| ctx.write(ledger, 100i64.to_le_bytes().to_vec()))
            .unwrap());
        let saga = asset::Saga::new()
            .step(
                "debit",
                move |ctx: &asset::TxnCtx| {
                    ctx.update(ledger, |cur| {
                        let v = i64::from_le_bytes(cur.unwrap().try_into().unwrap());
                        (v - 40).to_le_bytes().to_vec()
                    })
                },
                move |ctx: &asset::TxnCtx| {
                    ctx.update(ledger, |cur| {
                        let v = i64::from_le_bytes(cur.unwrap().try_into().unwrap());
                        (v + 40).to_le_bytes().to_vec()
                    })
                },
            )
            .final_step("fail", |ctx: &asset::TxnCtx| {
                ctx.abort_self::<()>().map(|_| ())
            });
        let (outcome, _) = saga.run(&db).unwrap();
        assert_eq!(outcome, asset::SagaOutcome::Compensated { failed_step: 1 });
    }
    let (db, _) = Database::open(config).unwrap();
    let v = i64::from_le_bytes(db.peek(ledger).unwrap().unwrap().try_into().unwrap());
    assert_eq!(v, 100, "debit and its compensation both replayed");
}

#[test]
fn repeated_crashes_converge() {
    let dir = TempDir::new("repeat");
    let config = Config::on_disk(&dir.0);
    let oid: Oid;
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        oid = db.new_oid();
        assert!(db
            .run(move |ctx| ctx.write(oid, b"stable".to_vec()))
            .unwrap());
        let t = db
            .initiate(move |ctx| ctx.write(oid, b"churn".to_vec()))
            .unwrap();
        db.begin(t).unwrap();
        db.wait(t).unwrap();
    }
    // recover five times in a row; state must be identical each time
    for round in 0..5 {
        let (db, _) = Database::open(config.clone()).unwrap();
        assert_eq!(
            db.peek(oid).unwrap().unwrap(),
            b"stable",
            "round {round} diverged"
        );
    }
}

#[test]
fn many_transactions_large_log_replay() {
    let dir = TempDir::new("large");
    // Buffered durability: this test measures correctness of a long log,
    // not fsync throughput.
    let mut config = Config::on_disk(&dir.0);
    config.durability = asset::Durability::Buffered;
    let mut oids = vec![];
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        for i in 0..200u64 {
            let oid = db.new_oid();
            let committed = db
                .run(move |ctx| ctx.write(oid, i.to_le_bytes().to_vec()))
                .unwrap();
            assert!(committed);
            oids.push(oid);
        }
        // rewrite half of them
        for (i, oid) in oids.iter().enumerate().take(100) {
            let o = *oid;
            let v = (i as u64 + 1_000).to_le_bytes().to_vec();
            assert!(db.run(move |ctx| ctx.write(o, v)).unwrap());
        }
        db.engine().log().flush().unwrap();
    }
    let (db, report) = Database::open(config).unwrap();
    assert_eq!(report.winners, 300);
    for (i, oid) in oids.iter().enumerate() {
        let expect = if i < 100 { i as u64 + 1_000 } else { i as u64 };
        let got = u64::from_le_bytes(db.peek(*oid).unwrap().unwrap().try_into().unwrap());
        assert_eq!(got, expect, "object {i}");
    }
}

/// Fault-injected crash sweeps and per-bugfix regressions (compiled only
/// with `--features faults`; the broader matrix lives in
/// `tests/crash_matrix.rs`).
#[cfg(feature = "faults")]
mod faulted {
    use super::TempDir;
    use asset::faults::{FaultAction, FaultRegistry, Trigger};
    use asset::{Config, Database, DepType, TxnStatus};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn faulted_config(dir: &TempDir) -> (Config, Arc<FaultRegistry>) {
        asset::faults::silence_crash_panics();
        let faults = Arc::new(FaultRegistry::new());
        let config = Config::on_disk(&dir.0).with_faults(Arc::clone(&faults));
        (config, faults)
    }

    /// Regression for the torn-group-commit bug: a commit-record append
    /// failure used to strand every member of the GC group in the
    /// non-terminal `Committing` state with their effects still visible,
    /// while a restart would have rolled them back. The fix drives the
    /// group through abort, so the live outcome is terminal and agrees
    /// with recovery.
    #[test]
    fn commit_record_failure_leaves_group_terminal_and_agreeing() {
        let dir = TempDir::new("bug2");
        let (config, faults) = faulted_config(&dir);
        let (oa, ob);
        {
            let (db, _) = Database::open(config.clone()).unwrap();
            oa = db.new_oid();
            ob = db.new_oid();
            let t1 = db
                .initiate(move |ctx| ctx.write(oa, b"a1".to_vec()))
                .unwrap();
            let t2 = db
                .initiate(move |ctx| ctx.write(ob, b"b1".to_vec()))
                .unwrap();
            db.form_dependency(DepType::GC, t1, t2).unwrap();
            db.begin_many(&[t1, t2]).unwrap();
            db.wait(t1).unwrap();
            db.wait(t2).unwrap();

            faults.arm(
                asset::txn::failpoints::COMMIT_RECORD,
                Trigger::Once,
                FaultAction::Error,
            );
            let err = db.commit(t1).expect_err("injected commit-record failure");
            assert!(
                err.to_string().contains("commit.record"),
                "unexpected error: {err}"
            );
            // both members must be driven to a terminal state...
            assert_eq!(db.status(t1).unwrap(), TxnStatus::Aborted);
            assert_eq!(db.status(t2).unwrap(), TxnStatus::Aborted);
            // ...with their effects rolled back while the process lives
            assert_eq!(db.peek(oa).unwrap(), None);
            assert_eq!(db.peek(ob).unwrap(), None);
            // and the ambiguity must be observable
            assert_eq!(db.metrics_snapshot().counters.commit_log_failures, 1);
        }
        // a restart agrees: nothing committed
        faults.reset();
        let (db, _) = Database::open(config).unwrap();
        assert_eq!(db.peek(oa).unwrap(), None);
        assert_eq!(db.peek(ob).unwrap(), None);
    }

    /// Crash-point sweep over the GC group-commit path: wherever the
    /// process dies, a restart sees the group all-or-nothing.
    #[test]
    fn group_commit_crash_sweep_is_all_or_nothing() {
        let points = [
            asset::storage::failpoints::LOG_APPEND,
            asset::storage::failpoints::LOG_SYNC,
            asset::txn::failpoints::COMMIT_RECORD,
            asset::txn::failpoints::COMMIT_AFTER_RECORD,
        ];
        for point in points {
            let dir = TempDir::new("gc-sweep");
            let (config, faults) = faulted_config(&dir);
            let (oa, ob);
            {
                let (db, _) = Database::open(config.clone()).unwrap();
                oa = db.new_oid();
                ob = db.new_oid();
                let v = b"a0".to_vec();
                assert!(db.run(move |ctx| ctx.write(oa, v)).unwrap());
                let v = b"b0".to_vec();
                assert!(db.run(move |ctx| ctx.write(ob, v)).unwrap());
            }
            faults.arm(point, Trigger::Once, FaultAction::Crash);
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let (db, _) = Database::open(config.clone()).unwrap();
                let t1 = db
                    .initiate(move |ctx| ctx.write(oa, b"a1".to_vec()))
                    .unwrap();
                let t2 = db
                    .initiate(move |ctx| ctx.write(ob, b"b1".to_vec()))
                    .unwrap();
                db.form_dependency(DepType::GC, t1, t2).unwrap();
                db.begin_many(&[t1, t2]).unwrap();
                let _ = db.wait(t1);
                let _ = db.wait(t2);
                let _ = db.commit(t1);
            }));
            faults.reset();
            let (db, _) = Database::open(config).unwrap();
            let va = db.peek(oa).unwrap().unwrap();
            let vb = db.peek(ob).unwrap().unwrap();
            let both_old = va == b"a0" && vb == b"b0";
            let both_new = va == b"a1" && vb == b"b1";
            assert!(
                both_old || both_new,
                "[{point}] group commit torn across crash: ({va:?}, {vb:?})"
            );
        }
    }

    /// Crash-point sweep over delegation: once `delegate(t1, t2)` is on
    /// disk, the undo responsibility follows the delegatee through any
    /// crash — aborting t2 (live or during recovery) restores the
    /// baseline, and t1's commit never re-exposes the write.
    #[test]
    fn delegation_crash_sweep_undo_follows_delegatee() {
        let points = [
            asset::storage::failpoints::LOG_APPEND,
            asset::txn::failpoints::DELEGATE_RECORD,
            asset::txn::failpoints::ABORT_CLR,
        ];
        for point in points {
            let dir = TempDir::new("del-sweep");
            let (config, faults) = faulted_config(&dir);
            let o;
            {
                let (db, _) = Database::open(config.clone()).unwrap();
                o = db.new_oid();
                let v = b"d0".to_vec();
                assert!(db.run(move |ctx| ctx.write(o, v)).unwrap());
            }
            faults.arm(point, Trigger::Once, FaultAction::Crash);
            let _ = catch_unwind(AssertUnwindSafe(|| -> asset::Result<()> {
                let (db, _) = Database::open(config.clone()).unwrap();
                let t1 = db.initiate(move |ctx| ctx.write(o, b"d1".to_vec()))?;
                db.begin(t1)?;
                if !db.wait(t1)? {
                    return Ok(());
                }
                let t2 = db.initiate(|_| Ok(()))?;
                db.delegate(t1, t2, None)?;
                db.commit(t1)?;
                db.abort(t2)?;
                Ok(())
            }));
            faults.reset();
            let (db, _) = Database::open(config).unwrap();
            assert_eq!(
                db.peek(o).unwrap().unwrap(),
                b"d0",
                "[{point}] delegated undo lost across crash"
            );
        }
    }

    /// Regression companion for the LSN-desync bug at the integration
    /// level: a failed append must leave the next successful append (and
    /// recovery) aligned. The unit-level regression lives in the log
    /// module; this exercises it through the whole engine.
    #[test]
    fn failed_append_does_not_desync_recovery() {
        let dir = TempDir::new("bug1-it");
        let (config, faults) = faulted_config(&dir);
        let (oa, ob);
        {
            let (db, _) = Database::open(config.clone()).unwrap();
            oa = db.new_oid();
            ob = db.new_oid();
            let v = b"first".to_vec();
            assert!(db.run(move |ctx| ctx.write(oa, v)).unwrap());
            // one doomed transaction: its Begin record fails to append
            faults.arm(
                asset::storage::failpoints::LOG_APPEND,
                Trigger::Once,
                FaultAction::Error,
            );
            let t = db
                .initiate(move |ctx| ctx.write(oa, b"never".to_vec()))
                .unwrap();
            assert!(db.begin(t).is_err(), "injected append failure");
            let _ = db.abort(t);
            // the log must still be perfectly usable afterwards
            let v = b"second".to_vec();
            assert!(db.run(move |ctx| ctx.write(ob, v)).unwrap());
        }
        faults.reset();
        let (db, report) = Database::open(config).unwrap();
        assert_eq!(report.winners, 2, "both committed txns must replay");
        assert_eq!(db.peek(oa).unwrap().unwrap(), b"first");
        assert_eq!(db.peek(ob).unwrap().unwrap(), b"second");
    }
}

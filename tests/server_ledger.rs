//! End-to-end tests of the network server + wire client against the
//! money-ledger workload: conservation under concurrent clients, wire
//! error taxonomy, and (with `--features faults`) the regression that a
//! commit-point failure surfaces as `ERR_COMMIT_AMBIGUOUS` — not as a
//! generic error or a clean abort (DESIGN.md §13.4).

use asset::client::{Client, TxnFate};
use asset::server::protocol::{opcode, status, Frame};
use asset::server::AssetServer;
use asset::{Config, Database};
use std::time::Duration;

fn spawn_server(config: Config) -> AssetServer {
    let (db, _) = Database::open(config).expect("open database");
    AssetServer::spawn(db, "127.0.0.1:0").expect("bind server")
}

fn connect(s: &AssetServer) -> Client {
    Client::connect(&s.local_addr().to_string()).expect("connect")
}

fn test_config() -> Config {
    Config::in_memory()
        .with_exec_workers(4)
        .with_commit_flush_window(Duration::from_micros(200))
}

/// Tiny deterministic PRNG (xorshift64*), enough to pick account pairs.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn concurrent_clients_conserve_money() {
    const CLIENTS: usize = 8;
    const TRANSFERS: usize = 40;
    const ACCOUNTS: u64 = 64;
    const INITIAL: i64 = 1_000;

    let server = spawn_server(test_config());
    let mut admin = connect(&server);
    let (first, n) = admin.mint(ACCOUNTS, INITIAL).unwrap();
    assert_eq!(n, ACCOUNTS);

    let addr = server.local_addr().to_string();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("worker connect");
                let mut rng = Rng(0x9E37_79B9 + c as u64);
                let (mut committed, mut aborted) = (0u64, 0u64);
                for _ in 0..TRANSFERS {
                    // distinct accounts: a self-transfer is a client-side
                    // no-op and would not reach the server's counters
                    let a = rng.next() % ACCOUNTS;
                    let b = (a + 1 + rng.next() % (ACCOUNTS - 1)) % ACCOUNTS;
                    let (from, to) = (first + a, first + b);
                    let amount = (rng.next() % 50) as i64;
                    match client.transfer(from, to, amount).expect("transfer") {
                        TxnFate::Committed => committed += 1,
                        // deadlock victims and upgrade races abort
                        // cleanly; the movement simply did not happen
                        TxnFate::Aborted(_) | TxnFate::Insufficient => aborted += 1,
                        TxnFate::Ambiguous => panic!("ambiguity without faults"),
                    }
                }
                (committed, aborted)
            })
        })
        .collect();
    let mut committed = 0;
    for h in handles {
        committed += h.join().expect("worker").0;
    }
    assert!(committed > 0, "no transfer committed");

    let (sum, present) = admin.sum(first, ACCOUNTS).unwrap();
    assert_eq!(present, ACCOUNTS);
    assert_eq!(
        sum,
        ACCOUNTS as i64 * INITIAL,
        "conservation of money violated"
    );
    let stats = admin.stats().unwrap();
    assert!(stats.committed >= committed);
    server.shutdown();
    server.join();
}

/// Regression (PR 8): `SUM` used to loop `peek` per account — a
/// lock-free point read per object — so a transfer could move money
/// between the two peeks and the scan would observe a total that never
/// existed. `SUM` now runs as one server-side read transaction; every
/// snapshot it returns must show *exact* conservation even while a
/// transfer storm is in full flight.
#[test]
fn sum_is_a_consistent_snapshot_under_a_transfer_storm() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const WRITERS: usize = 6;
    const ACCOUNTS: u64 = 32;
    const INITIAL: i64 = 500;
    const SNAPSHOTS: usize = 25;

    let server = spawn_server(test_config());
    let mut admin = connect(&server);
    let (first, _) = admin.mint(ACCOUNTS, INITIAL).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let addr = server.local_addr().to_string();
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("writer connect");
                let mut rng = Rng(0xDEAD_BEEF + w as u64);
                while !stop.load(Ordering::Relaxed) {
                    let a = rng.next() % ACCOUNTS;
                    let b = (a + 1 + rng.next() % (ACCOUNTS - 1)) % ACCOUNTS;
                    let amount = (rng.next() % 100) as i64;
                    // aborts (deadlock victims) are fine — they move
                    // nothing; only a torn observation would be a bug
                    let _ = client
                        .transfer(first + a, first + b, amount)
                        .expect("transfer");
                }
            })
        })
        .collect();

    // every snapshot, mid-storm, shows the exact total
    for i in 0..SNAPSHOTS {
        let (sum, present) = admin.sum(first, ACCOUNTS).unwrap();
        assert_eq!(present, ACCOUNTS, "snapshot {i} lost accounts");
        assert_eq!(
            sum,
            ACCOUNTS as i64 * INITIAL,
            "snapshot {i} observed a torn (non-transactional) total"
        );
    }

    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer");
    }
    server.shutdown();
    server.join();
}

/// Regression (PR 8): SHUTDOWN used to race live sessions — a parked
/// session transaction could outlive the accept loop and leak its
/// locks. Shutting down under a herd of active connections (some with
/// open, lock-holding transactions; some parked mid-pipeline) must
/// drain deterministically: `join` returns, and every lock is released
/// so a direct user of the same database can immediately write the very
/// objects the dead sessions had locked.
#[test]
fn shutdown_under_active_connections_leaks_no_locks() {
    const CONNS: usize = 16;

    let config = test_config().with_lock_timeout(Some(Duration::from_secs(2)));
    let (db, _) = Database::open(config).expect("open database");
    let server = AssetServer::spawn(db.clone(), "127.0.0.1:0").expect("bind server");

    let mut admin = connect(&server);
    let (first, _) = admin.mint(CONNS as u64, 10).unwrap();

    // 16 live sessions, each holding an X lock on its own account via
    // an open (uncommitted) transaction
    let mut sessions = Vec::new();
    for i in 0..CONNS {
        let mut c = connect(&server);
        let t = c.begin().unwrap();
        c.write(t, first + i as u64, &99i64.to_le_bytes()).unwrap();
        sessions.push((c, t));
    }

    // shutdown races all of them; join must not hang
    server.shutdown();
    server.join();

    // every session's lock must be gone: a direct transaction can lock
    // and write all 16 accounts well inside the 2 s lock timeout
    let committed = db
        .run(move |ctx| {
            for i in 0..CONNS as u64 {
                ctx.write(asset::Oid(first + i), 7i64.to_le_bytes().to_vec())?;
            }
            Ok(())
        })
        .expect("post-shutdown transaction");
    assert!(committed, "post-shutdown writer must not be a victim");

    // and none of the aborted sessions' dirty writes survived
    for i in 0..CONNS as u64 {
        let v = db.peek(asset::Oid(first + i)).unwrap().unwrap();
        assert_eq!(
            i64::from_le_bytes(v.try_into().unwrap()),
            7,
            "session writes must be rolled back, then overwritten by ours"
        );
    }
    drop(sessions); // keep the TCP connections alive through shutdown
}

#[test]
fn wire_error_taxonomy() {
    let server = spawn_server(test_config());
    let mut c = connect(&server);

    // unknown opcode
    c.send(0x6E, Vec::new()).unwrap();
    let resp = c.recv().unwrap();
    assert_eq!(resp.status, status::ERR_BAD_OPCODE);

    // truncated body
    c.send(opcode::READ, vec![1, 2, 3]).unwrap();
    assert_eq!(c.recv().unwrap().status, status::ERR_MALFORMED);

    // reserved parent tid
    c.send(opcode::BEGIN, 7u64.to_le_bytes().to_vec()).unwrap();
    assert_eq!(c.recv().unwrap().status, status::ERR_MALFORMED);

    // operating on a transaction this session never opened
    let mut body = 424_242u64.to_le_bytes().to_vec();
    body.extend_from_slice(&1u64.to_le_bytes());
    c.send(opcode::READ, body).unwrap();
    assert_eq!(c.recv().unwrap().status, status::ERR_TXN_NOT_FOUND);

    // double-commit: the first consumes the session transaction
    let tid = c.begin().unwrap();
    assert_eq!(c.commit(tid).unwrap(), TxnFate::Committed);
    c.send(opcode::COMMIT, tid.to_le_bytes().to_vec()).unwrap();
    assert_eq!(c.recv().unwrap().status, status::ERR_TXN_NOT_FOUND);

    server.shutdown();
    server.join();
}

#[test]
fn delegate_permit_and_form_dependency_over_the_wire() {
    let server = spawn_server(test_config());
    let mut c = connect(&server);
    let oid = c.new_oid().unwrap();

    // t1 writes, then delegates everything to t2; t2 commits and the
    // write survives even though t1 aborts.
    let t1 = c.begin().unwrap();
    let t2 = c.begin().unwrap();
    c.write(t1, oid, b"delegated").unwrap();
    c.delegate(t1, t2, None).unwrap();
    c.abort(t1).unwrap();
    assert_eq!(c.commit(t2).unwrap(), TxnFate::Committed);
    assert_eq!(
        c.read_i64_committed(oid).unwrap(),
        None,
        "value is not an i64 counter"
    );
    let t3 = c.begin().unwrap();
    assert_eq!(c.read(t3, oid).unwrap().as_deref(), Some(&b"delegated"[..]));
    c.abort(t3).unwrap();

    // permit + form_dependency round-trip (wildcard grantee, CD edge)
    let t4 = c.begin().unwrap();
    let t5 = c.begin().unwrap();
    c.permit(t4, None, Some(&[oid]), 3).unwrap();
    c.form_dependency(1, t5, t4).unwrap();
    // a cycle is refused with its own status
    match c.form_dependency(1, t4, t5) {
        Err(asset::client::ClientError::Server { status: s, .. }) => {
            assert_eq!(s, status::ERR_DEPENDENCY_CYCLE)
        }
        other => panic!("expected dependency-cycle, got {other:?}"),
    }
    c.abort(t5).unwrap();
    c.abort(t4).unwrap();

    server.shutdown();
    server.join();
}

#[test]
fn example_frames_match_the_spec_on_a_live_connection() {
    // DESIGN.md §13.5's BEGIN example, pushed through a real server:
    // the request bytes are accepted and the response has the documented
    // shape (status OK + 8-byte tid).
    let server = spawn_server(test_config());
    let mut c = connect(&server);
    let reqid = c.send(opcode::BEGIN, 0u64.to_le_bytes().to_vec()).unwrap();
    let frame = Frame::new(opcode::BEGIN, reqid, 0u64.to_le_bytes().to_vec());
    assert_eq!(frame.encode()[4..6], [0x01, 0x10], "version + opcode bytes");
    let resp = c.recv().unwrap();
    assert_eq!(resp.status, status::OK);
    assert_eq!(resp.payload.len(), 8, "OK payload is one u64 tid");
    let tid = u64::from_le_bytes(resp.payload.try_into().unwrap());
    c.abort(tid).unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn oversized_mint_and_sum_are_rejected_before_any_work() {
    use asset::server::protocol::{MAX_MINT_COUNT, MAX_SUM_COUNT};
    let server = spawn_server(test_config());
    let mut c = connect(&server);

    // a 16-byte frame must not be able to make the server allocate or
    // scan without bound (remote-DoS regression)
    let mut body = (MAX_MINT_COUNT + 1).to_le_bytes().to_vec();
    body.extend_from_slice(&1i64.to_le_bytes());
    c.send(opcode::MINT, body).unwrap();
    assert_eq!(c.recv().unwrap().status, status::ERR_RESOURCE_EXHAUSTED);

    let mut body = 0u64.to_le_bytes().to_vec();
    body.extend_from_slice(&(MAX_SUM_COUNT + 1).to_le_bytes());
    c.send(opcode::SUM, body).unwrap();
    assert_eq!(c.recv().unwrap().status, status::ERR_RESOURCE_EXHAUSTED);

    // nothing was created by the rejected MINT, and within-cap
    // requests still work
    let (first, n) = c.mint(4, 5).unwrap();
    assert_eq!(n, 4);
    let (sum, present) = c.sum(first, 4).unwrap();
    assert_eq!((sum, present), (20, 4));
    server.shutdown();
    server.join();
}

/// Commit-point failures must surface as `ERR_COMMIT_AMBIGUOUS`, never
/// as a clean abort — a client that saw `ERR_COMMIT_ABORTED` would
/// blindly retry and double-apply if the record had in fact reached
/// stable storage.
#[cfg(feature = "faults")]
mod ambiguity {
    use super::*;
    use asset::faults::{FaultAction, FaultRegistry, Trigger};
    use std::sync::Arc;

    #[test]
    fn commit_point_failure_maps_to_the_ambiguous_wire_status() {
        let dir =
            std::env::temp_dir().join(format!("asset-server-ambiguity-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = Arc::new(FaultRegistry::new());
        let config = Config::on_disk(&dir)
            .with_exec_workers(2)
            .with_commit_flush_window(Duration::from_micros(200))
            .with_faults(Arc::clone(&faults));
        let server = spawn_server(config);
        let mut c = connect(&server);
        let (first, _) = c.mint(4, 100).unwrap();

        // the next flush window fails at its sync: every commit in it
        // is ambiguous
        faults.arm(
            asset::storage::failpoints::FLUSH_WINDOW_SYNC,
            Trigger::Once,
            FaultAction::Error,
        );
        let tid = c.begin().unwrap();
        c.write(tid, first, &25i64.to_le_bytes()).unwrap();
        c.send(opcode::COMMIT, tid.to_le_bytes().to_vec()).unwrap();
        let resp = c.recv().unwrap();
        assert_eq!(
            resp.status,
            status::ERR_COMMIT_AMBIGUOUS,
            "commit-point failure must be distinguishable from a clean abort, got {}",
            asset::server::protocol::status_name(resp.status)
        );

        // a clean abort still reports ERR_COMMIT_ABORTED, not ambiguous
        let t2 = c.begin().unwrap();
        c.write(t2, first + 1, &1i64.to_le_bytes()).unwrap();
        c.abort(t2).unwrap();
        c.send(opcode::COMMIT, t2.to_le_bytes().to_vec()).unwrap();
        assert_eq!(c.recv().unwrap().status, status::ERR_TXN_NOT_FOUND);

        // the fault was Once: the system keeps committing afterwards,
        // and transfers conserve even across the ambiguous commit
        assert_eq!(
            c.transfer(first + 1, first + 2, 40).unwrap(),
            TxnFate::Committed
        );
        let (sum, present) = c.sum(first, 4).unwrap();
        assert_eq!(present, 4);
        assert_eq!(sum, 400, "pure movements conserve the total");

        // the ambiguity was surfaced on the wire (ERR_COMMIT_AMBIGUOUS
        // above), so the session drain must NOT have found an
        // unreported ambiguous transaction — `session_drain_ambiguous`
        // counts only fates that would otherwise have been swallowed
        // (DESIGN.md §13.4; asset-verify R7)
        drop(c);
        server.shutdown();
        let drained = server
            .database()
            .obs()
            .counters
            .snapshot()
            .session_drain_ambiguous;
        assert_eq!(drained, 0, "wire-surfaced fates are not drain findings");
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A MINT that fails between chunks must not leave the earlier,
    /// already-committed chunks behind as funded orphan accounts — the
    /// server compensates by deleting them (DESIGN.md §13.3).
    #[test]
    fn failed_mint_rolls_back_committed_chunks() {
        let dir = std::env::temp_dir().join(format!("asset-server-mint-rb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = Arc::new(FaultRegistry::new());
        let config = Config::on_disk(&dir)
            .with_exec_workers(2)
            .with_commit_flush_window(Duration::from_micros(200))
            .with_faults(Arc::clone(&faults));
        let server = spawn_server(config);
        let mut c = connect(&server);

        // MINT is chunked at 10k objects per transaction, so 25k takes
        // three; fail the second chunk's flush window
        faults.arm(
            asset::storage::failpoints::FLUSH_WINDOW_SYNC,
            Trigger::Nth(2),
            FaultAction::Error,
        );
        assert!(c.mint(25_000, 7).is_err(), "mid-mint failure surfaces");

        // the first chunk had committed; the compensation deleted it
        let (sum, present) = c.sum(0, 40_000).unwrap();
        assert_eq!(present, 0, "a failed MINT leaves no funded orphans");
        assert_eq!(sum, 0);

        // the server stays healthy: a fresh mint works end to end
        let (first, n) = c.mint(8, 3).unwrap();
        assert_eq!(n, 8);
        assert_eq!(c.sum(first, 8).unwrap(), (24, 8));

        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Integration tests: each §3 construction of the paper, end to end,
//! through the public facade crate.

use asset::models::workflow::travel::{run_x_conference, TravelWorld};
use asset::models::{
    join, required_subtransaction, run_atomic, run_contingent, run_distributed, run_nested, split,
    CoopSession, Coupling, Saga, SagaOutcome, WorkflowOutcome,
};
use asset::{Database, DepType, ObSet, OpSet, TxnCtx, TxnStatus};

#[test]
fn s311_atomic_transaction() {
    let db = Database::in_memory();
    let oid = db.new_oid();
    assert!(run_atomic(&db, move |ctx| ctx.write(oid, b"atomic".to_vec())).unwrap());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"atomic");
}

#[test]
fn s312_distributed_transaction() {
    let db = Database::in_memory();
    let oids: Vec<_> = (0..4).map(|_| db.new_oid()).collect();
    let components = oids
        .iter()
        .map(|&oid| {
            Box::new(move |ctx: &TxnCtx| ctx.write(oid, b"part".to_vec()))
                as Box<dyn FnOnce(&TxnCtx) -> asset::Result<()> + Send>
        })
        .collect();
    assert!(run_distributed(&db, components).unwrap());
    for oid in oids {
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"part");
    }
}

#[test]
fn s313_contingent_transaction() {
    let db = Database::in_memory();
    let oid = db.new_oid();
    let chosen = run_contingent(
        &db,
        vec![
            Box::new(|ctx: &TxnCtx| ctx.abort_self::<()>().map(|_| ())),
            Box::new(move |ctx: &TxnCtx| ctx.write(oid, b"plan-b".to_vec())),
        ],
    )
    .unwrap();
    assert_eq!(chosen, Some(1));
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"plan-b");
}

#[test]
fn s314_nested_transaction_trip() {
    let db = Database::in_memory();
    let airline = db.new_oid();
    let hotel = db.new_oid();
    // success path
    let committed = run_nested(&db, move |ctx| {
        required_subtransaction(ctx, move |c| c.write(airline, b"DL-42".to_vec()))?;
        required_subtransaction(ctx, move |c| c.write(hotel, b"Equator".to_vec()))?;
        Ok(())
    })
    .unwrap();
    assert!(committed);
    assert_eq!(db.peek(airline).unwrap().unwrap(), b"DL-42");
    assert_eq!(db.peek(hotel).unwrap().unwrap(), b"Equator");
}

#[test]
fn s315_split_and_join() {
    let db = Database::in_memory();
    let released_early = db.new_oid();
    let held = db.new_oid();
    let committed = run_atomic(&db, move |ctx| {
        ctx.write(released_early, b"publish me now".to_vec())?;
        ctx.write(held, b"publish me at the end".to_vec())?;
        let s = split(ctx, ObSet::one(released_early), |_| Ok(()))?;
        ctx.commit(s)?; // the split's commit releases the early object
        Ok(())
    })
    .unwrap();
    assert!(committed);
    assert_eq!(db.peek(released_early).unwrap().unwrap(), b"publish me now");
    assert_eq!(db.peek(held).unwrap().unwrap(), b"publish me at the end");

    // join path
    let target = db.new_oid();
    let committed = run_atomic(&db, move |ctx| {
        let me = ctx.id();
        let s = split(ctx, ObSet::empty(), move |c| {
            c.write(target, b"joined".to_vec())
        })?;
        assert!(join(ctx, s, me)?);
        Ok(())
    })
    .unwrap();
    assert!(committed);
    assert_eq!(db.peek(target).unwrap().unwrap(), b"joined");
}

#[test]
fn s316_saga_success_and_compensation() {
    let db = Database::in_memory();
    let ledger = db.new_oid();
    assert!(db
        .run(move |ctx| ctx.write(ledger, 0u64.to_le_bytes().to_vec()))
        .unwrap());
    let add = move |delta: i64| {
        move |ctx: &TxnCtx| {
            ctx.update(ledger, move |cur| {
                let v = u64::from_le_bytes(cur.unwrap().try_into().unwrap());
                ((v as i64 + delta) as u64).to_le_bytes().to_vec()
            })
        }
    };
    // failing saga: two committed steps then failure → full compensation
    let saga = Saga::new()
        .step("s1", add(10), add(-10))
        .step("s2", add(5), add(-5))
        .final_step("boom", |ctx: &TxnCtx| ctx.abort_self::<()>().map(|_| ()));
    let (outcome, trace) = saga.run(&db).unwrap();
    assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 2 });
    assert_eq!(trace.events, vec!["s1", "s2", "~s2", "~s1"]);
    let v = u64::from_le_bytes(db.peek(ledger).unwrap().unwrap().try_into().unwrap());
    assert_eq!(v, 0);
}

#[test]
fn s321_cooperating_transactions() {
    let db = Database::in_memory();
    let shared = db.new_oid();
    assert!(db
        .run(move |ctx| ctx.write(shared, b"base".to_vec()))
        .unwrap());
    let t1 = db
        .initiate(move |ctx| ctx.write(shared, b"t1's take".to_vec()))
        .unwrap();
    let t2 = db
        .initiate(move |ctx| {
            ctx.update(shared, |cur| {
                let mut v = cur.unwrap();
                v.extend_from_slice(b" + t2's touch");
                v
            })
        })
        .unwrap();
    CoopSession::establish(&db, t1, t2, ObSet::one(shared), Coupling::Ordered).unwrap();
    db.begin(t1).unwrap();
    db.wait(t1).unwrap();
    db.begin(t2).unwrap();
    assert!(db.commit(t1).unwrap());
    assert!(db.commit(t2).unwrap());
    assert_eq!(db.peek(shared).unwrap().unwrap(), b"t1's take + t2's touch");
}

#[test]
fn s322_cursor_stability() {
    use asset::models::Cursor;
    let db = Database::in_memory();
    let oids: Vec<_> = (0..3).map(|_| db.new_oid()).collect();
    let o2 = oids.clone();
    assert!(db
        .run(move |ctx| {
            for oid in &o2 {
                ctx.write(*oid, b"rec".to_vec())?;
            }
            Ok(())
        })
        .unwrap());
    let first = oids[0];
    let dbc = db.clone();
    let committed = run_atomic(&db, move |ctx| {
        let mut cursor = Cursor::open(ctx, oids.clone());
        cursor.next()?; // releases record 0 to writers
                        // an independent writer gets through immediately
        assert!(run_atomic(&dbc, move |c| c.write(first, b"overwritten".to_vec()))?);
        Ok(())
    })
    .unwrap();
    assert!(committed);
    assert_eq!(db.peek(first).unwrap().unwrap(), b"overwritten");
}

#[test]
fn s323_workflow_appendix() {
    let db = Database::in_memory();
    let world = TravelWorld::setup(&db, 1, 1, 1, 1, 1, 1).unwrap();
    let (outcome, results) = run_x_conference(&db, &world).unwrap();
    assert_eq!(outcome, WorkflowOutcome::Completed);
    assert_eq!(results[0].chosen.as_deref(), Some("Delta"));
}

#[test]
fn primitives_compose_across_models() {
    // a workflow step that is itself a nested transaction with a
    // cooperative inner pair — the models compose because they all reduce
    // to the same primitives
    let db = Database::in_memory();
    let doc = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(doc, Vec::new())).unwrap());
    let committed = run_nested(&db, move |ctx| {
        required_subtransaction(ctx, move |c| {
            c.update(doc, |cur| {
                let mut v = cur.unwrap();
                v.push(b'a');
                v
            })
        })?;
        required_subtransaction(ctx, move |c| {
            c.update(doc, |cur| {
                let mut v = cur.unwrap();
                v.push(b'b');
                v
            })
        })?;
        Ok(())
    })
    .unwrap();
    assert!(committed);
    assert_eq!(db.peek(doc).unwrap().unwrap(), b"ab");
}

#[test]
fn paper_s2_example_cooperation_with_cd() {
    // §3.2.1's exact recipe: form_dependency(CD, ti, tj); permit(ti, tj, ob, op)
    let db = Database::in_memory();
    let ob = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(ob, b"v".to_vec())).unwrap());
    let ti = db
        .initiate(move |ctx| {
            ctx.write(ob, b"ti".to_vec())?;
            std::thread::sleep(std::time::Duration::from_millis(50));
            Ok(())
        })
        .unwrap();
    let tj = db
        .initiate(move |ctx| {
            ctx.write(ob, b"tj".to_vec())?;
            Ok(())
        })
        .unwrap();
    db.form_dependency(DepType::CD, ti, tj).unwrap();
    db.permit(ti, Some(tj), ObSet::one(ob), OpSet::ALL).unwrap();
    db.begin(ti).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    db.begin(tj).unwrap();
    db.wait(tj).unwrap();
    assert!(db.commit(ti).unwrap());
    assert!(db.commit(tj).unwrap());
    assert_eq!(db.status(tj).unwrap(), TxnStatus::Committed);
}

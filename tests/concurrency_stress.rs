//! Concurrency stress tests: many threads, real contention, invariants
//! that only hold if locking, undo and the commit protocol are correct.

use asset::models::run_atomic_retrying;
use asset::{Config, Database, Oid, TxnCtx};
use std::sync::Arc;
use std::time::Duration;

fn balance(db: &Database, acct: Oid) -> i64 {
    i64::from_le_bytes(db.peek(acct).unwrap().unwrap().try_into().unwrap())
}

fn setup_accounts(db: &Database, n: usize, initial: i64) -> Vec<Oid> {
    let oids: Vec<Oid> = (0..n).map(|_| db.new_oid()).collect();
    let o2 = oids.clone();
    assert!(db
        .run(move |ctx| {
            for oid in &o2 {
                ctx.write(*oid, initial.to_le_bytes().to_vec())?;
            }
            Ok(())
        })
        .unwrap());
    oids
}

/// Random transfers between accounts, run from many threads, with
/// deadlock-victim retry. Total balance must be conserved — the classic
/// serializability smoke invariant.
#[test]
fn bank_transfers_conserve_total() {
    let db =
        Database::open(Config::in_memory().with_lock_timeout(Some(Duration::from_millis(200))))
            .unwrap()
            .0;
    let n_accounts = 8;
    let initial = 1_000i64;
    let accounts = Arc::new(setup_accounts(&db, n_accounts, initial));

    let threads = 6;
    let transfers_per_thread = 40;
    let mut handles = vec![];
    for tno in 0..threads {
        let db = db.clone();
        let accounts = Arc::clone(&accounts);
        handles.push(std::thread::spawn(move || {
            // cheap deterministic PRNG per thread
            let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(tno as u64 + 1);
            let mut rand = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..transfers_per_thread {
                let from = accounts[(rand() % n_accounts as u64) as usize];
                let to = accounts[(rand() % n_accounts as u64) as usize];
                if from == to {
                    continue;
                }
                let amount = (rand() % 50) as i64;
                // lock accounts in oid order to reduce (not eliminate)
                // deadlocks; retries absorb the rest
                let (first, second) = if from < to { (from, to) } else { (to, from) };
                let outcome = run_atomic_retrying(
                    &db,
                    Arc::new(move |ctx: &TxnCtx| {
                        let f = i64::from_le_bytes(ctx.read(first)?.unwrap().try_into().unwrap());
                        let s = i64::from_le_bytes(ctx.read(second)?.unwrap().try_into().unwrap());
                        let (nf, ns) = if first == from {
                            (f - amount, s + amount)
                        } else {
                            (f + amount, s - amount)
                        };
                        ctx.write(first, nf.to_le_bytes().to_vec())?;
                        ctx.write(second, ns.to_le_bytes().to_vec())?;
                        Ok(())
                    }),
                    20,
                )
                .unwrap();
                let _ = outcome;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: i64 = accounts.iter().map(|a| balance(&db, *a)).sum();
    assert_eq!(
        total,
        n_accounts as i64 * initial,
        "money conserved under contention"
    );
}

/// Increment contention on a single hot object: every committed increment
/// must be visible (no lost updates under exclusive locking).
#[test]
fn hot_counter_no_lost_updates() {
    let db = Database::open(Config::in_memory().with_lock_timeout(Some(Duration::from_secs(5))))
        .unwrap()
        .0;
    let counter = setup_accounts(&db, 1, 0)[0];
    let threads = 8;
    let increments = 25;
    let mut handles = vec![];
    for _ in 0..threads {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..increments {
                let out = run_atomic_retrying(
                    &db,
                    Arc::new(move |ctx: &TxnCtx| {
                        // ctx.update takes the write lock up front, so there
                        // is no read→write upgrade and no upgrade deadlock
                        ctx.update(counter, |cur| {
                            let v = i64::from_le_bytes(cur.unwrap().try_into().unwrap());
                            (v + 1).to_le_bytes().to_vec()
                        })
                    }),
                    50,
                )
                .unwrap();
                assert!(
                    matches!(out, asset::models::RetryOutcome::Committed { .. }),
                    "write-first increments serialize cleanly: {out:?}"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(balance(&db, counter), (threads * increments) as i64);
}

/// Aborted transactions under concurrency leave no partial effects.
#[test]
fn aborts_leave_no_partial_writes() {
    let db = Database::in_memory();
    let pair = setup_accounts(&db, 2, 100);
    let (a, b) = (pair[0], pair[1]);
    let mut handles = vec![];
    for i in 0..6 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for j in 0..20 {
                let fail = (i + j) % 3 == 0;
                let _ = run_atomic_retrying(
                    &db,
                    Arc::new(move |ctx: &TxnCtx| {
                        let va = i64::from_le_bytes(ctx.read(a)?.unwrap().try_into().unwrap());
                        ctx.write(a, (va - 7).to_le_bytes().to_vec())?;
                        if fail {
                            return ctx.abort_self();
                        }
                        let vb = i64::from_le_bytes(ctx.read(b)?.unwrap().try_into().unwrap());
                        ctx.write(b, (vb + 7).to_le_bytes().to_vec())
                    }),
                    30,
                )
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        balance(&db, a) + balance(&db, b),
        200,
        "either both writes of a transfer landed or neither"
    );
}

/// Sagas hammered concurrently: the inventory counter never goes negative
/// and every committed saga holds exactly one unit.
#[test]
fn concurrent_sagas_respect_inventory() {
    use asset::models::{Saga, SagaOutcome};
    let db = Database::in_memory();
    let stock = setup_accounts(&db, 1, 10)[0];
    let sold = Arc::new(std::sync::atomic::AtomicI64::new(0));
    let mut handles = vec![];
    for _ in 0..4 {
        let db = db.clone();
        let sold = Arc::clone(&sold);
        handles.push(std::thread::spawn(move || {
            for round in 0..8u32 {
                let reserve = move |ctx: &TxnCtx| {
                    let v = i64::from_le_bytes(ctx.read(stock)?.unwrap().try_into().unwrap());
                    if v == 0 {
                        return ctx.abort_self();
                    }
                    ctx.write(stock, (v - 1).to_le_bytes().to_vec())
                };
                let release = move |ctx: &TxnCtx| {
                    let v = i64::from_le_bytes(ctx.read(stock)?.unwrap().try_into().unwrap());
                    ctx.write(stock, (v + 1).to_le_bytes().to_vec())
                };
                // half the sagas fail at the confirm step, forcing
                // compensation of the committed reservation
                let fail = round % 2 == 0;
                let saga = Saga::new().step("reserve", reserve, release).final_step(
                    "confirm",
                    move |ctx: &TxnCtx| {
                        if fail {
                            ctx.abort_self::<()>().map(|_| ())
                        } else {
                            Ok(())
                        }
                    },
                );
                match saga.run(&db).unwrap().0 {
                    SagaOutcome::Committed => {
                        sold.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                    SagaOutcome::Compensated { .. } => {}
                }
                let current = balance(&db, stock);
                assert!(current >= 0, "inventory never negative, saw {current}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let final_stock = balance(&db, stock);
    let sold = sold.load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(
        final_stock + sold,
        10,
        "units conserved: stock {final_stock} + sold {sold}"
    );
}

/// Transaction table hygiene: thousands of short transactions with
/// periodic retirement do not exhaust the configured cap.
#[test]
fn churn_with_retirement() {
    let db = Database::open(Config::in_memory().with_max_transactions(64))
        .unwrap()
        .0;
    let oid = setup_accounts(&db, 1, 0)[0];
    for batch in 0..20 {
        for _ in 0..32 {
            assert!(db
                .run(move |ctx| {
                    let v = i64::from_le_bytes(ctx.read(oid)?.unwrap().try_into().unwrap());
                    ctx.write(oid, (v + 1).to_le_bytes().to_vec())
                })
                .unwrap());
        }
        let retired = db.retire_terminated();
        assert!(retired >= 32, "batch {batch}: retired {retired}");
    }
    assert_eq!(balance(&db, oid), 20 * 32);
}

//! The four crash-matrix workload shapes (tests/crash_matrix.rs), run
//! fault-free with tracing enabled: the causal graph reconstructed from
//! the event ring must match the known ground truth of each shape —
//! delegation edges follow the delegatee, GC groups share one commit
//! flow, and permit chains carry the `permits_across` depth the lock
//! manager reported.

use asset::obs::EventKind;
use asset::trace::{CausalGraph, EdgeKind, Outcome};
use asset::{Database, DepType, ObSet, OpSet};

fn traced_db() -> Database {
    let db = Database::in_memory();
    db.obs().enable_tracing(16384);
    db
}

/// Workload 1 (atomic): one transaction, one committed track, a
/// single-member commit group, no causal edges.
#[test]
fn atomic_workload_reconstructs_one_committed_track() {
    let db = traced_db();
    let o = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(o, b"a1".to_vec())).unwrap());

    let g = CausalGraph::from_events(&db.obs().trace());
    let committed: Vec<_> = g
        .tracks
        .values()
        .filter(|t| t.outcome == Outcome::Committed)
        .collect();
    assert_eq!(committed.len(), 1);
    let t = committed[0];
    assert!(t.begin_ns.is_some() && t.end_ns.is_some());
    assert!(t.begin_ns <= t.end_ns);
    assert_eq!(g.commit_groups.len(), 1);
    assert_eq!(g.commit_groups[0].members, vec![t.tid]);
    assert!(g.edges.is_empty(), "an atomic run has no causal edges");
}

/// Workload 2 (GC group commit): one commit call terminates the whole
/// component — the graph shows one commit group containing every member
/// and a group-commit flow from the committer to each other member.
#[test]
fn gc_workload_shares_one_commit_flow() {
    let db = traced_db();
    let (a, b) = (db.new_oid(), db.new_oid());
    let t1 = db
        .initiate(move |ctx| ctx.write(a, b"g1".to_vec()))
        .unwrap();
    let t2 = db
        .initiate(move |ctx| ctx.write(b, b"g2".to_vec()))
        .unwrap();
    db.form_dependency(DepType::GC, t1, t2).unwrap();
    db.begin_many(&[t1, t2]).unwrap();
    assert!(db.commit(t1).unwrap(), "commits the whole group");

    let g = CausalGraph::from_events(&db.obs().trace());
    assert_eq!(g.tracks[&t1].outcome, Outcome::Committed);
    assert_eq!(g.tracks[&t2].outcome, Outcome::Committed);

    // exactly one commit group, containing both members
    let group: Vec<_> = g
        .commit_groups
        .iter()
        .filter(|cg| cg.members.len() > 1)
        .collect();
    assert_eq!(group.len(), 1, "one group commit");
    let mut members = group[0].members.clone();
    members.sort_unstable();
    let mut expect = vec![t1, t2];
    expect.sort_unstable();
    assert_eq!(members, expect);

    // both members share the committer's single commit flow (timestamp)
    assert_eq!(g.tracks[&t1].end_ns, g.tracks[&t2].end_ns);
    let flows: Vec<_> = g
        .edges
        .iter()
        .filter(|e| e.kind == EdgeKind::CommitGroup)
        .collect();
    assert_eq!(flows.len(), 1, "one fan-out edge per non-committer member");
    // plus the GC dependency edge itself
    assert_eq!(g.edges_labeled("dep-gc").len(), 1);
}

/// Workload 3 (saga): s0 commits, s1 aborts, the compensation commits
/// after the abort.
#[test]
fn saga_workload_orders_compensation_after_abort() {
    let db = traced_db();
    let o = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(o, b"s0".to_vec())).unwrap());
    let t = db
        .initiate(move |ctx| {
            ctx.write(o, b"s1".to_vec())?;
            ctx.abort_self::<()>().map(|_| ())
        })
        .unwrap();
    db.begin(t).unwrap();
    assert!(!db.commit(t).unwrap(), "failing step aborts");
    assert!(db.run(move |ctx| ctx.write(o, b"comp".to_vec())).unwrap());

    let trace = db.obs().trace();
    let g = CausalGraph::from_events(&trace);
    let committed = g
        .tracks
        .values()
        .filter(|t| t.outcome == Outcome::Committed)
        .count();
    let aborted: Vec<_> = g
        .tracks
        .values()
        .filter(|t| t.outcome == Outcome::Aborted)
        .collect();
    assert_eq!(committed, 2, "step 0 and the compensation");
    assert_eq!(aborted.len(), 1, "the failing step");
    // the aborted track rolled work back (undo milestone) and every
    // commit-flow after it is the compensation
    assert!(aborted[0].milestones.iter().any(|(_, l)| *l == "undone"));
    let abort_ns = aborted[0].end_ns.unwrap();
    let comp_commit = g.commit_groups.iter().map(|cg| cg.at_ns).max().unwrap();
    assert!(
        comp_commit >= abort_ns,
        "compensation commits after the abort"
    );
}

/// Workload 4 (delegation + permit): the delegation edge points from the
/// delegator to the delegatee, and the undo follows the delegatee — t1
/// commits nothing while t2's abort carries the rollback.
#[test]
fn delegation_workload_undo_follows_the_delegatee() {
    let db = traced_db();
    let o = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(o, b"d0".to_vec())).unwrap());

    let t1 = db
        .initiate(move |ctx| ctx.write(o, b"d1".to_vec()))
        .unwrap();
    db.begin(t1).unwrap();
    assert!(db.wait(t1).unwrap());
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.permit(t1, Some(t2), ObSet::one(o), OpSet::ALL).unwrap();
    db.delegate(t1, t2, None).unwrap();
    assert!(db.commit(t1).unwrap());
    assert!(db.abort(t2).unwrap());
    assert_eq!(db.peek(o).unwrap().unwrap(), b"d0", "baseline restored");

    let trace = db.obs().trace();
    let g = CausalGraph::from_events(&trace);

    // the delegation edge follows the delegatee
    let delegations = g.edges_labeled("delegate");
    assert_eq!(delegations.len(), 1);
    assert_eq!((delegations[0].from, delegations[0].to), (t1, t2));
    // so does the permit grant
    let permits = g.edges_labeled("permit");
    assert_eq!(permits.len(), 1);
    assert_eq!((permits[0].from, permits[0].to), (t1, t2));

    // t1 committed with nothing to undo; t2's abort carried the rollback
    assert_eq!(g.tracks[&t1].outcome, Outcome::Committed);
    assert_eq!(g.tracks[&t2].outcome, Outcome::Aborted);
    let t2_undo: u32 = trace
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TxnAbort { tid, undo_records } if tid == t2 => Some(undo_records),
            _ => None,
        })
        .sum();
    assert!(t2_undo >= 1, "delegated undo followed t2");
    // the rollback sub-span sits on t2's track, not t1's
    assert!(g.tracks[&t2]
        .spans
        .iter()
        .any(|s| s.kind.label() == "rollback"));
    assert!(!g.tracks[&t1]
        .spans
        .iter()
        .any(|s| s.kind.label() == "rollback"));
}

/// A transitive permit chain t1 → t2 → t3: when t3's conflicting write is
/// admitted, the trace carries a permit-through edge whose chain depth is
/// exactly the `permits_across` depth (2 hops) — and the introspection
/// API reports the same maximum.
#[test]
fn permit_chain_depth_matches_permits_across() {
    let db = traced_db();
    let o = db.new_oid();
    assert!(db.run(move |ctx| ctx.write(o, b"p0".to_vec())).unwrap());

    let t1 = db
        .initiate(move |ctx| ctx.write(o, b"p1".to_vec()))
        .unwrap();
    let t2 = db.initiate(|_| Ok(())).unwrap();
    let t3 = db
        .initiate(move |ctx| ctx.write(o, b"p3".to_vec()))
        .unwrap();
    db.permit(t1, Some(t2), ObSet::one(o), OpSet::ALL).unwrap();
    db.permit(t2, Some(t3), ObSet::one(o), OpSet::ALL).unwrap();
    db.begin(t1).unwrap();
    assert!(db.wait(t1).unwrap(), "t1 completed and retains its X lock");
    // t3's write conflicts with t1's retained lock; the chain admits it
    db.begin(t3).unwrap();
    assert!(db.wait(t3).unwrap(), "admitted through the two-hop chain");
    db.begin(t2).unwrap();
    assert!(db.commit(t3).unwrap());
    assert!(db.commit(t1).unwrap());
    assert!(db.commit(t2).unwrap());

    let g = CausalGraph::from_events(&db.obs().trace());
    // the permit-through edge goes holder → requester with the DFS depth
    let through: Vec<_> = g
        .edges
        .iter()
        .filter_map(|e| match e.kind {
            EdgeKind::PermitUsed { chain } => Some((e.from, e.to, chain)),
            _ => None,
        })
        .collect();
    assert!(
        through.contains(&(t1, t3, 2)),
        "t3 admitted past t1 through a 2-hop chain, got {through:?}"
    );
    assert_eq!(g.permit_chain_max(), 2);
    assert_eq!(
        db.introspect().permit_chain_max,
        2,
        "introspection reports the same permits_across depth"
    );
}

//! The crash-recovery matrix (compiled only with `--features faults`).
//!
//! Four scripted workloads — an atomic transaction, a GC group commit, a
//! saga with compensation, and a delegation/permit hand-off — each run
//! against every registered failpoint ([`asset::storage::failpoints::ALL`]
//! and [`asset::txn::failpoints::ALL`]) under three fault shapes:
//!
//! * **Crash** — process-local crash at the failpoint (unwind to the
//!   harness; the registry refuses all further durable writes, modeling
//!   a dead process);
//! * **Torn** — a prefix of the buffer reaches the file, then crash
//!   (models a torn sector on power loss);
//! * **Error** — the operation reports failure but the process lives on
//!   (models `EIO`); the workload's error paths must leave every
//!   transaction terminal and the live state in agreement with what a
//!   restart would recover.
//!
//! After each injected fault the harness resets the registry, reopens the
//! database (running recovery), and asserts the workload's invariant:
//! durably-acknowledged commits survive, losers are rolled back, GC
//! groups are all-or-nothing, delegated undo follows the delegatee, and
//! a second recovery reproduces the same state (idempotence).

#![cfg(feature = "faults")]

use asset::faults::{FaultAction, FaultRegistry, Trigger};
use asset::{storage, txn, Config, Database, DepType, ObSet, Oid, OpSet, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "asset-cm-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Every failpoint in the storage and transaction layers.
fn all_failpoints() -> Vec<&'static str> {
    storage::failpoints::ALL
        .iter()
        .chain(txn::failpoints::ALL.iter())
        .copied()
        .collect()
}

/// One cell of the matrix: a directory, a fault registry, and a config
/// wired to both. Each case is fully isolated (instance-scoped registry),
/// so cells run in parallel without cross-talk.
struct Case {
    _dir: TempDir,
    faults: Arc<FaultRegistry>,
    config: Config,
}

impl Case {
    fn new(tag: &str) -> Case {
        asset::faults::silence_crash_panics();
        let dir = TempDir::new(tag);
        let faults = Arc::new(FaultRegistry::new());
        let config = Config::on_disk(&dir.0)
            .with_lock_timeout(Some(std::time::Duration::from_secs(5)))
            .with_faults(Arc::clone(&faults));
        Case {
            _dir: dir,
            faults,
            config,
        }
    }

    fn open(&self) -> Database {
        Database::open(self.config.clone()).expect("open").0
    }

    /// Disarm everything (including a tripped crash flag) and reopen:
    /// this is the "restart after the crash" edge of the matrix.
    fn reopen_clean(&self) -> Database {
        self.faults.reset();
        self.open()
    }
}

/// Commit `val` under `oid` in its own atomic transaction, asserting
/// success. Used for fault-free baseline setup.
fn put(db: &Database, oid: Oid, val: &[u8]) {
    let v = val.to_vec();
    assert!(db.run(move |ctx| ctx.write(oid, v)).unwrap());
}

fn get(db: &Database, oid: Oid) -> Vec<u8> {
    db.peek(oid).unwrap().expect("object exists")
}

// ---------------------------------------------------------------------------
// Workload 1: a single atomic transaction.
// Invariant: the object holds either the baseline or the new value; if the
// commit was acknowledged, it MUST hold the new value.
// ---------------------------------------------------------------------------

fn atomic_sweep(action: FaultAction) {
    for point in all_failpoints() {
        let case = Case::new("w1");
        let o;
        {
            let db = case.open();
            o = db.new_oid();
            put(&db, o, b"base");
        }

        case.faults.arm(point, Trigger::Once, action);
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<bool> {
            let db = case.open();
            let t = db.initiate(move |ctx| ctx.write(o, b"new".to_vec()))?;
            db.begin(t)?;
            db.wait(t)?;
            let committed = db.commit(t)?;
            db.checkpoint()?; // exercises store/checkpoint failpoints
            Ok(committed)
        }));
        let acknowledged = matches!(&outcome, Ok(Ok(true)));

        let db = case.reopen_clean();
        let v = get(&db, o);
        if acknowledged {
            assert_eq!(&v[..], b"new", "[{point}] acknowledged commit lost");
        } else {
            assert!(
                v == b"base" || v == b"new",
                "[{point}] atomic txn left torn state {v:?}"
            );
        }
        drop(db);

        // recovery must be idempotent: a second restart sees the same state
        let db = case.reopen_clean();
        assert_eq!(get(&db, o), v, "[{point}] recovery not idempotent");
    }
}

#[test]
fn crash_matrix_atomic() {
    atomic_sweep(FaultAction::Crash);
}

#[test]
fn torn_matrix_atomic() {
    atomic_sweep(FaultAction::Torn {
        keep_per_mille: 500,
    });
}

// ---------------------------------------------------------------------------
// Workload 2: GC group commit (paper §2.2) — two transactions, one forced
// commit record. Invariant: all-or-nothing, across any crash point. This is
// the torn-group-commit regression surface.
// ---------------------------------------------------------------------------

fn group_commit_sweep(action: FaultAction) {
    for point in all_failpoints() {
        let case = Case::new("w2");
        let (oa, ob);
        {
            let db = case.open();
            oa = db.new_oid();
            ob = db.new_oid();
            put(&db, oa, b"ga0");
            put(&db, ob, b"gb0");
        }

        case.faults.arm(point, Trigger::Once, action);
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<bool> {
            let db = case.open();
            let t1 = db.initiate(move |ctx| ctx.write(oa, b"ga1".to_vec()))?;
            let t2 = db.initiate(move |ctx| ctx.write(ob, b"gb1".to_vec()))?;
            db.form_dependency(DepType::GC, t1, t2)?;
            db.begin_many(&[t1, t2])?;
            db.wait(t1)?;
            db.wait(t2)?;
            db.commit(t1)
        }));
        let acknowledged = matches!(&outcome, Ok(Ok(true)));

        let db = case.reopen_clean();
        let (va, vb) = (get(&db, oa), get(&db, ob));
        if acknowledged {
            assert_eq!(
                (&va[..], &vb[..]),
                (&b"ga1"[..], &b"gb1"[..]),
                "[{point}] acknowledged group commit lost a member"
            );
        } else {
            let both_old = va == b"ga0" && vb == b"gb0";
            let both_new = va == b"ga1" && vb == b"gb1";
            assert!(
                both_old || both_new,
                "[{point}] torn group commit: ({va:?}, {vb:?})"
            );
        }
        drop(db);

        let db = case.reopen_clean();
        assert_eq!(
            (get(&db, oa), get(&db, ob)),
            (va, vb),
            "[{point}] recovery not idempotent"
        );
    }
}

#[test]
fn crash_matrix_group_commit() {
    group_commit_sweep(FaultAction::Crash);
}

#[test]
fn torn_matrix_group_commit() {
    group_commit_sweep(FaultAction::Torn {
        keep_per_mille: 500,
    });
}

// ---------------------------------------------------------------------------
// Workload 3: a saga with compensation (paper §3.3) — step 1 commits, step 2
// rolls back, a compensating transaction commits. Invariant: the object only
// ever holds a prefix-consistent saga state ("s0" → "s1" → "comp"), never
// the rolled-back step's value, and never regresses past an acknowledged
// commit.
// ---------------------------------------------------------------------------

fn saga_sweep(action: FaultAction) {
    let order = |v: &[u8]| -> usize {
        match v {
            b"s0" => 0,
            b"s1" => 1,
            b"comp" => 2,
            other => panic!("saga reached invalid state {other:?}"),
        }
    };
    for point in all_failpoints() {
        let case = Case::new("w3");
        let o;
        {
            let db = case.open();
            o = db.new_oid();
            put(&db, o, b"s0");
        }

        // highest saga state whose commit was acknowledged before the fault
        let acked = Arc::new(Mutex::new(b"s0".to_vec()));
        let acked2 = Arc::clone(&acked);
        case.faults.arm(point, Trigger::Once, action);
        let _ = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
            let db = case.open();
            // step 1
            if db.run(move |ctx| ctx.write(o, b"s1".to_vec()))? {
                *acked2.lock().unwrap() = b"s1".to_vec();
            }
            // step 2 runs, then the saga decides to roll it back
            let t2 = db.initiate(move |ctx| ctx.write(o, b"s2".to_vec()))?;
            db.begin(t2)?;
            db.wait(t2)?;
            db.abort(t2)?;
            // compensation for step 1
            if db.run(move |ctx| ctx.write(o, b"comp".to_vec()))? {
                *acked2.lock().unwrap() = b"comp".to_vec();
            }
            db.checkpoint()?;
            Ok(())
        }));

        let db = case.reopen_clean();
        let v = get(&db, o);
        let last = acked.lock().unwrap().clone();
        assert!(
            order(&v) >= order(&last),
            "[{point}] recovery regressed past acknowledged commit: {v:?} < {last:?}"
        );
        drop(db);

        let db = case.reopen_clean();
        assert_eq!(get(&db, o), v, "[{point}] recovery not idempotent");
    }
}

#[test]
fn crash_matrix_saga() {
    saga_sweep(FaultAction::Crash);
}

#[test]
fn torn_matrix_saga() {
    saga_sweep(FaultAction::Torn {
        keep_per_mille: 500,
    });
}

// ---------------------------------------------------------------------------
// Workload 4: delegation + permit (paper §2.1) — t1 writes, permits, then
// delegates its locks and undo responsibility to t2; t1 commits (its undo
// set is empty after delegation) and t2 aborts, restoring the baseline.
// Invariant: the write NEVER survives — whichever side of whichever crash
// point we land on, the delegated undo follows the delegatee, so either the
// rollback ran (live or during recovery) or the write was never durable.
// ---------------------------------------------------------------------------

fn delegation_sweep(action: FaultAction) {
    for point in all_failpoints() {
        let case = Case::new("w4");
        let o;
        {
            let db = case.open();
            o = db.new_oid();
            put(&db, o, b"d0");
        }

        case.faults.arm(point, Trigger::Once, action);
        let _ = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
            let db = case.open();
            let t1 = db.initiate(move |ctx| ctx.write(o, b"d1".to_vec()))?;
            db.begin(t1)?;
            if !db.wait(t1)? {
                return Ok(()); // t1 aborted under the fault; nothing to hand off
            }
            let t2 = db.initiate(|_| Ok(()))?;
            db.permit(t1, Some(t2), ObSet::one(o), OpSet::ALL)?;
            db.delegate(t1, t2, None)?;
            db.commit(t1)?; // empty after delegation: commits nothing of o
                            // t2 now owns the undo; abort it from this thread so a crash in
                            // the undo loop unwinds into the harness, not a worker thread
            db.abort(t2)?;
            Ok(())
        }));

        let db = case.reopen_clean();
        assert_eq!(
            &get(&db, o)[..],
            b"d0",
            "[{point}] delegated undo did not follow the delegatee"
        );
        drop(db);

        let db = case.reopen_clean();
        assert_eq!(&get(&db, o)[..], b"d0", "[{point}] recovery not idempotent");
    }
}

#[test]
fn crash_matrix_delegation() {
    delegation_sweep(FaultAction::Crash);
}

#[test]
fn torn_matrix_delegation() {
    delegation_sweep(FaultAction::Torn {
        keep_per_mille: 500,
    });
}

// ---------------------------------------------------------------------------
// Workload 5: the executor's batched flush window (DESIGN.md §12) — three
// transactions submitted to the worker-pool executor while the group
// flusher's window failpoints are armed. The executor path never unwinds
// into the submitter: a crashed window acknowledges the callback with an
// error and the members are driven through the ambiguous-commit abort
// path, so every outcome is observable here. Invariant: `outcome == true`
// is a durable acknowledgement (the value survives recovery); anything
// else recovers to exactly the baseline or the new value; and an executor
// commit acknowledged *before* the fault always survives it.
// ---------------------------------------------------------------------------

use asset::{TryOp, TxnStep};

const WINDOW_POINTS: [&str; 2] = [
    storage::failpoints::FLUSH_WINDOW_ASSEMBLE,
    storage::failpoints::FLUSH_WINDOW_SYNC,
];

/// A resumable one-write executor program: re-entered from the top on
/// every step, it simply re-attempts the write until granted.
fn write_prog(
    o: Oid,
    val: &'static [u8],
) -> impl FnMut(&mut asset::StepCtx<'_>) -> TxnStep + Send + 'static {
    move |sc| match sc.try_write(o, val.to_vec()) {
        Ok(TryOp::Done(())) => TxnStep::Done(Ok(())),
        Ok(TryOp::WouldBlock) => TxnStep::WaitLock { ob: o },
        Err(e) => TxnStep::Done(Err(e)),
    }
}

fn exec_window_sweep(action: FaultAction) {
    for point in WINDOW_POINTS {
        let mut case = Case::new("w5");
        // a non-zero window so concurrent submissions coalesce into the
        // faulted flush
        case.config = case
            .config
            .clone()
            .with_commit_flush_window(std::time::Duration::from_millis(2));
        let (o0, others);
        {
            // fault-free baseline: one executor commit acknowledged
            // before the fault is armed
            let db = case.open();
            o0 = db.new_oid();
            others = [db.new_oid(), db.new_oid(), db.new_oid()];
            for o in others {
                put(&db, o, b"e0");
            }
            let t = db.submit(write_prog(o0, b"acked")).unwrap();
            assert!(db.outcome(t).unwrap(), "[{point}] fault-free submit");
        }

        case.faults.arm(point, Trigger::Once, action);
        let acked = Arc::new(Mutex::new([false; 3]));
        let acked2 = Arc::clone(&acked);
        let _ = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
            let db = case.open();
            let tids: Vec<_> = others
                .iter()
                .map(|&o| db.submit(write_prog(o, b"e1")))
                .collect::<Result<_>>()?;
            for (i, t) in tids.into_iter().enumerate() {
                if db.outcome(t)? {
                    acked2.lock().unwrap()[i] = true;
                }
            }
            Ok(())
        }));

        let db = case.reopen_clean();
        assert_eq!(
            &get(&db, o0)[..],
            b"acked",
            "[{point}] pre-fault acknowledged executor commit lost"
        );
        let acked = *acked.lock().unwrap();
        let vals: Vec<Vec<u8>> = others.iter().map(|&o| get(&db, o)).collect();
        for (i, v) in vals.iter().enumerate() {
            if acked[i] {
                assert_eq!(&v[..], b"e1", "[{point}] acknowledged window commit lost");
            } else {
                assert!(
                    v == b"e0" || v == b"e1",
                    "[{point}] torn flush window left mixed state {v:?}"
                );
            }
        }
        drop(db);

        let db = case.reopen_clean();
        let again: Vec<Vec<u8>> = others.iter().map(|&o| get(&db, o)).collect();
        assert_eq!(again, vals, "[{point}] recovery not idempotent");
    }
}

#[test]
fn crash_matrix_exec_flush_window() {
    exec_window_sweep(FaultAction::Crash);
}

#[test]
fn torn_matrix_exec_flush_window() {
    exec_window_sweep(FaultAction::Torn {
        keep_per_mille: 500,
    });
}

#[test]
fn error_matrix_exec_flush_window() {
    exec_window_sweep(FaultAction::Error);
}

/// Crash at window *assembly* fires before any record of the window
/// reaches the log, so there is no ambiguity to tolerate: every commit in
/// the torn window is unacknowledged and MUST be undone at recovery.
#[test]
fn exec_crash_at_window_assembly_undoes_every_unacked_commit() {
    let case = Case::new("w5a");
    let (db0, oids) = {
        let db = case.open();
        let oids = [db.new_oid(), db.new_oid(), db.new_oid()];
        for o in oids {
            put(&db, o, b"e0");
        }
        (db, oids)
    };
    case.faults.arm(
        storage::failpoints::FLUSH_WINDOW_ASSEMBLE,
        Trigger::Once,
        FaultAction::Crash,
    );
    for o in oids {
        let t = db0.submit(write_prog(o, b"e1")).unwrap();
        assert!(
            !db0.outcome(t).unwrap(),
            "no commit can be acknowledged once the registry is crashed"
        );
    }
    drop(db0);

    let db = case.reopen_clean();
    for o in oids {
        assert_eq!(
            &get(&db, o)[..],
            b"e0",
            "unacknowledged commit in the crashed window must be undone"
        );
    }
}

// ---------------------------------------------------------------------------
// Error sweep: the process survives the fault. After the workload drives
// every transaction to a terminal state, the live in-memory state must agree
// with what a restart recovers — the property the torn-group-commit bug
// violated (commit-record failure used to strand the group non-terminal).
// ---------------------------------------------------------------------------

#[test]
fn error_matrix_live_state_agrees_with_recovery() {
    use asset::TxnStatus;
    for point in all_failpoints() {
        let case = Case::new("err");
        let (oa, ob);
        {
            let db = case.open();
            oa = db.new_oid();
            ob = db.new_oid();
            put(&db, oa, b"ga0");
            put(&db, ob, b"gb0");
        }

        case.faults.arm(point, Trigger::Once, FaultAction::Error);
        let db = match Database::open(case.config.clone()) {
            Ok((db, _)) => db,
            Err(_) => {
                // the fault fired during recovery itself; a clean retry
                // must succeed and land on the pre-fault state
                let db = case.reopen_clean();
                assert_eq!(
                    (&get(&db, oa)[..], &get(&db, ob)[..]),
                    (&b"ga0"[..], &b"gb0"[..]),
                    "[{point}] failed recovery attempt must be harmless"
                );
                continue;
            }
        };
        let t1 = db
            .initiate(move |ctx| ctx.write(oa, b"ga1".to_vec()))
            .unwrap();
        let t2 = db
            .initiate(move |ctx| ctx.write(ob, b"gb1".to_vec()))
            .unwrap();
        let _ = db.form_dependency(DepType::GC, t1, t2);
        let b1 = db.begin(t1).is_ok();
        let b2 = db.begin(t2).is_ok();
        if b1 {
            let _ = db.wait(t1);
        }
        if b2 {
            let _ = db.wait(t2);
        }
        if b1 && b2 {
            let _ = db.commit(t1);
        }
        let _ = db.checkpoint();
        // drive anything still live to a terminal state, as an operator would
        for t in [t1, t2] {
            if !db.is_committed(t).unwrap_or(false) {
                let _ = db.abort(t);
            }
        }
        for t in [t1, t2] {
            let st = db.status(t).unwrap();
            assert!(
                st == TxnStatus::Committed || st == TxnStatus::Aborted,
                "[{point}] transaction stranded non-terminal: {st:?}"
            );
        }
        let (live_a, live_b) = (get(&db, oa), get(&db, ob));
        drop(db);

        let db = case.reopen_clean();
        assert_eq!(
            (get(&db, oa), get(&db, ob)),
            (live_a, live_b),
            "[{point}] live state disagrees with recovered state"
        );
    }
}

// ---------------------------------------------------------------------------
// Elided syncs: `sync_data` lies (returns Ok without forcing). Within one
// OS lifetime the bytes are still in the page cache, so recovery must still
// see them — this exercises the ElideSync plumbing and the
// `unsynced_bytes` accounting fixed in the buffered-bytes bug.
// ---------------------------------------------------------------------------

#[test]
fn elided_syncs_leave_bytes_unsynced_but_readable() {
    let case = Case::new("elide");
    case.faults.arm(
        storage::failpoints::LOG_SYNC,
        Trigger::Always,
        FaultAction::ElideSync,
    );
    case.faults.arm(
        storage::failpoints::STORE_SYNC,
        Trigger::Always,
        FaultAction::ElideSync,
    );
    let o;
    {
        let db = case.open();
        o = db.new_oid();
        put(&db, o, b"v");
        assert!(
            db.engine().log().unsynced_bytes() > 0,
            "elided sync must leave the commit record unsynced"
        );
    }
    let db = case.reopen_clean();
    assert_eq!(&get(&db, o)[..], b"v");
}

// ---------------------------------------------------------------------------
// Determinism: the same seed fires the same probabilistic trigger at the
// same hit, so two identical runs produce identical fault schedules.
// ---------------------------------------------------------------------------

#[test]
fn probabilistic_triggers_are_deterministic_across_runs() {
    let fired = |seed: u64| -> Vec<u64> {
        let reg = FaultRegistry::new();
        reg.arm(
            "det.point",
            Trigger::Prob {
                per_mille: 300,
                seed,
            },
            FaultAction::Error,
        );
        (0..64)
            .filter_map(|i| reg.check("det.point").map(|_| i))
            .collect()
    };
    assert_eq!(fired(42), fired(42), "same seed must replay identically");
    assert_ne!(fired(42), fired(43), "different seeds must diverge");
}

//! The cross-node crash matrix (compiled only with `--features faults`).
//!
//! Three on-disk participant nodes, one staged write per node forming a
//! global transaction, driven by **both** commit protocols
//! ([`TwoPhase`] and [`PaxosCommit`]) through every coordinator-layer
//! failpoint plus the participant-side prepare windows:
//!
//! | failpoint | models |
//! |---|---|
//! | `prepare.after_record` (Crash) | participant dies right after forcing its `Prepared` record — the vote is durable but never sent |
//! | `coord.before_decide` (Crash) | coordinator dies with every vote in hand and nothing durable |
//! | `coord.after_decide` (Crash) | coordinator dies with the decision durable but undelivered |
//! | `coord.msg.prepare` (Error) | a prepare request is lost in the network |
//! | `coord.msg.decide` (Error) | a decide is lost — one participant stays in doubt |
//!
//! After every injected fault the harness restarts whatever crashed
//! (participant nodes reopen their directories — prepared transactions
//! must come back **in doubt**, holding locks) and runs a recovery
//! coordinator, then asserts the distributed invariant: **no mixed
//! outcomes** — every node either shows the write or shows nothing,
//! identically, with nobody left in doubt; and for 2PC-after-decide /
//! Paxos-after-quorum the recovered decision equals the original.

#![cfg(feature = "faults")]

use asset::coord::failpoints::{
    COORD_AFTER_DECIDE, COORD_BEFORE_DECIDE, MSG_DECIDE_DROP, MSG_PREPARE_DROP,
};
use asset::coord::{
    Acceptor, ChannelTransport, CommitTransport, CoordLog, Decision, GlobalTxn, ParticipantNode,
    PaxosCommit, TwoPhase,
};
use asset::faults::{CrashPoint, FaultAction, FaultRegistry, Trigger};
use asset::{Config, Oid};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

const NODES: usize = 3;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "asset-xcm-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A 3-node on-disk cluster. Every node gets its own directory and its
/// own instance-scoped fault registry, so participant failpoints can be
/// armed per node.
struct Cluster {
    _dirs: Vec<TempDir>,
    node_faults: Vec<Arc<FaultRegistry>>,
    transport: Arc<ChannelTransport>,
    oids: Vec<Oid>,
}

impl Cluster {
    fn new(tag: &str) -> Cluster {
        Cluster::with_msg_faults(tag, Arc::new(FaultRegistry::new()))
    }

    /// A cluster whose transport drops messages per `msg_faults`.
    fn with_msg_faults(tag: &str, msg_faults: Arc<FaultRegistry>) -> Cluster {
        asset::faults::silence_crash_panics();
        let mut dirs = Vec::new();
        let mut node_faults = Vec::new();
        let mut nodes = Vec::new();
        for i in 0..NODES {
            let dir = TempDir::new(&format!("{tag}-n{i}"));
            let faults = Arc::new(FaultRegistry::new());
            let config = Config::on_disk(&dir.0)
                .with_lock_timeout(Some(std::time::Duration::from_secs(5)))
                .with_faults(Arc::clone(&faults));
            nodes.push(Arc::new(ParticipantNode::open(config).unwrap()));
            dirs.push(dir);
            node_faults.push(faults);
        }
        let oids = nodes.iter().map(|n| n.db().new_oid()).collect();
        Cluster {
            _dirs: dirs,
            node_faults,
            transport: Arc::new(ChannelTransport::new(nodes).with_faults(msg_faults)),
            oids,
        }
    }

    /// Stage one finished-but-undecided write per node.
    fn stage(&self, gid: u64) -> GlobalTxn {
        let mut g = GlobalTxn::new(gid);
        for (i, oid) in self.oids.iter().enumerate() {
            let db = self.transport.node(i).db();
            let (oid, val) = (*oid, format!("g{gid}").into_bytes());
            let t = db.initiate(move |ctx| ctx.write(oid, val.clone())).unwrap();
            db.begin(t).unwrap();
            db.wait(t).unwrap();
            g.add_member(i as u32, t);
        }
        g
    }

    /// Restart every down node, asserting each comes back with
    /// `expect_in_doubt` prepared-but-undecided transactions.
    fn restart_down_nodes(&self, expect_in_doubt: usize) {
        for i in 0..NODES {
            let n = self.transport.node(i);
            if n.is_down() {
                let in_doubt = n.restart().unwrap();
                assert_eq!(
                    in_doubt.len(),
                    expect_in_doubt,
                    "node {i} restarted with the wrong in-doubt set"
                );
            }
        }
    }

    /// The distributed invariant: every node shows the same outcome for
    /// `gid` (all have the write, or none do) and nobody is in doubt.
    /// Returns the common decision.
    fn assert_converged(&self, gid: u64, label: &str) -> Decision {
        let expected = format!("g{gid}").into_bytes();
        let mut per_node = Vec::new();
        for (i, oid) in self.oids.iter().enumerate() {
            let db = self.transport.node(i).db();
            assert!(
                db.in_doubt_transactions().is_empty(),
                "{label}: node {i} still in doubt"
            );
            match db.peek(*oid).unwrap() {
                Some(v) => {
                    assert_eq!(v, expected, "{label}: node {i} has a foreign value");
                    per_node.push(Decision::Commit);
                }
                None => per_node.push(Decision::Abort),
            }
        }
        assert!(
            per_node.iter().all(|d| *d == per_node[0]),
            "{label}: MIXED OUTCOME across nodes: {per_node:?}"
        );
        per_node[0]
    }
}

/// Which protocol drives a matrix cell.
#[derive(Clone, Copy, Debug)]
enum Proto {
    TwoPc,
    Paxos,
}

const PROTOS: [Proto; 2] = [Proto::TwoPc, Proto::Paxos];

/// One coordinator pair (working + recovery) per protocol, sharing the
/// durable decision substrate (log file for 2PC, acceptors for Paxos).
struct Coordinators {
    proto: Proto,
    log_path: PathBuf,
    log: Arc<CoordLog>,
    acceptors: Vec<Arc<Acceptor>>,
}

impl Coordinators {
    fn new(proto: Proto, dir: &TempDir) -> Coordinators {
        let log_path = dir.0.join("coord.log");
        Coordinators {
            proto,
            log: Arc::new(CoordLog::at(&log_path).unwrap()),
            log_path,
            acceptors: (0..3).map(|_| Arc::new(Acceptor::new())).collect(),
        }
    }

    fn commit(
        &self,
        transport: Arc<ChannelTransport>,
        faults: Arc<FaultRegistry>,
        g: &GlobalTxn,
    ) -> Result<Decision, asset::coord::CoordError> {
        match self.proto {
            Proto::TwoPc => TwoPhase::new(transport, self.log.clone())
                .with_faults(faults)
                .commit(g),
            Proto::Paxos => PaxosCommit::new(transport, self.acceptors.clone())
                .with_faults(faults)
                .commit(g),
        }
    }

    /// A *fresh* recovery coordinator: for 2PC it reopens the durable
    /// log **from disk** (the dead coordinator's memory is gone); for
    /// Paxos it knows nothing but the acceptors and a higher ballot.
    fn recover(
        &self,
        transport: Arc<ChannelTransport>,
        g: &GlobalTxn,
    ) -> Result<Decision, asset::coord::CoordError> {
        match self.proto {
            Proto::TwoPc => {
                let log = Arc::new(CoordLog::at(&self.log_path).unwrap());
                TwoPhase::new(transport, log).recover(g)
            }
            Proto::Paxos => PaxosCommit::recovery(transport, self.acceptors.clone(), 1).recover(g),
        }
    }
}

/// Run `f`, catching an intentional `CrashPoint` unwind (the scripted
/// coordinator crash); any other panic propagates.
fn crashing<T>(f: impl FnOnce() -> T) -> Option<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            assert!(
                payload.downcast_ref::<CrashPoint>().is_some(),
                "only scripted crashes may unwind"
            );
            None
        }
    }
}

#[test]
fn participant_crash_after_prepare_record_converges() {
    for (k, proto) in PROTOS.iter().enumerate() {
        let gid = 10 + k as u64;
        let label = format!("{proto:?}/part-after-prepare");
        let c = Cluster::new(&format!("pap{k}"));
        let cdir = TempDir::new(&format!("pap{k}-coord"));
        let coords = Coordinators::new(*proto, &cdir);
        let g = c.stage(gid);
        // node 1 dies immediately after forcing its Prepared record:
        // the vote is durable on its disk but never reaches the
        // coordinator, which must count it as a no
        c.node_faults[1].arm(
            asset::txn::failpoints::PART_AFTER_PREPARE,
            Trigger::Once,
            FaultAction::Crash,
        );
        let d = coords
            .commit(c.transport.clone(), Arc::new(FaultRegistry::new()), &g)
            .expect(&label);
        assert_eq!(d, Decision::Abort, "{label}: lost vote counts as no");
        // the dead node restarts from disk: its Prepared record must
        // bring the transaction back IN DOUBT, not aborted
        assert!(c.transport.node(1).is_down(), "{label}: node 1 crashed");
        c.restart_down_nodes(1);
        assert_eq!(
            c.transport.node(1).db().in_doubt_transactions().len(),
            1,
            "{label}: prepared txn survives restart in doubt"
        );
        // cooperative termination finishes it with the decision
        let rd = coords.recover(c.transport.clone(), &g).expect(&label);
        assert_eq!(rd, Decision::Abort, "{label}");
        assert_eq!(c.assert_converged(gid, &label), Decision::Abort);
    }
}

#[test]
fn coordinator_crash_before_decide_converges_to_abort() {
    for (k, proto) in PROTOS.iter().enumerate() {
        let gid = 20 + k as u64;
        let label = format!("{proto:?}/coord-before-decide");
        let c = Cluster::new(&format!("cbd{k}"));
        let cdir = TempDir::new(&format!("cbd{k}-coord"));
        let coords = Coordinators::new(*proto, &cdir);
        let g = c.stage(gid);
        let cf = Arc::new(FaultRegistry::new());
        cf.arm(COORD_BEFORE_DECIDE, Trigger::Once, FaultAction::Crash);
        assert!(
            crashing(|| coords.commit(c.transport.clone(), cf, &g)).is_none(),
            "{label}: the coordinator must crash"
        );
        // every participant prepared and is blocked in doubt
        for i in 0..NODES {
            assert_eq!(
                c.transport.node(i).db().in_doubt_transactions().len(),
                1,
                "{label}: node {i} in doubt"
            );
        }
        // nothing durable was decided: 2PC presumes abort from the
        // (empty) reopened log; Paxos finds every instance free
        let rd = coords.recover(c.transport.clone(), &g).expect(&label);
        assert_eq!(rd, Decision::Abort, "{label}");
        assert_eq!(c.assert_converged(gid, &label), Decision::Abort);
    }
}

#[test]
fn coordinator_crash_after_decide_recovers_the_same_decision() {
    for (k, proto) in PROTOS.iter().enumerate() {
        let gid = 30 + k as u64;
        let label = format!("{proto:?}/coord-after-decide");
        let c = Cluster::new(&format!("cad{k}"));
        let cdir = TempDir::new(&format!("cad{k}-coord"));
        let coords = Coordinators::new(*proto, &cdir);
        let g = c.stage(gid);
        let cf = Arc::new(FaultRegistry::new());
        cf.arm(COORD_AFTER_DECIDE, Trigger::Once, FaultAction::Crash);
        assert!(
            crashing(|| coords.commit(c.transport.clone(), cf, &g)).is_none(),
            "{label}: the coordinator must crash"
        );
        // the decision is durable (log / quorum) but nobody was told:
        // recovery MUST surface Commit, not presume abort
        let rd = coords.recover(c.transport.clone(), &g).expect(&label);
        assert_eq!(rd, Decision::Commit, "{label}: durable decision recovered");
        assert_eq!(c.assert_converged(gid, &label), Decision::Commit);
        // idempotent: recovering again changes nothing
        let rd2 = coords.recover(c.transport.clone(), &g).expect(&label);
        assert_eq!(rd2, Decision::Commit, "{label}: idempotent");
    }
}

#[test]
fn lost_prepare_message_aborts_everywhere() {
    for (k, proto) in PROTOS.iter().enumerate() {
        let gid = 40 + k as u64;
        let label = format!("{proto:?}/msg-prepare-drop");
        let mf = Arc::new(FaultRegistry::new());
        let c = Cluster::with_msg_faults(&format!("mpd{k}"), Arc::clone(&mf));
        let cdir = TempDir::new(&format!("mpd{k}-coord"));
        let coords = Coordinators::new(*proto, &cdir);
        let g = c.stage(gid);
        // the second node's prepare vanishes in the network; the
        // coordinator treats silence as a no vote
        mf.arm(MSG_PREPARE_DROP, Trigger::Nth(2), FaultAction::Error);
        let d = coords
            .commit(c.transport.clone(), Arc::new(FaultRegistry::new()), &g)
            .expect(&label);
        assert_eq!(d, Decision::Abort, "{label}");
        assert_eq!(c.assert_converged(gid, &label), Decision::Abort);
    }
}

#[test]
fn lost_decide_message_resolves_via_termination() {
    for (k, proto) in PROTOS.iter().enumerate() {
        let gid = 50 + k as u64;
        let label = format!("{proto:?}/msg-decide-drop");
        let mf = Arc::new(FaultRegistry::new());
        let c = Cluster::with_msg_faults(&format!("mdd{k}"), Arc::clone(&mf));
        let cdir = TempDir::new(&format!("mdd{k}-coord"));
        let coords = Coordinators::new(*proto, &cdir);
        let g = c.stage(gid);
        // the decision is made and durable, but node 0 never hears it
        mf.arm(MSG_DECIDE_DROP, Trigger::Nth(1), FaultAction::Error);
        let d = coords
            .commit(c.transport.clone(), Arc::new(FaultRegistry::new()), &g)
            .expect(&label);
        assert_eq!(d, Decision::Commit, "{label}: decision itself is commit");
        assert_eq!(
            c.transport.node(0).db().in_doubt_transactions().len(),
            1,
            "{label}: node 0 missed the decide and stays prepared"
        );
        // a termination pass re-delivers from the durable decision
        let rd = coords.recover(c.transport.clone(), &g).expect(&label);
        assert_eq!(rd, Decision::Commit, "{label}");
        assert_eq!(c.assert_converged(gid, &label), Decision::Commit);
    }
}

#[test]
fn paxos_is_nonblocking_where_twopc_blocks() {
    // The E17 headline, as an invariant rather than a number: after a
    // coordinator crash in the window where 2PC's only copy of the
    // decision is unreachable, Paxos Commit still terminates because
    // the decision lives at the acceptor quorum.
    let gid = 60;
    let c = Cluster::new("nb");
    let cdir = TempDir::new("nb-coord");
    let coords = Coordinators::new(Proto::Paxos, &cdir);
    let g = c.stage(gid);
    let cf = Arc::new(FaultRegistry::new());
    cf.arm(COORD_AFTER_DECIDE, Trigger::Once, FaultAction::Crash);
    assert!(crashing(|| coords.commit(c.transport.clone(), cf, &g)).is_none());
    // one acceptor died with the coordinator: still a majority
    coords.acceptors[0].kill();
    let rd = coords.recover(c.transport.clone(), &g).unwrap();
    assert_eq!(rd, Decision::Commit);
    assert_eq!(
        c.assert_converged(gid, "paxos/nonblocking"),
        Decision::Commit
    );
}

#[test]
fn transport_trait_object_is_usable() {
    // coordinators only see `dyn CommitTransport`; make sure the
    // facade exposes enough to drive one generically
    let c = Cluster::new("dyn");
    let t: Arc<dyn CommitTransport> = c.transport.clone();
    assert_eq!(t.nodes(), NODES);
}
